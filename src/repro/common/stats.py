"""Counter and aggregate statistics collected during simulation.

Two levels of statistics exist:

* :class:`CoreStats` — per hardware thread (memory ops, misses, stalls,
  writebacks split by critical-path vs. background).
* :class:`RunStats` — whole-machine aggregation plus derived metrics
  used by the benchmark harness (Figures 5-8 of the paper).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List


@dataclasses.dataclass
class CoreStats:
    """Event counters for a single simulated hardware thread."""

    core_id: int = 0

    reads: int = 0
    writes: int = 0
    rmws: int = 0
    acquires: int = 0
    releases: int = 0

    l1_hits: int = 0
    l1_misses: int = 0
    evictions: int = 0
    downgrades_received: int = 0
    invalidations_received: int = 0

    # Persistency accounting.
    persists_issued: int = 0
    writebacks_total: int = 0
    writebacks_critical: int = 0   # on the issuing thread's critical path
    persist_stall_cycles: int = 0  # cycles the thread blocked on persists
    barrier_count: int = 0
    #: Stall cycles by cause ("barrier", "inter-thread", "eviction",
    #: "write-conflict", "rmw-acquire", "epoch-window", ...).
    stall_reasons: Dict[str, int] = dataclasses.field(default_factory=dict)

    cycles: int = 0                # this thread's final local clock
    ops_completed: int = 0         # data-structure operations finished

    @property
    def critical_writeback_fraction(self) -> float:
        """Fraction of writebacks on the critical path (Figure 6)."""
        if self.writebacks_total == 0:
            return 0.0
        return self.writebacks_critical / self.writebacks_total


@dataclasses.dataclass
class RunStats:
    """Aggregate statistics for one complete simulation run."""

    mechanism: str
    workload: str
    num_threads: int
    per_core: List[CoreStats] = dataclasses.field(default_factory=list)

    def _total(self, field: str) -> int:
        return sum(getattr(c, field) for c in self.per_core)

    @property
    def execution_cycles(self) -> int:
        """Wall-clock of the run: the slowest thread's final clock."""
        return max((c.cycles for c in self.per_core), default=0)

    @property
    def total_ops(self) -> int:
        return self._total("ops_completed")

    @property
    def total_persists(self) -> int:
        return self._total("persists_issued")

    @property
    def total_writebacks(self) -> int:
        return self._total("writebacks_total")

    @property
    def critical_writebacks(self) -> int:
        return self._total("writebacks_critical")

    @property
    def critical_writeback_fraction(self) -> float:
        """Machine-wide fraction of writebacks on the critical path."""
        total = self.total_writebacks
        if total == 0:
            return 0.0
        return self.critical_writebacks / total

    @property
    def persist_stall_cycles(self) -> int:
        return self._total("persist_stall_cycles")

    def stall_breakdown(self) -> Dict[str, int]:
        """Machine-wide stall cycles by cause."""
        merged: Dict[str, int] = {}
        for core in self.per_core:
            for reason, cycles in core.stall_reasons.items():
                merged[reason] = merged.get(reason, 0) + cycles
        return merged

    def overhead_vs(self, baseline: "RunStats") -> float:
        """Fractional execution-time overhead over ``baseline``.

        Figure 8 reports this as a percentage over volatile (NOP)
        execution: ``overhead_vs(nop) * 100``. A zero-cycle baseline
        has no meaningful overhead ratio and raises ``ValueError``
        rather than silently reporting 0.
        """
        base = baseline.execution_cycles
        if base == 0:
            raise ValueError(
                f"cannot compute overhead against a zero-cycle baseline "
                f"({baseline.mechanism}/{baseline.workload}: did the "
                f"baseline run execute any operations?)")
        return (self.execution_cycles - base) / base

    def normalized_to(self, baseline: "RunStats") -> float:
        """Execution time normalized to ``baseline`` (Figure 5/7 y-axis).

        Raises ``ValueError`` on a zero-cycle baseline — a ratio to
        nothing would be reported as 0x and read as "infinitely fast".
        """
        base = baseline.execution_cycles
        if base == 0:
            raise ValueError(
                f"cannot normalize to a zero-cycle baseline "
                f"({baseline.mechanism}/{baseline.workload}: did the "
                f"baseline run execute any operations?)")
        return self.execution_cycles / base

    def summary(self) -> Dict[str, object]:
        """Flat dictionary of the headline metrics for reporting."""
        return {
            "mechanism": self.mechanism,
            "workload": self.workload,
            "threads": self.num_threads,
            "cycles": self.execution_cycles,
            "ops": self.total_ops,
            "persists": self.total_persists,
            "writebacks": self.total_writebacks,
            "critical_wb_frac": round(self.critical_writeback_fraction, 4),
            "persist_stalls": self.persist_stall_cycles,
        }


def merge_core_stats(stats: Iterable[CoreStats]) -> CoreStats:
    """Sum a collection of :class:`CoreStats` into one (for reporting)."""
    merged = CoreStats(core_id=-1)
    numeric_fields = [
        f.name for f in dataclasses.fields(CoreStats)
        if f.name not in ("core_id", "stall_reasons")
    ]
    for stat in stats:
        for name in numeric_fields:
            if name == "cycles":
                merged.cycles = max(merged.cycles, stat.cycles)
            else:
                setattr(merged, name, getattr(merged, name) + getattr(stat, name))
        for reason, cycles in stat.stall_reasons.items():
            merged.stall_reasons[reason] = (
                merged.stall_reasons.get(reason, 0) + cycles)
    return merged
