"""Crash-safe on-disk work queue with sharding and leases.

One ticket file per job, named ``<seq>.<digest>.json`` (submission
sequence number + content-address digest), living in exactly one of
four state directories::

    queue/pending/shard-NNN/   runnable, partitioned over the sweep
    queue/leased/              claimed by a worker (pid + expiry)
    queue/requeue/             mid-repair quarantine (see recover)
    queue/done/                completed (result journaled + cached)
    queue/failed/              retries exhausted

Every state transition is a single atomic :func:`os.rename` (or a
temp-file + rename pair), so a SIGKILL at *any* instant leaves the
queue with each ticket in a well-defined state:

* **claim** — ``rename(pending/<name> -> leased/<name>.<pid>)``:
  exactly one of any number of racing workers wins (the losers get
  ``ENOENT`` and move on); the winner then rewrites the ticket with
  its lease payload. The claimant's pid lives in the *filename*, so
  a lease is attributable from the instant the rename lands — there
  is no window in which recovery could mistake a live claim for an
  abandoned ticket (or vice versa).
* **complete** — the done ticket is written first, the leased one
  unlinked second; a crash in between leaves a leased orphan that
  :meth:`WorkQueue.recover` clears against the done record.
* **fail / requeue** — same write-then-unlink discipline, with the
  attempt counter carried in the payload and an exponential-backoff
  ``not_before`` stamp that :meth:`claim` honors (bounded
  retry-with-backoff on worker failure).

Leases carry the worker's pid and an expiry. :meth:`recover` (run by
the coordinator and opportunistically by idle workers) re-queues
tickets whose worker died — pid liveness beats the clock, so a lease
held by a live-but-slow worker is *renewed*, never stolen, while a
SIGKILL'd worker's ticket is back in ``pending`` on the next sweep.

Sharding implements work-stealing load balancing: ticket ``seq`` maps
round-robin onto ``num_shards`` pending subdirectories; a worker
drains its own shard first and, when idle, steals from the shard with
the most pending tickets.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from typing import Callable, Dict, List, Optional

#: Default seconds a lease lives without renewal before a worker whose
#: liveness cannot be proven is presumed dead.
DEFAULT_LEASE_TTL = 60.0

#: Default cap on execution attempts per ticket (first try included).
DEFAULT_MAX_ATTEMPTS = 4

#: Base of the exponential retry backoff (seconds).
DEFAULT_BACKOFF = 0.5

_STATES = ("pending", "leased", "requeue", "done", "failed")


def _write_json(path: str, payload: Dict[str, object]) -> None:
    """Atomic JSON write (temp file + rename, same directory)."""
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_json(path: str) -> Optional[Dict[str, object]]:
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def default_pid_alive(pid: object) -> bool:
    """Best-effort liveness probe for a lease's worker pid."""
    if not isinstance(pid, int) or pid <= 0:
        return False
    if pid == os.getpid():
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # EPERM etc.: the process exists but is not ours.
        return True
    # kill(pid, 0) succeeds on a zombie — an orphaned worker whose
    # reaper hasn't collected it yet holds no lease worth honoring.
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read()
        # field 3 (after the parenthesized comm) is the state letter
        return stat.rpartition(b")")[2].split()[0] != b"Z"
    except (OSError, IndexError):
        return True


@dataclasses.dataclass(frozen=True)
class Ticket:
    """One claimed unit of work."""

    seq: int
    digest: str
    attempts: int
    shard: int
    stolen: bool

    @property
    def name(self) -> str:
        return f"{self.seq:06d}.{self.digest}.json"


@dataclasses.dataclass
class RecoveryReport:
    """What one :meth:`WorkQueue.recover` sweep did."""

    requeued: int = 0
    renewed: int = 0
    orphans_cleared: int = 0
    exhausted: int = 0

    @property
    def total_actions(self) -> int:
        return (self.requeued + self.renewed + self.orphans_cleared
                + self.exhausted)


class WorkQueue:
    """The sharded ticket store under ``<root>/queue``."""

    def __init__(self, root: str, num_shards: int,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 backoff: float = DEFAULT_BACKOFF) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.root = os.path.join(root, "queue")
        self.num_shards = num_shards
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.backoff = backoff

    # -- layout ---------------------------------------------------------

    def _state_dir(self, state: str) -> str:
        return os.path.join(self.root, state)

    def _shard_dir(self, shard: int) -> str:
        return os.path.join(self.root, "pending", f"shard-{shard:03d}")

    def ensure_dirs(self) -> None:
        for state in _STATES:
            os.makedirs(self._state_dir(state), exist_ok=True)
        for shard in range(self.num_shards):
            os.makedirs(self._shard_dir(shard), exist_ok=True)

    def shard_of(self, seq: int) -> int:
        return seq % self.num_shards

    @staticmethod
    def _parse(name: str) -> Optional[tuple]:
        if not name.endswith(".json"):
            return None
        stem = name[:-len(".json")]
        seq_text, _, digest = stem.partition(".")
        if not seq_text.isdigit() or not digest:
            return None
        return int(seq_text), digest

    @staticmethod
    def _lease_name(name: str, pid: Optional[int] = None) -> str:
        return f"{name}.{os.getpid() if pid is None else pid}"

    @staticmethod
    def _split_lease(lease_name: str) -> Optional[tuple]:
        """``<name>.json.<pid>`` -> (name, pid), else None."""
        base, _, pid_text = lease_name.rpartition(".")
        if not pid_text.isdigit() or not base.endswith(".json"):
            return None
        return base, int(pid_text)

    def _list(self, directory: str) -> List[str]:
        try:
            return sorted(os.listdir(directory))
        except OSError:
            return []

    # -- transitions ----------------------------------------------------

    def add(self, seq: int, digest: str) -> Ticket:
        """Enqueue a fresh ticket into its shard."""
        shard = self.shard_of(seq)
        ticket = Ticket(seq=seq, digest=digest, attempts=0,
                        shard=shard, stolen=False)
        _write_json(os.path.join(self._shard_dir(shard), ticket.name),
                    {"attempts": 0, "not_before": 0.0})
        return ticket

    def _pending_counts(self) -> List[int]:
        return [len(self._list(self._shard_dir(shard)))
                for shard in range(self.num_shards)]

    def claim(self, worker: str, preferred_shard: int,
              now: Optional[float] = None) -> Optional[Ticket]:
        """Claim one runnable ticket, own shard first, then steal.

        The steal order is longest-pending-shard first — the queue's
        load-leveling rule. Returns None when nothing is currently
        runnable (everything leased, backed off, or terminal).
        """
        now = time.time() if now is None else now
        preferred_shard %= self.num_shards
        counts = self._pending_counts()
        steal_order = sorted(
            (shard for shard in range(self.num_shards)
             if shard != preferred_shard),
            key=lambda shard: (-counts[shard], shard))
        for shard in [preferred_shard] + steal_order:
            ticket = self._claim_from(shard, worker, now,
                                      stolen=shard != preferred_shard)
            if ticket is not None:
                return ticket
        return None

    def _claim_from(self, shard: int, worker: str, now: float,
                    stolen: bool) -> Optional[Ticket]:
        shard_dir = self._shard_dir(shard)
        for name in self._list(shard_dir):
            parsed = self._parse(name)
            if parsed is None:
                continue
            payload = _read_json(os.path.join(shard_dir, name)) or {}
            not_before = payload.get("not_before", 0.0)
            if isinstance(not_before, (int, float)) and not_before > now:
                continue
            target = os.path.join(self._state_dir("leased"),
                                   self._lease_name(name))
            try:
                os.rename(os.path.join(shard_dir, name), target)
            except OSError:
                continue  # another worker won the race
            attempts = int(payload.get("attempts", 0))
            _write_json(target, {
                "attempts": attempts,
                "worker": worker,
                "pid": os.getpid(),
                "leased_at": now,
                "expires": now + self.lease_ttl,
            })
            seq, digest = parsed
            return Ticket(seq=seq, digest=digest, attempts=attempts,
                          shard=shard, stolen=stolen)
        return None

    def renew(self, ticket: Ticket, worker: str,
              now: Optional[float] = None) -> None:
        """Refresh the lease expiry of a ticket this worker holds."""
        now = time.time() if now is None else now
        path = os.path.join(self._state_dir("leased"),
                            self._lease_name(ticket.name))
        _write_json(path, {
            "attempts": ticket.attempts,
            "worker": worker,
            "pid": os.getpid(),
            "leased_at": now,
            "expires": now + self.lease_ttl,
        })

    def complete(self, ticket: Ticket, worker: str,
                 cached: bool) -> None:
        """``leased -> done``: done record first, lease unlinked after.

        The ordering makes the crash window harmless — a leased
        orphan with a matching done record is cleared by recovery,
        never re-executed.
        """
        _write_json(
            os.path.join(self._state_dir("done"), ticket.name),
            {"attempts": ticket.attempts, "worker": worker,
             "cached": bool(cached)})
        self._unlink_leased(self._lease_name(ticket.name))

    def fail(self, ticket: Ticket, error: str,
             now: Optional[float] = None) -> bool:
        """Record a failed attempt; True when the ticket will retry."""
        now = time.time() if now is None else now
        attempts = ticket.attempts + 1
        if attempts >= self.max_attempts:
            _write_json(
                os.path.join(self._state_dir("failed"), ticket.name),
                {"attempts": attempts, "error": error})
            self._unlink_leased(self._lease_name(ticket.name))
            return False
        delay = self.backoff * (2 ** ticket.attempts)
        _write_json(
            os.path.join(self._shard_dir(ticket.shard), ticket.name),
            {"attempts": attempts, "not_before": now + delay,
             "error": error})
        self._unlink_leased(self._lease_name(ticket.name))
        return True

    def _unlink_leased(self, lease_name: str) -> None:
        try:
            os.unlink(os.path.join(self._state_dir("leased"),
                                   lease_name))
        except OSError:
            pass

    # -- recovery -------------------------------------------------------

    def recover(self, now: Optional[float] = None,
                pid_alive: Callable[[object], bool] = default_pid_alive
                ) -> RecoveryReport:
        """Repair the leased directory after crashes.

        * leased ticket with a done (or re-queued pending) twin: the
          transition already happened, the orphan is cleared;
        * leased ticket whose worker pid is dead: re-queued into its
          shard with the attempt counter bumped (or moved to failed
          once retries are exhausted);
        * leased ticket whose worker is alive but whose lease clock
          ran out (a long simulation): the lease is renewed — pid
          liveness beats the TTL, so slow never means stolen.

        Safe to run concurrently from every worker: orphan clears are
        idempotent unlinks, and requeue/exhaust transitions are single
        renames, so racing sweeps repair each lease exactly once.
        """
        now = time.time() if now is None else now
        report = RecoveryReport()
        leased_dir = self._state_dir("leased")
        for lease_name in self._list(leased_dir):
            split = self._split_lease(lease_name)
            if split is None:
                continue  # temp file from an in-flight atomic write
            name, pid = split
            parsed = self._parse(name)
            if parsed is None:
                continue
            if os.path.exists(os.path.join(self._state_dir("done"),
                                           name)):
                self._unlink_leased(lease_name)
                report.orphans_cleared += 1
                continue
            seq, digest = parsed
            shard = self.shard_of(seq)
            if os.path.exists(os.path.join(self._shard_dir(shard),
                                           name)):
                # A crashed fail()/requeue already re-materialized the
                # pending ticket; the leased file is the stale half.
                self._unlink_leased(lease_name)
                report.orphans_cleared += 1
                continue
            path = os.path.join(leased_dir, lease_name)
            payload = _read_json(path) or {}
            expires = payload.get("expires", 0.0)
            if pid_alive(pid):
                if isinstance(expires, (int, float)) and expires < now:
                    _write_json(path, {
                        **payload, "expires": now + self.lease_ttl})
                    report.renewed += 1
                continue
            # The claimant's pid is embedded in the lease filename by
            # the claim rename itself, so a dead pid is conclusive
            # even if the crash landed before the lease payload write
            # — re-queue immediately, no TTL wait, no grace window.
            if self._requeue(name, shard, os.path.join(
                    leased_dir, lease_name), report):
                continue
        self._sweep_requeue_dir(pid_alive, report)
        return report

    def _requeue(self, name: str, shard: int, source: str,
                 report: RecoveryReport) -> bool:
        """Move a dead claimant's ticket back to pending (or failed).

        Concurrent sweeps (coordinator + every idle worker) race over
        the same dead lease, so the repair follows an ownership
        discipline: a file is only ever *rewritten* by the pid named
        in its filename; everything else is a rename, which exactly
        one racer can win. The sweep that wins the rename into the
        ``requeue`` quarantine owns the ticket, bumps the attempt
        counter on its own private copy, and publishes it with a
        second rename. At no point does a ``_write_json`` target a
        path some other sweep may already have consumed — that would
        re-materialize a ticket a live worker holds and double-execute
        its job.
        """
        mine = os.path.join(self._state_dir("requeue"),
                            self._lease_name(name))
        try:
            os.rename(source, mine)
        except OSError:
            return False  # another sweep won this repair
        payload = _read_json(mine) or {}
        if payload.get("requeued"):
            # Adopted from a sweep that crashed after the bump.
            attempts = int(payload.get("attempts", 1))
        else:
            attempts = int(payload.get("attempts", 0)) + 1
            _write_json(mine, {"attempts": attempts,
                               "not_before": 0.0,
                               "requeued": True,
                               "error": "lease lost: worker died"})
        if attempts >= self.max_attempts:
            target = os.path.join(self._state_dir("failed"), name)
            report.exhausted += 1
        else:
            target = os.path.join(self._shard_dir(shard), name)
            report.requeued += 1
        os.rename(mine, target)
        return True

    def _sweep_requeue_dir(self, pid_alive: Callable[[object], bool],
                           report: RecoveryReport) -> None:
        """Adopt quarantined tickets whose repairing sweep died."""
        requeue_dir = self._state_dir("requeue")
        for entry in self._list(requeue_dir):
            split = self._split_lease(entry)
            if split is None:
                continue
            name, owner = split
            parsed = self._parse(name)
            if parsed is None or owner == os.getpid():
                continue
            if pid_alive(owner):
                continue  # mid-repair, let the owner finish
            self._requeue(name, self.shard_of(parsed[0]),
                          os.path.join(requeue_dir, entry), report)

    # -- introspection --------------------------------------------------

    def counts(self) -> Dict[str, object]:
        per_shard = self._pending_counts()
        # Quarantined tickets (mid-requeue) are logically pending
        # again; they re-enter a shard within one recovery sweep.
        requeue = len(self._list(self._state_dir("requeue")))
        return {
            "pending": sum(per_shard) + requeue,
            "pending_per_shard": per_shard,
            "leased": len(self._list(self._state_dir("leased"))),
            "done": len(self._list(self._state_dir("done"))),
            "failed": len(self._list(self._state_dir("failed"))),
        }

    def done_digests(self) -> Dict[str, Dict[str, object]]:
        """digest -> done payload, for resume's skip-done scan."""
        done: Dict[str, Dict[str, object]] = {}
        directory = self._state_dir("done")
        for name in self._list(directory):
            parsed = self._parse(name)
            if parsed is None:
                continue
            done[parsed[1]] = _read_json(
                os.path.join(directory, name)) or {}
        return done

    def failed_tickets(self) -> Dict[str, Dict[str, object]]:
        """digest -> failed payload (error, attempts)."""
        failed: Dict[str, Dict[str, object]] = {}
        directory = self._state_dir("failed")
        for name in self._list(directory):
            parsed = self._parse(name)
            if parsed is None:
                continue
            failed[parsed[1]] = _read_json(
                os.path.join(directory, name)) or {}
        return failed
