"""Unit tests for the 2D-mesh NoC model."""

from hypothesis import given, strategies as st

from repro.coherence.noc import MeshNoC
from repro.common.params import MachineConfig


def _noc(cores=64):
    return MeshNoC(MachineConfig(num_cores=cores))


class TestHomeTile:
    def test_interleaved_by_line(self):
        noc = _noc()
        assert noc.home_tile(0x0) == 0
        assert noc.home_tile(0x40) == 1
        assert noc.home_tile(0x40 * 64) == 0

    def test_home_in_range(self):
        noc = _noc(16)
        for line in range(100):
            assert 0 <= noc.home_tile(line * 64) < 16


class TestDistance:
    def test_self_distance_zero(self):
        assert _noc().hop_distance(5, 5) == 0

    def test_neighbors(self):
        noc = _noc()  # 8x8 mesh
        assert noc.hop_distance(0, 1) == 1
        assert noc.hop_distance(0, 8) == 1
        assert noc.hop_distance(0, 9) == 2

    def test_corner_to_corner(self):
        noc = _noc()
        assert noc.hop_distance(0, 63) == 14  # (7,7) manhattan

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_symmetric(self, a, b):
        noc = _noc()
        assert noc.hop_distance(a, b) == noc.hop_distance(b, a)

    @given(st.integers(0, 63), st.integers(0, 63), st.integers(0, 63))
    def test_triangle_inequality(self, a, b, c):
        noc = _noc()
        assert (noc.hop_distance(a, c)
                <= noc.hop_distance(a, b) + noc.hop_distance(b, c))


class TestLatency:
    def test_local_is_one_cycle(self):
        assert _noc().latency(3, 3) == 1

    def test_latency_scales_with_hops(self):
        noc = _noc()
        config = MachineConfig()
        assert noc.latency(0, 1) == config.noc_hop_cycles + 1
        assert noc.latency(0, 9) == 2 * config.noc_hop_cycles + 1

    def test_latency_positive(self):
        noc = _noc()
        for a in range(0, 64, 7):
            for b in range(0, 64, 5):
                assert noc.latency(a, b) >= 1
