"""Tests for the repro.obs observability subsystem.

The load-bearing guarantees:

* attaching an :class:`Observer` never changes simulation results —
  with hooks disabled (the default) the :class:`RunSummary` is
  byte-identical, and with hooks enabled everything except the ``obs``
  payload still is;
* the Chrome trace export round-trips through ``json`` and timestamps
  are monotone per track;
* the critical-path attribution reconciles exactly with
  ``RunStats.persist_stall_cycles`` and its segments sum to the
  makespan.
"""

import dataclasses
import json
import pickle

import pytest

from repro.common.params import MachineConfig
from repro.core.simulator import simulate
from repro.exp.runner import Job, execute_job
from repro.obs import Histogram, MetricsRegistry, Observer, merged_registries
from repro.obs.metrics import top_counters
from repro.obs.report import (
    attribute_run,
    attribute_summary,
    render_attribution,
    render_summaries,
)
from repro.obs.trace import TraceCollector, dump_summary_traces, \
    write_chrome_trace
from repro.workloads.harness import WorkloadSpec

MECHANISMS = ("nop", "sb", "bb", "lrp")


def tiny_spec():
    return WorkloadSpec(structure="hashmap", num_threads=4,
                        initial_size=64, ops_per_thread=12, seed=1)


def tiny_config():
    return MachineConfig(num_cores=4)


@pytest.fixture(scope="module")
def runs():
    """(plain result, observed result, observer) per mechanism."""
    spec, config = tiny_spec(), tiny_config()
    out = {}
    for mech in MECHANISMS:
        plain = simulate(spec, mech, config)
        observer = Observer(trace=True)
        observed = simulate(spec, mech, config, observer=observer)
        out[mech] = (plain, observed, observer)
    return out


# ----------------------------------------------------------------------
# Non-perturbation
# ----------------------------------------------------------------------

class TestNonPerturbation:
    def test_disabled_summary_is_byte_identical(self):
        """Default jobs (no obs) pickle to the exact same bytes."""
        job = Job(spec=tiny_spec(), mechanism="lrp", config=tiny_config())
        a, b = execute_job(job), execute_job(job)
        assert a.obs is None
        assert pickle.dumps(a) == pickle.dumps(b)

    @pytest.mark.parametrize("mech", MECHANISMS)
    def test_observer_never_changes_results(self, runs, mech):
        plain, observed, _ = runs[mech]
        assert plain.makespan == observed.makespan
        assert plain.stats.summary() == observed.stats.summary()
        assert plain.stats.stall_breakdown() == \
            observed.stats.stall_breakdown()
        assert len(plain.nvm.persist_log()) == \
            len(observed.nvm.persist_log())

    def test_obs_summary_identical_except_payload(self):
        job = Job(spec=tiny_spec(), mechanism="lrp", config=tiny_config())
        plain = execute_job(job)
        carried = execute_job(dataclasses.replace(job, collect_obs=True))
        assert carried.obs is not None
        stripped = dataclasses.replace(carried, obs=None)
        assert pickle.dumps(stripped) == pickle.dumps(plain)


# ----------------------------------------------------------------------
# Trace export
# ----------------------------------------------------------------------

def _data_events(events):
    return [e for e in events if e.get("ph") != "M"]


class TestTraceExport:
    def test_round_trips_through_json(self, runs, tmp_path):
        _, _, observer = runs["lrp"]
        path = tmp_path / "trace.json"
        events = observer.trace.chrome_events()
        write_chrome_trace(events, str(path))
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["traceEvents"] == events
        assert document["displayTimeUnit"] == "ms"

    @pytest.mark.parametrize("mech", MECHANISMS)
    def test_timestamps_monotone_per_track(self, runs, mech):
        _, _, observer = runs[mech]
        last = {}
        for event in _data_events(observer.trace.chrome_events()):
            track = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(track, 0), event
            assert event.get("dur", 0) >= 0, event
            last[track] = event["ts"]

    def test_metadata_precedes_data_and_names_tracks(self, runs):
        _, _, observer = runs["lrp"]
        events = observer.trace.chrome_events()
        kinds = [e["ph"] for e in events]
        first_data = kinds.index("X") if "X" in kinds else len(kinds)
        assert all(k == "M" for k in kinds[:first_data])
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "core0" in names
        assert "cores" in names  # process group label

    def test_spans_use_microsecond_cycles(self):
        collector = TraceCollector()
        collector.span("core0", "WORK", ts=10, dur=5)
        collector.instant("core0", "evict", ts=12)
        data = _data_events(collector.chrome_events())
        assert data[0]["ts"] == 10 and data[0]["dur"] == 5
        assert data[1]["ph"] == "i" and data[1]["ts"] == 12

    def test_dump_summary_traces_skips_traceless(self, tmp_path):
        job = Job(spec=tiny_spec(), mechanism="bb", config=tiny_config())
        no_trace = execute_job(dataclasses.replace(job, collect_obs=True))
        with_trace = execute_job(
            dataclasses.replace(job, collect_obs=True, collect_trace=True))
        written = dump_summary_traces([no_trace, with_trace],
                                      str(tmp_path))
        assert len(written) == 1
        assert "hashmap-bb-t4" in written[0]
        with open(written[0], encoding="utf-8") as handle:
            assert json.load(handle)["traceEvents"]


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

class TestHistogram:
    def test_power_of_two_buckets(self):
        hist = Histogram()
        for value, bucket in ((0, 0), (1, 0), (2, 1), (3, 2), (4, 2),
                              (5, 3), (8, 3), (9, 4), (-3, 0)):
            before = hist.buckets.get(bucket, 0)
            hist.observe(value)
            assert hist.buckets[bucket] == before + 1, (value, bucket)

    def test_stats_and_mean(self):
        hist = Histogram()
        for value in (2, 4, 6):
            hist.observe(value)
        assert (hist.count, hist.total, hist.min, hist.max) == (3, 12, 2, 6)
        assert hist.mean == 4.0
        assert Histogram().mean == 0.0

    def test_dict_round_trip_and_merge(self):
        a, b = Histogram(), Histogram()
        a.observe(3)
        b.observe(100)
        restored = Histogram.from_dict(
            json.loads(json.dumps(a.to_dict())))
        restored.merge(b)
        assert restored.count == 2
        assert (restored.min, restored.max) == (3, 100)

    def test_negative_values_counted_as_clamped(self):
        hist = Histogram()
        hist.observe(-3)
        hist.observe(-1)
        hist.observe(0)       # non-negative: lands in bucket 0 unclamped
        hist.observe(5)
        assert hist.clamped == 2
        assert hist.buckets[0] == 3
        assert hist.min == -3  # the exact stats keep the true value

    def test_clamped_serializes_and_merges(self):
        a, b = Histogram(), Histogram()
        a.observe(-2)
        b.observe(-7)
        b.observe(4)
        restored = Histogram.from_dict(
            json.loads(json.dumps(a.to_dict())))
        assert restored.clamped == 1
        restored.merge(b)
        assert restored.clamped == 2

    def test_clamped_defaults_for_old_exports(self):
        legacy = {"count": 1, "sum": 3, "min": 3, "max": 3,
                  "buckets": {"2": 1}}
        assert Histogram.from_dict(legacy).clamped == 0


class TestHistogramQuantile:
    def test_extremes_are_exact(self):
        hist = Histogram()
        for value in (3, 17, 90):
            hist.observe(value)
        assert hist.quantile(0.0) == 3.0
        assert hist.quantile(1.0) == 90.0

    def test_empty_histogram_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_out_of_range_q_raises(self):
        hist = Histogram()
        hist.observe(1)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_single_value_all_quantiles_collapse(self):
        hist = Histogram()
        hist.observe(42)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 42.0

    def test_median_lands_in_correct_bucket(self):
        hist = Histogram()
        # 10 small values and 10 large ones: the median rank (10) is
        # the last of the small bucket, p75 lands among the large.
        for _ in range(10):
            hist.observe(4)       # bucket 2: (2, 4]
        for _ in range(10):
            hist.observe(1000)    # bucket 10: (512, 1024]
        assert 2.0 < hist.quantile(0.5) <= 4.0
        assert 512.0 < hist.quantile(0.75) <= 1000.0

    def test_interpolation_clamped_to_observed_range(self):
        # One bucket spans (512, 1024] but the only values are 600:
        # interpolated quantiles must stay at the observed bounds.
        hist = Histogram()
        for _ in range(5):
            hist.observe(600)
        assert hist.quantile(0.5) == 600.0
        assert hist.quantile(0.99) == 600.0

    def test_quantiles_are_monotone(self):
        hist = Histogram()
        for value in (1, 2, 5, 9, 30, 70, 200, 900, 4000, 4001):
            hist.observe(value)
        quantiles = [hist.quantile(q / 100) for q in range(0, 101, 5)]
        assert quantiles == sorted(quantiles)
        assert quantiles[0] == 1.0
        assert quantiles[-1] == 4001.0

    def test_clamped_negatives_anchor_bucket_zero(self):
        # `clamped`-aware: negatives are stored in bucket 0 but the
        # interpolation floor is the true (negative) minimum.
        hist = Histogram()
        hist.observe(-8)
        hist.observe(-8)
        hist.observe(0)
        hist.observe(64)
        assert hist.quantile(0.0) == -8.0
        assert -8.0 <= hist.quantile(0.25) <= 0.0
        assert hist.quantile(1.0) == 64.0

    def test_matches_exact_on_power_of_two_data(self):
        # Values that sit exactly on bucket upper bounds reproduce the
        # exact nearest-rank answer.
        hist = Histogram()
        values = [2 ** k for k in range(1, 9)]  # 2..256, one per bucket
        for value in values:
            hist.observe(value)
        assert hist.quantile(0.5) == 16.0   # rank 4 of 8
        assert hist.quantile(1.0) == 256.0


class TestRegistry:
    def test_count_observe_and_prefix_scan(self):
        reg = MetricsRegistry()
        reg.count("stall.barrier", 10)
        reg.count("stall.barrier", 5)
        reg.count("persist.lines")
        reg.observe("persist.latency", 60)
        assert reg.counter("stall.barrier") == 15
        assert reg.counter("missing") == 0
        assert reg.counters_with_prefix("stall.") == {"stall.barrier": 15}
        assert reg.histograms["persist.latency"].count == 1

    def test_merged_registries(self):
        regs = []
        for value in (1, 2):
            reg = MetricsRegistry()
            reg.count("noc.msgs", value)
            reg.observe("l1.set_occupancy", value)
            regs.append(reg.to_dict())
        merged = merged_registries(regs)
        assert merged.counter("noc.msgs") == 3
        assert merged.histograms["l1.set_occupancy"].count == 2

    def test_top_counters(self):
        reg = MetricsRegistry()
        reg.count("coh.evictions", 7)
        reg.count("coh.invalidations", 9)
        reg.count("other", 100)
        assert top_counters(reg, "coh.") == [
            "coh.invalidations=9", "coh.evictions=7"]


# ----------------------------------------------------------------------
# Attribution
# ----------------------------------------------------------------------

class TestAttribution:
    @pytest.mark.parametrize("mech", MECHANISMS)
    def test_reconciles_with_run_stats(self, runs, mech):
        _, observed, observer = runs[mech]
        attribution = attribute_run(observed.stats,
                                    observer.metrics.counters)
        assert (attribution.persist_stall_total
                == observed.stats.persist_stall_cycles)

    @pytest.mark.parametrize("mech", MECHANISMS)
    def test_segments_sum_to_makespan(self, runs, mech):
        _, observed, observer = runs[mech]
        attribution = attribute_run(observed.stats,
                                    observer.metrics.counters)
        critical = attribution.critical_core
        assert critical.total == observed.makespan == attribution.makespan
        assert (critical.compute + critical.coherence
                + critical.persist_stall) == critical.total
        assert all(core.coherence >= 0 for core in attribution.cores)

    def test_summary_attribution_and_render(self):
        job = Job(spec=tiny_spec(), mechanism="sb", config=tiny_config(),
                  collect_obs=True)
        summary = execute_job(job)
        attribution = attribute_summary(summary)
        assert (attribution.persist_stall_total
                == summary.stats.persist_stall_cycles)
        report = render_summaries([summary], title="Tiny SB run")
        assert "Tiny SB run" in report
        assert "hashmap" in report and "sb" in report

    def test_attribute_summary_requires_obs(self):
        job = Job(spec=tiny_spec(), mechanism="nop", config=tiny_config())
        with pytest.raises(ValueError, match="no\\s+obs data"):
            attribute_summary(execute_job(job))

    def test_render_handles_empty(self):
        report = render_attribution([], title="empty")
        assert "empty" in report
