"""Directory-based MESI coherence fabric (Table 1: directory MESI).

The fabric owns the per-line directory state (single M/E owner or a set
of S sharers), the banked-LLC/home-tile timing, and the coherence
transitions triggered by core accesses. It is *behavioral*: transitions
are applied atomically per access, with additive latency composed from
the Table 1 parameters — but the events the persistency mechanisms hook
(evictions, downgrades, invalidations of dirty lines, blocked lines at
the directory) are modeled individually, because they are exactly what
differentiates SB/BB/LRP.

Persistency interplay (who calls whom):

* The :class:`~repro.core.machine.Machine` performs an access through
  :meth:`CoherenceFabric.access`, which returns the coherence latency
  plus the list of side effects (victim eviction in the requester's L1,
  downgrade/invalidation of a remote owner's dirty line).
* The machine then invokes the active persistency mechanism's hooks for
  each side effect; the hooks issue NVM persists and return extra stall
  cycles charged to the requester.
* Mechanisms may *block* a line at the directory until a persist ack
  (LRP invariant I4); subsequent accesses to that line wait it out.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from repro.coherence.l1cache import CacheLine, L1Cache, MESIState
from repro.coherence.noc import MeshNoC
from repro.common.params import MachineConfig
from repro.obs import Observer


@dataclasses.dataclass
class Downgrade:
    """A remote owner's line was demoted on behalf of the requester."""

    owner: int
    line: CacheLine
    to_state: MESIState          # SHARED (read request) or INVALID (write)
    had_pending: bool            # dirty words existed before the demotion
    was_modified: bool = False   # line held modified data (a writeback)


@dataclasses.dataclass
class Eviction:
    """A victim line displaced from the requester's own L1."""

    core: int
    line: CacheLine
    had_pending: bool
    was_modified: bool = False


@dataclasses.dataclass
class AccessResult:
    """Outcome of one coherence access (before persistency stalls)."""

    latency: int
    l1_hit: bool
    block_wait: int = 0
    eviction: Optional[Eviction] = None
    downgrade: Optional[Downgrade] = None
    invalidated_sharers: int = 0
    line: Optional[CacheLine] = None   # the requester's (now valid) line


@dataclasses.dataclass
class _DirEntry:
    owner: Optional[int] = None        # core holding M or E
    sharers: Set[int] = dataclasses.field(default_factory=set)


class CoherenceFabric:
    """All L1s + directory + NoC, orchestrating MESI transitions."""

    def __init__(self, config: MachineConfig,
                 obs: Optional[Observer] = None) -> None:
        self._config = config
        self.obs = obs
        self.noc = MeshNoC(config, obs=obs)
        self.l1s: List[L1Cache] = [
            L1Cache(core_id, config, obs=obs)
            for core_id in range(config.num_cores)
        ]
        self._dir: Dict[int, _DirEntry] = {}
        self._blocked_until: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Directory-side services used by persistency mechanisms
    # ------------------------------------------------------------------

    def block_line_until(self, line_addr: int, time: int) -> None:
        """Block requests for a line until ``time`` (LRP invariant I4)."""
        current = self._blocked_until.get(line_addr, 0)
        if self.obs is not None and time > current:
            self.obs.count("dir.lines_blocked")
        self._blocked_until[line_addr] = max(current, time)

    def blocked_until(self, line_addr: int) -> int:
        return self._blocked_until.get(line_addr, 0)

    def _entry(self, line_addr: int) -> _DirEntry:
        entry = self._dir.get(line_addr)
        if entry is None:
            entry = _DirEntry()
            self._dir[line_addr] = entry
        return entry

    def directory_state(self, line_addr: int) -> _DirEntry:
        """Read-only view of a line's directory entry (for tests)."""
        return self._entry(line_addr)

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------

    def access(self, core_id: int, line_addr: int, *, exclusive: bool,
               now: int) -> AccessResult:
        """Obtain ``line_addr`` in the required state for ``core_id``.

        Applies all coherence transitions and returns latency plus the
        side effects; persistency stalls are layered on by the caller.
        """
        cfg = self._config
        l1 = self.l1s[core_id]
        line = l1.lookup(line_addr)
        home = self.noc.home_tile(line_addr)

        if line is not None and line.state is not MESIState.INVALID:
            if not exclusive or line.state in (MESIState.MODIFIED,
                                               MESIState.EXCLUSIVE):
                if exclusive and line.state is MESIState.EXCLUSIVE:
                    line.state = MESIState.MODIFIED  # silent E->M upgrade
                return AccessResult(latency=cfg.l1_hit_cycles, l1_hit=True,
                                    line=line)
            # S -> M upgrade: invalidate the other sharers via the home.
            return self._upgrade(core_id, line, home, now)

        return self._miss(core_id, line_addr, home, exclusive=exclusive,
                          now=now)

    def _upgrade(self, core_id: int, line: CacheLine, home: int,
                 now: int) -> AccessResult:
        cfg = self._config
        line_addr = line.addr
        entry = self._entry(line_addr)
        arrival = now + cfg.l1_hit_cycles + self.noc.latency(core_id, home)
        block_wait = max(0, self.blocked_until(line_addr) - arrival)
        if self.obs is not None:
            self.obs.count("dir.upgrades")
            if block_wait:
                self.obs.count("dir.block_wait_cycles", block_wait)
                self.obs.observe("dir.block_wait", block_wait)
        invalidated = 0
        for sharer in list(entry.sharers):
            if sharer == core_id:
                continue
            self._invalidate_sharer(sharer, line_addr)
            invalidated += 1
        entry.sharers = set()
        entry.owner = core_id
        line.state = MESIState.MODIFIED
        latency = (cfg.l1_hit_cycles + 2 * self.noc.latency(core_id, home)
                   + cfg.llc_hit_cycles + block_wait)
        if invalidated:
            latency += self.noc.latency(home, core_id)  # inv/ack round, overlapped
        return AccessResult(latency=latency, l1_hit=False,
                            block_wait=block_wait,
                            invalidated_sharers=invalidated, line=line)

    def _miss(self, core_id: int, line_addr: int, home: int, *,
              exclusive: bool, now: int) -> AccessResult:
        cfg = self._config
        l1 = self.l1s[core_id]
        entry = self._entry(line_addr)

        arrival = now + cfg.l1_hit_cycles + self.noc.latency(core_id, home)
        block_wait = max(0, self.blocked_until(line_addr) - arrival)
        if self.obs is not None:
            self.obs.count("dir.misses")
            if block_wait:
                self.obs.count("dir.block_wait_cycles", block_wait)
                self.obs.observe("dir.block_wait", block_wait)

        downgrade: Optional[Downgrade] = None
        latency = (cfg.l1_hit_cycles + self.noc.latency(core_id, home)
                   + cfg.llc_hit_cycles + block_wait)

        if entry.owner is not None and entry.owner != core_id:
            owner = entry.owner
            owner_line = self.l1s[owner].lookup(line_addr, touch=False)
            if owner_line is None:
                raise AssertionError(
                    f"directory names core {owner} owner of "
                    f"{line_addr:#x} but the line is not resident")
            to_state = MESIState.INVALID if exclusive else MESIState.SHARED
            downgrade = Downgrade(
                owner=owner, line=owner_line, to_state=to_state,
                had_pending=owner_line.has_pending,
                was_modified=owner_line.state is MESIState.MODIFIED)
            latency += (self.noc.latency(home, owner) + cfg.l1_hit_cycles
                        + self.noc.latency(owner, core_id))
            if to_state is MESIState.INVALID:
                self.l1s[owner].remove(line_addr)
            else:
                owner_line.state = MESIState.SHARED
                entry.sharers.add(owner)
            entry.owner = None
        else:
            latency += self.noc.latency(home, core_id)

        invalidated = 0
        if exclusive:
            for sharer in list(entry.sharers):
                if sharer == core_id:
                    continue
                self._invalidate_sharer(sharer, line_addr)
                invalidated += 1
            entry.sharers = set()

        # Make room in the requester's set.
        eviction: Optional[Eviction] = None
        victim = l1.select_victim(line_addr)
        if victim is not None:
            eviction = self._evict(core_id, victim)

        if exclusive:
            new_state = MESIState.MODIFIED
            entry.owner = core_id
        elif not entry.sharers and entry.owner is None:
            new_state = MESIState.EXCLUSIVE
            entry.owner = core_id
        else:
            new_state = MESIState.SHARED
            entry.sharers.add(core_id)

        filled = l1.fill(line_addr, new_state)
        return AccessResult(latency=latency, l1_hit=False,
                            block_wait=block_wait, eviction=eviction,
                            downgrade=downgrade,
                            invalidated_sharers=invalidated, line=filled)

    def _invalidate_sharer(self, core_id: int, line_addr: int) -> None:
        line = self.l1s[core_id].lookup(line_addr, touch=False)
        if line is not None:
            if line.has_pending:
                raise AssertionError(
                    "a SHARED line must not hold unpersisted writes")
            self.l1s[core_id].remove(line_addr)

    def _evict(self, core_id: int, victim: CacheLine) -> Eviction:
        """Displace ``victim`` from ``core_id``'s L1, fixing the directory."""
        entry = self._entry(victim.addr)
        if entry.owner == core_id:
            entry.owner = None
        entry.sharers.discard(core_id)
        self.l1s[core_id].remove(victim.addr)
        return Eviction(core=core_id, line=victim,
                        had_pending=victim.has_pending,
                        was_modified=victim.state is MESIState.MODIFIED)

    # ------------------------------------------------------------------
    # Invariant checks (used by the property tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> List[str]:
        """Verify SWMR and directory/cache agreement; return problems."""
        problems: List[str] = []
        holders: Dict[int, List[int]] = {}
        for l1 in self.l1s:
            for line in l1.iter_lines():
                holders.setdefault(line.addr, []).append(l1.core_id)
                if line.state in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
                    entry = self._dir.get(line.addr)
                    if entry is None or entry.owner != l1.core_id:
                        problems.append(
                            f"core {l1.core_id} holds {line.addr:#x} in "
                            f"{line.state.value} without directory ownership")
        for addr, entry in self._dir.items():
            if entry.owner is not None:
                for l1 in self.l1s:
                    line = l1.lookup(addr, touch=False)
                    if (l1.core_id != entry.owner and line is not None
                            and line.state is not MESIState.INVALID):
                        problems.append(
                            f"{addr:#x} owned by {entry.owner} but also "
                            f"valid in core {l1.core_id}")
        for addr, cores in holders.items():
            m_holders = [
                c for c in cores
                if self.l1s[c].lookup(addr, touch=False).state
                in (MESIState.MODIFIED, MESIState.EXCLUSIVE)
            ]
            if len(m_holders) > 1:
                problems.append(
                    f"SWMR violated for {addr:#x}: M/E in cores {m_holders}")
        return problems
