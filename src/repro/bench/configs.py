"""Benchmark configurations: the paper's setup, scaled for Python.

The paper evaluates on a Pin-based simulator at 64 cores, 32 worker
threads, 64K-1M element structures and millions of operations. A pure
Python reproduction is ~10^4x slower per simulated memory operation, so
the benchmark harness scales the *sizes* down while preserving the
ratios that drive the results:

* **structure footprint >> L1 capacity** — released lines are evicted
  (and persisted off the critical path, LRP invariant I1) long before
  another thread reuses them, keeping inter-thread I2 blocking rare,
  as at paper scale. We shrink the modeled L1 to 8KB alongside the
  structures to stay in this regime.
* **NVM bandwidth scaled with thread count** — the paper's PCM
  subsystem is provisioned for 64 cores; with our shorter simulated
  ops, 8 memory controllers keep the persist-rate-to-bandwidth ratio
  out of the saturation regime the original does not operate in.
* **non-memory work per instruction** — ``compute_cycles_per_op=4``
  stands in for the ALU/branch work between memory accesses.

Three scales are provided: ``quick`` (seconds per experiment, used by
the pytest benchmarks), ``full`` (minutes, closer to paper ratios) and
``paper`` (the paper's element counts outright with hundreds of ops
per thread — sized for overnight sweeps on the batch engine, not for
interactive use; see ``repro.bench.profile`` for per-cell timing and
full-sweep projection).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.common.params import MachineConfig, NVMMode
from repro.workloads.harness import WorkloadSpec

#: The timing model used by every benchmark (Table 1, scaled as above).
SCALED_CONFIG = MachineConfig(
    l1_size_bytes=8 * 1024,
    num_memory_controllers=8,
    compute_cycles_per_op=4,
)

#: Table 1 verbatim (used for the configuration table and unit tests).
PAPER_CONFIG = MachineConfig()

#: Mechanisms in the order Figures 5/7 plot them.
FIGURE_MECHANISMS = ["sb", "bb", "lrp"]

#: Thread counts of the Figure 8 sweep.
FIGURE8_THREADS = [1, 8, 16, 32]


def uncached(config: MachineConfig) -> MachineConfig:
    """The Figure 7 variant: NVM-side DRAM cache disabled."""
    return dataclasses.replace(config, nvm_mode=NVMMode.UNCACHED)


def bench_config(config: MachineConfig) -> MachineConfig:
    """The benchmark variant of a config: no per-event trace retention.

    Figure runs only consume aggregate statistics and the persist log;
    skipping the event list saves a large slice of simulation time and
    memory without changing a single makespan (the checker and
    recovery/replay tests, which need the trace, keep the default).
    """
    return dataclasses.replace(config, record_trace=False)


@dataclasses.dataclass(frozen=True)
class WorkloadScale:
    """Per-workload scaled sizes for one benchmark scale."""

    initial_size: int
    ops_per_thread: int


# O(1)/O(log n) structures run at the paper's default 64K elements
# outright (their per-op cost does not grow with size); the O(n)
# linked list is scaled down and documented in EXPERIMENTS.md.
_QUICK: Dict[str, WorkloadScale] = {
    "linkedlist": WorkloadScale(initial_size=256, ops_per_thread=10),
    "hashmap": WorkloadScale(initial_size=65536, ops_per_thread=32),
    "bstree": WorkloadScale(initial_size=65536, ops_per_thread=32),
    "skiplist": WorkloadScale(initial_size=65536, ops_per_thread=24),
    "queue": WorkloadScale(initial_size=1024, ops_per_thread=32),
}

_FULL: Dict[str, WorkloadScale] = {
    "linkedlist": WorkloadScale(initial_size=512, ops_per_thread=24),
    "hashmap": WorkloadScale(initial_size=65536, ops_per_thread=64),
    "bstree": WorkloadScale(initial_size=65536, ops_per_thread=64),
    "skiplist": WorkloadScale(initial_size=65536, ops_per_thread=48),
    "queue": WorkloadScale(initial_size=2048, ops_per_thread=64),
}

# Paper scale: 256K-element O(1)/O(log n) structures (the paper's
# mid-range sizing) and enough ops per thread that the measured phase
# dominates warmup. A single fig5 cell at this scale is minutes on the
# batch engine; the full 20-cell sweep is an overnight job. The O(n)
# linked list stays at 1K elements — beyond that its traversals alone
# dwarf every persistency effect being measured.
_PAPER: Dict[str, WorkloadScale] = {
    "linkedlist": WorkloadScale(initial_size=1024, ops_per_thread=48),
    "hashmap": WorkloadScale(initial_size=262144, ops_per_thread=512),
    "bstree": WorkloadScale(initial_size=262144, ops_per_thread=384),
    "skiplist": WorkloadScale(initial_size=262144, ops_per_thread=256),
    "queue": WorkloadScale(initial_size=65536, ops_per_thread=512),
}

SCALES = {"quick": _QUICK, "full": _FULL, "paper": _PAPER}


# ----------------------------------------------------------------------
# KV-service scenario (request-level SLO figure)
# ----------------------------------------------------------------------

#: Mechanisms the KV service figure compares, in plotting order.
KV_FIGURE_MECHANISMS = ["sb", "bb", "lrp"]


@dataclasses.dataclass(frozen=True)
class KVScale:
    """Per-scale sizing of the KV-service scenario."""

    num_threads: int
    initial_size: int
    requests_per_thread: int


# The service story needs enough requests per client for tail
# percentiles to mean something (p99 of 64 requests x 8 clients is the
# ~5th-worst request); 'paper' pushes to YCSB-like client counts.
_KV_SCALES: Dict[str, KVScale] = {
    "quick": KVScale(num_threads=8, initial_size=512,
                     requests_per_thread=64),
    "full": KVScale(num_threads=16, initial_size=2048,
                    requests_per_thread=192),
    "paper": KVScale(num_threads=32, initial_size=8192,
                     requests_per_thread=512),
}


def kv_figure_spec(*, structure: str = "hashmap", scale: str = "quick",
                   seed: int = 42):
    """The KVServiceSpec for the service-observability figure."""
    from repro.workloads.kvservice import KVServiceSpec

    try:
        sizing = _KV_SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}") from None
    return KVServiceSpec(
        structure=structure,
        num_threads=sizing.num_threads,
        initial_size=sizing.initial_size,
        requests_per_thread=sizing.requests_per_thread,
        seed=seed,
    )


def figure_spec(workload: str, *, num_threads: int = 32,
                scale: str = "quick", seed: int = 1) -> WorkloadSpec:
    """The WorkloadSpec for one workload at a benchmark scale."""
    try:
        sizing = SCALES[scale][workload]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r} or workload {workload!r}") from None
    return WorkloadSpec(
        structure=workload,
        num_threads=num_threads,
        initial_size=sizing.initial_size,
        ops_per_thread=sizing.ops_per_thread,
        seed=seed,
    )


def all_figure_specs(*, num_threads: int = 32, scale: str = "quick",
                     seed: int = 1) -> List[WorkloadSpec]:
    """One spec per workload, in the paper's plotting order."""
    from repro.lfds import WORKLOAD_NAMES

    return [figure_spec(name, num_threads=num_threads, scale=scale,
                        seed=seed) for name in WORKLOAD_NAMES]
