"""Benchmark harness regenerating the paper's evaluation figures."""

from repro.bench.configs import (
    FIGURE8_THREADS,
    FIGURE_MECHANISMS,
    PAPER_CONFIG,
    SCALED_CONFIG,
    all_figure_specs,
    figure_spec,
    uncached,
)
from repro.bench.figures import (
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_recovery_matrix,
    run_ret_ablation,
    run_size_sensitivity,
)

__all__ = [
    "FIGURE8_THREADS",
    "FIGURE_MECHANISMS",
    "PAPER_CONFIG",
    "SCALED_CONFIG",
    "all_figure_specs",
    "figure_spec",
    "uncached",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_recovery_matrix",
    "run_ret_ablation",
    "run_size_sensitivity",
]
