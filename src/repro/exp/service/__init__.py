"""Persistent experiment job service.

The :mod:`repro.exp` runner is a one-shot fan-out: perfect for a
figure that finishes in seconds, useless for a paper-scale campaign
(64K-1M-key configs x mechanisms x thread counts x seeds) that must
survive crashes, resume where it stopped, and stream results while it
runs. This package layers a job service on the existing
runner/cache/heartbeat stack:

* :mod:`~repro.exp.service.queue` — a crash-safe on-disk work queue.
  Every job is a ticket file keyed by its content-address digest;
  state transitions (``pending -> leased -> done/failed``) are atomic
  renames, so a SIGKILL at any instant leaves the queue in a state
  the next ``resume`` repairs mechanically (queue-based load
  leveling). Leases carry the worker pid and an expiry; dead workers'
  jobs are re-queued with bounded retry.
* :mod:`~repro.exp.service.campaign` — the campaign directory: an
  append-only journal of job specs, an incremental results journal
  each completed job appends to, a campaign-local content-addressed
  result cache (read-through to ``$REPRO_CACHE_SHARED``), and the
  deterministic byte-identical :meth:`~Campaign.aggregate`.
* :mod:`~repro.exp.service.worker` — the worker pool: each worker
  drains its own shard of the sweep grid and steals from the longest
  pending shard when idle; a coordinator recovers dead workers'
  leases and feeds progress to the heartbeat/watch stack.
  :class:`~repro.exp.service.worker.ServiceRunner` adapts a campaign
  to the :class:`~repro.exp.runner.ExperimentRunner` interface so
  ``repro.bench.figures --service DIR`` runs its grid as a resumable
  campaign.
* ``python -m repro.exp.service`` — ``submit`` / ``run`` / ``status``
  / ``resume`` / ``aggregate`` / ``--selftest``. The selftest pins
  the headline guarantee: a campaign SIGKILL'd mid-sweep and resumed
  produces **byte-identical** aggregate results to an uninterrupted
  run, with zero re-execution of jobs already in the journal or
  cache.

Everything downstream of the queue is the existing, heavily pinned
execution path (:func:`repro.exp.runner.execute_job`), so service
runs inherit every bit-identity guarantee the runner already has.
"""

from repro.exp.service.campaign import Campaign, create_campaign, open_campaign
from repro.exp.service.codec import decode_job, encode_job
from repro.exp.service.queue import Ticket, WorkQueue
from repro.exp.service.worker import ServiceRunner, run_campaign, worker_loop

__all__ = [
    "Campaign",
    "ServiceRunner",
    "Ticket",
    "WorkQueue",
    "create_campaign",
    "decode_job",
    "encode_job",
    "open_campaign",
    "run_campaign",
    "worker_loop",
]
