"""Crash-recovery experiments and validator sensitivity tests.

The paper's core claim (Sections 3-4): RP-enforcing mechanisms leave a
consistent cut in NVM at every instant, so LFDs null-recover; ARP and
volatile execution do not.
"""

import pytest

from repro.common.params import MachineConfig
from repro.core.recovery import (
    CrashOutcome,
    crash_points,
    crash_test,
    exhaustive_crash_test,
)
from repro.core.simulator import simulate
from repro.lfds import WORKLOAD_NAMES
from repro.lfds.base import RecoveryReport, mark
from repro.lfds.harris import KEY as H_KEY, NEXT as H_NEXT, NODE_WORDS
from repro.lfds.linkedlist import LinkedList
from repro.memory.address import HeapAllocator
from repro.workloads.harness import WorkloadSpec

CFG = MachineConfig(num_cores=8, l1_size_bytes=8 * 1024)


def _spec(workload, seed=0):
    return WorkloadSpec(structure=workload, num_threads=6,
                        initial_size=128, ops_per_thread=20, seed=seed)


class TestCrashPoints:
    def test_includes_endpoints(self):
        points = crash_points(100, num_points=5)
        assert 0 in points and 100 in points

    def test_deterministic(self):
        assert crash_points(500, 20, seed=3) == crash_points(500, 20,
                                                             seed=3)

    def test_bounded(self):
        for p in crash_points(50, 30):
            assert 0 <= p <= 50

    def test_short_log(self):
        assert crash_points(0, 10) == [0]

    def test_short_log_every_prefix_once(self):
        """A budget covering the whole log yields each prefix exactly
        once, sorted — no duplicates from rejection sampling."""
        assert crash_points(3, 10) == [0, 1, 2, 3]
        assert crash_points(5, 6) == [0, 1, 2, 3, 4, 5]

    def test_sorted_and_duplicate_free(self):
        points = crash_points(200, 40, seed=11)
        assert points == sorted(points)
        assert len(points) == len(set(points)) == 40


class TestCrashPointsContract:
    """num_points < 2 cannot hold both mandatory endpoints — the
    documented contract is to raise, never to silently drop one."""

    @pytest.mark.parametrize("log_length", [0, 1, 5])
    @pytest.mark.parametrize("num_points", [0, 1])
    def test_fewer_than_two_points_rejected(self, num_points,
                                            log_length):
        with pytest.raises(ValueError, match="num_points must be >= 2"):
            crash_points(log_length, num_points)

    @pytest.mark.parametrize("log_length,expected", [
        (0, [0]),           # only one distinct prefix exists
        (1, [0, 1]),
        (5, [0, 5]),        # endpoints, nothing sampled in between
    ])
    def test_minimum_budget_exact_points(self, log_length, expected):
        assert crash_points(log_length, 2) == expected

    @pytest.mark.parametrize("log_length", [0, 1, 5])
    def test_length_is_min_of_budget_and_prefixes(self, log_length):
        points = crash_points(log_length, 2)
        assert len(points) == min(2, log_length + 1)


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("mechanism", ["sb", "bb", "lrp"])
class TestRPMechanismsRecover:
    def test_every_crash_point_recovers(self, workload, mechanism):
        result = simulate(_spec(workload), mechanism=mechanism,
                          config=CFG)
        campaign = exhaustive_crash_test(result)
        assert campaign.all_recovered, [
            (o.prefix_len, o.report.problems[:1])
            for o in campaign.failures[:3]
        ]


@pytest.mark.slow
class TestWeakMechanismsViolate:
    @pytest.mark.parametrize("mechanism", ["nop", "arp"])
    def test_violations_exist_somewhere(self, mechanism):
        """Across the five LFDs and a few seeds, a weak mechanism must
        leave at least one unrecoverable crash state."""
        failures = 0
        for workload in ("linkedlist", "hashmap", "bstree", "skiplist"):
            for seed in (0, 1):
                result = simulate(_spec(workload, seed),
                                  mechanism=mechanism, config=CFG)
                failures += len(exhaustive_crash_test(result).failures)
        assert failures > 0

    def test_nop_violates_on_most_structures(self):
        violating = 0
        for workload in WORKLOAD_NAMES:
            result = simulate(_spec(workload), mechanism="nop",
                              config=CFG)
            if exhaustive_crash_test(result).failures:
                violating += 1
        assert violating >= 3


class TestExpectedFailureContract:
    """The Figure-1 contract on a small, fast hashmap run: weak
    mechanisms must leave unrecoverable crash states, RP-enforcing
    ones must not (the fuzzer's exit contract builds on this)."""

    SPEC = WorkloadSpec(structure="hashmap", num_threads=4,
                        initial_size=64, ops_per_thread=8, seed=1)
    SMALL_CFG = MachineConfig(num_cores=8, l1_size_bytes=4 * 1024)

    @pytest.mark.parametrize("mechanism", ["arp", "nop"])
    def test_weak_mechanisms_report_failures(self, mechanism):
        result = simulate(self.SPEC, mechanism=mechanism,
                          config=self.SMALL_CFG)
        campaign = exhaustive_crash_test(result)
        assert not campaign.all_recovered
        assert campaign.failures

    @pytest.mark.parametrize("mechanism", ["sb", "bb", "lrp"])
    def test_enforcing_mechanisms_all_recover(self, mechanism):
        result = simulate(self.SPEC, mechanism=mechanism,
                          config=self.SMALL_CFG)
        campaign = exhaustive_crash_test(result)
        assert campaign.all_recovered, [
            (o.prefix_len, o.report.problems[:1])
            for o in campaign.failures[:3]
        ]


class TestCampaignAPI:
    def test_summary_strings(self):
        result = simulate(_spec("hashmap"), mechanism="lrp", config=CFG)
        campaign = crash_test(result, num_points=10)
        text = campaign.summary()
        assert "hashmap" in text and "lrp" in text

    def test_crash_outcome_recovered_flag(self):
        ok = CrashOutcome(0, RecoveryReport("x", True, []))
        bad = CrashOutcome(0, RecoveryReport("x", False, ["p"]))
        assert ok.recovered and not bad.recovered

    def test_full_log_prefix_always_consistent_for_lrp(self):
        result = simulate(_spec("skiplist"), mechanism="lrp", config=CFG)
        log_len = len(result.nvm.persist_log())
        image = result.nvm.image_after_prefix(log_len)
        assert result.structure.validate_image(image).ok


@pytest.mark.slow
class TestValidatorSensitivity:
    """The validators must actually detect the Figure 1 failure modes."""

    def _fresh_list(self, keys=(1, 2, 3)):
        structure = LinkedList(HeapAllocator(line_bytes=64))
        memory = {}
        structure.build_initial(keys, memory)
        return structure, memory

    def test_clean_image_passes(self):
        structure, memory = self._fresh_list()
        assert structure.validate_image(memory).ok

    def test_dangling_link_detected(self):
        """A link to a node whose fields never persisted (Fig 1e)."""
        structure, memory = self._fresh_list()
        ghost = 0x9990000
        memory[structure.head_ptr] = ghost
        report = structure.validate_image(memory)
        assert not report.ok
        assert "never persisted" in report.problems[0]

    def test_partial_node_detected(self):
        structure, memory = self._fresh_list()
        ghost = 0x9990000
        memory[structure.head_ptr] = ghost
        memory[ghost + H_KEY * 8] = 0   # key persisted ...
        # ... but value and next did not.
        assert not structure.validate_image(memory).ok

    def test_ordering_violation_detected(self):
        structure, memory = self._fresh_list(keys=(1, 2, 3))
        # Swap two keys to break sortedness.
        first = memory[structure.head_ptr]
        second = memory[first + H_NEXT * 8]
        memory[first + H_KEY * 8], memory[second + H_KEY * 8] = (
            memory[second + H_KEY * 8], memory[first + H_KEY * 8])
        report = structure.validate_image(memory)
        assert not report.ok
        assert any("ordering" in p for p in report.problems)

    def test_cycle_detected(self):
        structure, memory = self._fresh_list(keys=(1, 2))
        first = memory[structure.head_ptr]
        second = memory[first + H_NEXT * 8]
        memory[second + H_NEXT * 8] = first  # cycle
        report = structure.validate_image(memory)
        assert not report.ok

    def test_marked_nodes_not_live(self):
        structure, memory = self._fresh_list(keys=(1, 2))
        first = memory[structure.head_ptr]
        memory[first + H_NEXT * 8] = mark(memory[first + H_NEXT * 8])
        report = structure.validate_image(memory)
        assert report.ok
        assert report.live_keys == {2}
