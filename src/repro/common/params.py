"""Machine configuration for the LRP reproduction.

The defaults reproduce Table 1 of the paper (simulator configuration):

    Processor           64-core (out-of-order), 2.5 GHz
    L1 I+D cache (pvt)  32KB, 2 cycles, 8-way, 64B lines
    L2 (NUCA, shared)   1MB x 64 tiles, 16-way, 30 cycles
    On-chip network     2D mesh
    Coherence           Directory-based MESI
    NVM (PCM)           cached mode: 120 cycles, uncached mode: 350 cycles
    RET (private)       32 entries

We model the LLC as capacity-infinite (64MB in the paper vs. our scaled
working sets: LLC misses to volatile DRAM are not the effect under
study; the persist path to NVM is modeled in full).
"""

from __future__ import annotations

import dataclasses
import enum
import math


class NVMMode(enum.Enum):
    """NVM write-persistence latency regime (Section 6.3).

    CACHED models Intel Optane with a battery-backed NVM-side DRAM
    cache: a writeback persists as soon as it reaches that cache.
    UNCACHED disables the DRAM cache, exposing raw NVM write latency.
    """

    CACHED = "cached"
    UNCACHED = "uncached"


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """All tunables of the simulated machine.

    Instances are immutable; derive variants with
    :func:`dataclasses.replace`.
    """

    num_cores: int = 64

    # L1 (private, per core)
    l1_size_bytes: int = 32 * 1024
    l1_assoc: int = 8
    l1_hit_cycles: int = 2
    line_bytes: int = 64

    # LLC (logically shared, banked per tile)
    llc_hit_cycles: int = 30

    # 2D-mesh on-chip network
    noc_hop_cycles: int = 2

    # NVM (PCM-like)
    nvm_mode: NVMMode = NVMMode.CACHED
    nvm_cached_cycles: int = 120
    nvm_uncached_cycles: int = 350
    # Per-controller occupancy of one line persist (bandwidth model).
    nvm_cached_occupancy: int = 16
    nvm_uncached_occupancy: int = 64
    num_memory_controllers: int = 4

    # BB hardware: maximum epochs a core may have outstanding
    # (unacknowledged) before a barrier throttles — the bounded
    # epoch-tag window of cache-based buffered epoch persistency.
    bb_max_outstanding_epochs: int = 4
    # Whether BB's inter-epoch ordering is pipelined by the memory
    # system (ack constrained behind the previous epoch) or enforced
    # by ack-gated serial drain. Pipelined is the performant design;
    # the ablation benchmark flips this.
    bb_pipelined_epochs: bool = True

    # Persist-buffer designs (DPO/HOPS): per-core capacity of
    # unacknowledged word persists before the core back-pressures.
    persist_buffer_entries: int = 32

    # LRP hardware (Section 5.2.1)
    ret_entries: int = 32
    ret_watermark: int = 24  # persist oldest release when RET reaches this
    epoch_bits: int = 8      # epoch-id counter width; wrap flushes the L1

    # Fixed non-memory work charged between memory operations, standing
    # in for the ALU/branch instructions of the real workloads.
    compute_cycles_per_op: int = 1

    # Whether the machine keeps the full per-event execution trace.
    # Figure runs only need aggregate statistics and the persist log;
    # the consistency checker, happens-before construction and replay
    # need the event list and must leave this on. Disabling it never
    # changes timing: makespans are bit-identical either way.
    record_trace: bool = True

    def __post_init__(self) -> None:
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        if self.l1_size_bytes % (self.line_bytes * self.l1_assoc):
            raise ValueError("L1 size must be divisible by assoc * line size")
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if not 0 < self.ret_watermark <= self.ret_entries:
            raise ValueError("ret_watermark must be in (0, ret_entries]")

    @property
    def l1_num_sets(self) -> int:
        """Number of sets in each private L1."""
        return self.l1_size_bytes // (self.line_bytes * self.l1_assoc)

    @property
    def line_offset_bits(self) -> int:
        """Bits of the address that select a byte within a line."""
        return int(math.log2(self.line_bytes))

    @property
    def nvm_persist_cycles(self) -> int:
        """Latency until a line persist is acknowledged, per mode."""
        if self.nvm_mode is NVMMode.CACHED:
            return self.nvm_cached_cycles
        return self.nvm_uncached_cycles

    @property
    def nvm_occupancy_cycles(self) -> int:
        """Controller occupancy of one line persist, per mode."""
        if self.nvm_mode is NVMMode.CACHED:
            return self.nvm_cached_occupancy
        return self.nvm_uncached_occupancy

    @property
    def epoch_limit(self) -> int:
        """Value at which the per-thread epoch-id counter wraps."""
        return 1 << self.epoch_bits

    @property
    def mesh_dim(self) -> int:
        """Side length of the (square-ish) 2D mesh of tiles."""
        return max(1, int(math.ceil(math.sqrt(self.num_cores))))

    def describe(self) -> str:
        """Human-readable configuration table (mirrors Table 1)."""
        rows = [
            ("Processor", f"{self.num_cores}-core"),
            ("L1 I+D-Cache (pvt.)",
             f"{self.l1_size_bytes // 1024}KB, {self.l1_hit_cycles} cycles, "
             f"{self.l1_assoc}-way"),
            ("line-width", f"{self.line_bytes}B"),
            ("L2 (NUCA, shared)", f"{self.llc_hit_cycles} cycles"),
            ("On-chip Network",
             f"2D-Mesh ({self.mesh_dim}x{self.mesh_dim}, "
             f"{self.noc_hop_cycles} cycles/hop)"),
            ("Coherence", "Directory-based, MESI"),
            ("NVM (PCM)",
             f"cached mode: {self.nvm_cached_cycles} cycles, "
             f"uncached mode: {self.nvm_uncached_cycles} cycles"),
            ("RET (private)", f"{self.ret_entries} Entries"),
        ]
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


DEFAULT_CONFIG = MachineConfig()
