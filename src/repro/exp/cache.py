"""Content-addressed on-disk cache for experiment results.

A cache entry is keyed by a stable digest of everything that determines
a simulation's outcome: the :class:`WorkloadSpec`, the
:class:`MachineConfig`, the mechanism name, any crash-campaign
parameters, and a *code version* (digest over every ``repro`` source
file). Simulations are deterministic, so key equality implies result
equality; editing any simulator source invalidates every entry at once
(coarse, but never stale).

Keys are built from a canonical JSON rendering of the dataclasses —
no ``hash()`` involved — so they are stable across processes and
machines (Python's per-process hash randomization never leaks in).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional


def _canonical(obj: Any) -> Any:
    """Reduce dataclasses/enums/collections to JSON-stable primitives."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: _canonical(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): _canonical(value)
                for key, value in sorted(obj.items())}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for "
                    "a cache key")


def stable_digest(obj: Any) -> str:
    """Hex digest of the canonical JSON form of ``obj``."""
    text = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


_code_version: Optional[str] = None


def code_version() -> str:
    """Digest over every ``repro`` source file (cached per process)."""
    global _code_version
    if _code_version is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        hasher = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            hasher.update(str(path.relative_to(root)).encode("utf-8"))
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
        _code_version = hasher.hexdigest()
    return _code_version


def default_cache_dir() -> Path:
    """``$REPRO_EXP_CACHE_DIR``, else ``~/.cache/repro-exp``."""
    env = os.environ.get("REPRO_EXP_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-exp"


class ResultCache:
    """Pickle-per-key store of :class:`~repro.exp.runner.RunSummary`."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        # Two-level fanout keeps directories small under big sweeps.
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or None (corrupt entries count as misses)."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store atomically (concurrent writers never corrupt entries)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.exists():
            for path in self.root.rglob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entry_count(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))
