#!/usr/bin/env python3
"""The paper's Figure 1 story, end to end.

A concurrent log-free linked list runs under ARP (the prior one-sided
persistency model) and under LRP. The demo crashes each run at every
persist-log prefix and reports what recovery finds:

* under **ARP**, some crash leaves a node *linked into the list whose
  fields never persisted* — the unrecoverable state of Figure 1(e);
* under **LRP**, every single crash point is a consistent cut and the
  list null-recovers.

Run:  python examples/crash_recovery_demo.py
"""

from repro import WorkloadSpec, simulate
from repro.core.recovery import exhaustive_crash_test
from repro.core.replay import recover_and_continue


def demo(mechanism: str, seeds) -> None:
    print(f"=== {mechanism.upper()} ===")
    worst = None
    for seed in seeds:
        spec = WorkloadSpec(structure="linkedlist", num_threads=6,
                            initial_size=64, ops_per_thread=24,
                            seed=seed)
        result = simulate(spec, mechanism=mechanism)
        campaign = exhaustive_crash_test(result)
        print(f"  seed {seed}: {campaign.attempts} crash points, "
              f"{len(campaign.failures)} unrecoverable")
        if campaign.failures and worst is None:
            worst = campaign.failures[0]
    if worst is not None:
        print(f"  first unrecoverable image (crash after "
              f"{worst.prefix_len} persists):")
        for problem in worst.report.problems[:3]:
            print(f"    - {problem}")
    else:
        print("  null recovery succeeded at every crash point ✓")
    print()


def continuation_demo() -> None:
    """Null recovery is operational: crash mid-run, keep computing."""
    print("=== LRP: crash, recover, continue operating ===")
    spec = WorkloadSpec(structure="linkedlist", num_threads=6,
                        initial_size=64, ops_per_thread=24, seed=0)
    result = simulate(spec, mechanism="lrp")
    log_len = len(result.nvm.persist_log())
    crash_at = log_len // 2
    cont = recover_and_continue(result, crash_at)
    print(f"  crashed after {crash_at}/{log_len} persists; recovered "
          f"{len(cont.recovered_keys)} keys; ran "
          f"{len(cont.results)} more operations on the recovered "
          "structure — all linearizable ✓")


def main() -> None:
    seeds = range(6)
    demo("arp", seeds)   # the Figure 1(e) failure
    demo("lrp", seeds)   # the paper's fix
    demo("nop", seeds)   # no persistency at all, for contrast
    continuation_demo()


if __name__ == "__main__":
    main()
