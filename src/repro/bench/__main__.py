"""Command-line entry point: ``python -m repro.bench`` runs the
figure reproductions (same flags as ``repro.bench.figures.main``)."""

from repro.bench.figures import main

if __name__ == "__main__":
    main()
