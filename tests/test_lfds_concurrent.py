"""Concurrent correctness of the LFDs under simulated multithreading.

The scheduler interleaves worker coroutines at memory-op granularity,
so these runs exercise the lock-free algorithms' races (helping,
failed CASes, concurrent marks). The oracle is interleaving-
independent (net insert/delete count per key).
"""

import pytest

from repro.common.params import MachineConfig
from repro.core.simulator import simulate
from repro.lfds import WORKLOAD_NAMES
from repro.workloads.harness import WorkloadSpec

CFG = MachineConfig(num_cores=8, l1_size_bytes=8 * 1024)


def _spec(workload, seed=0, threads=6, size=96, ops=24):
    return WorkloadSpec(structure=workload, num_threads=threads,
                        initial_size=size, ops_per_thread=ops,
                        seed=seed)


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("seed", range(4))
class TestConcurrentFinalState:
    def test_final_state_matches_oracle(self, workload, seed):
        result = simulate(_spec(workload, seed=seed), mechanism="nop",
                          config=CFG)
        result.verify_final_state()

    def test_final_state_under_lrp(self, workload, seed):
        result = simulate(_spec(workload, seed=seed), mechanism="lrp",
                          config=CFG)
        result.verify_final_state()
        result.verify_durable_final_state()


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.slow
class TestConcurrentStructuralValidity:
    def test_volatile_structure_valid_after_run(self, workload):
        result = simulate(_spec(workload, seed=11), mechanism="nop",
                          config=CFG)
        report = result.structure.validate_image(
            result.trace.memory_snapshot())
        assert report.ok, report.problems

    def test_high_contention_tiny_keyspace(self, workload):
        """Hammer a tiny structure: maximal CAS conflicts & helping."""
        spec = WorkloadSpec(structure=workload, num_threads=8,
                            initial_size=4, ops_per_thread=30,
                            key_range=6, seed=3)
        result = simulate(spec, mechanism="nop", config=CFG)
        result.verify_final_state()

    def test_interleavings_differ_across_mechanisms_but_agree(self,
                                                              workload):
        """Different mechanisms produce different timings (hence
        interleavings), yet each run is linearizable."""
        for mech in ("nop", "sb", "bb", "lrp", "arp"):
            result = simulate(_spec(workload, seed=5), mechanism=mech,
                              config=CFG)
            result.verify_final_state()


class TestOpCounts:
    def test_every_worker_completes_all_ops(self):
        spec = _spec("hashmap", threads=5, ops=17)
        result = simulate(spec, mechanism="lrp", config=CFG)
        for core_stats in result.stats.per_core:
            assert core_stats.ops_completed == 17

    def test_outcomes_recorded_per_worker(self):
        spec = _spec("skiplist", threads=4, ops=9)
        result = simulate(spec, mechanism="bb", config=CFG)
        assert all(len(o) == 9 for o in result.outcomes)
