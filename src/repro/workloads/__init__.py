"""Benchmark workload specifications and the worker harness."""

from repro.workloads.harness import (
    WorkloadSpec,
    build_initial_memory,
    build_workers,
    expected_final_keys,
    initial_keys,
    make_structure,
)

__all__ = [
    "WorkloadSpec",
    "build_initial_memory",
    "build_workers",
    "expected_final_keys",
    "initial_keys",
    "make_structure",
]
