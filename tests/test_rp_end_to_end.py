"""End-to-end Release Persistency verification (property-style).

For every RP-enforcing mechanism, the full formal check runs over real
multi-threaded LFD executions: the recorded persist log must respect
``W1 hb-> W2 => W1 p-> W2`` for *all* write pairs, and every crash
prefix must be a consistent cut. ARP must violate the full RP check on
a crafted congestion scenario.
"""

import pytest

from repro.common.params import MachineConfig
from repro.core.simulator import simulate
from repro.lfds import WORKLOAD_NAMES
from repro.persistency.checker import RPChecker
from repro.workloads.harness import WorkloadSpec

CFG = MachineConfig(num_cores=8, l1_size_bytes=8 * 1024,
                    num_memory_controllers=2)


def _spec(workload, seed):
    return WorkloadSpec(structure=workload, num_threads=4,
                        initial_size=48, ops_per_thread=10, seed=seed)


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("mechanism", ["sb", "bb", "lrp"])
class TestRPHolds:
    def test_persist_order_respects_hb(self, workload, mechanism):
        result = simulate(_spec(workload, seed=0), mechanism=mechanism,
                          config=CFG)
        checker = RPChecker(result.trace, result.nvm,
                            boundary_event=result.machine.boundary_event)
        violations = checker.check_order()
        assert violations == [], [str(v) for v in violations[:3]]


@pytest.mark.parametrize("mechanism", ["sb", "bb", "lrp"])
class TestCutsConsistent:
    def test_sampled_prefixes_are_consistent_cuts(self, mechanism):
        result = simulate(_spec("hashmap", seed=1), mechanism=mechanism,
                          config=CFG)
        checker = RPChecker(result.trace, result.nvm,
                            boundary_event=result.machine.boundary_event)
        log_len = len(result.nvm.persist_log())
        for prefix in range(0, log_len + 1, max(1, log_len // 12)):
            assert checker.check_cut(prefix) == []


class TestSeedSweep:
    @pytest.mark.parametrize("seed", range(3))
    def test_lrp_rp_holds_across_seeds(self, seed):
        result = simulate(_spec("skiplist", seed=seed), mechanism="lrp",
                          config=CFG)
        checker = RPChecker(result.trace, result.nvm,
                            boundary_event=result.machine.boundary_event)
        assert checker.check_order() == []


class TestARPViolatesRP:
    def test_arp_breaks_rp_somewhere(self):
        """Across seeds/workloads, ARP's persist log must violate the
        RP write-pair rule at least once (its documented weakness)."""
        total = 0
        for workload in ("linkedlist", "hashmap", "bstree"):
            for seed in range(3):
                result = simulate(_spec(workload, seed),
                                  mechanism="arp", config=CFG)
                checker = RPChecker(
                    result.trace, result.nvm,
                    boundary_event=result.machine.boundary_event)
                total += len(checker.check_order())
        assert total > 0

    def test_arp_own_rule_holds(self):
        """ARP must still satisfy the (weaker) ARP rule itself."""
        from repro.persistency.rp_model import (
            arp_allows,
            persist_sequence_from_log,
        )

        result = simulate(_spec("hashmap", seed=0), mechanism="arp",
                          config=CFG)
        boundary = result.machine.boundary_event
        word_maps = []
        for record in result.nvm.persist_log():
            events = {w: e for w, e in record.word_events().items()
                      if e >= boundary}
            if events:
                word_maps.append(events)
        sequence = persist_sequence_from_log(result.trace, word_maps)
        assert arp_allows(result.trace, sequence)
