"""Batched quantum execution engine — the scheduler's fast path.

The reference loop in :meth:`repro.core.scheduler.Scheduler.run` pays
a heap pop/push and a full :meth:`Machine.execute` dispatch per memory
operation. This engine produces the *same execution bit for bit* while
doing neither, by exploiting two structural facts:

* **Quantum batching.** The scheduler always runs the thread with the
  smallest ``(clock, thread_id)`` key, and executing an op only ever
  *grows* that thread's clock. So after an op, if the thread's new key
  is still below the smallest key of every other thread (the top of
  the heap, unchanged while we stay inline), the reference loop would
  provably pick the same thread again — we keep feeding its generator
  without touching the heap until its clock crosses that bound.

* **Inline hot ops.** An L1 hit resolves entirely from the flat tables
  (`state_codes`/`lru` + the per-set slot dict); a plain read with
  trace recording off only needs ``stats.reads``, the event-id counter
  and the architectural value — the MemoryEvent it would have built is
  written nowhere and read by nobody, so it is not built. Acquire
  reads take the inline path only when the active mechanism's
  ``on_acquire`` hook is structurally a no-op (detected by method
  identity, so mechanism classes need no cooperation); everything else
  — writes, RMWs, misses, upgrades — funnels into the same
  ``Machine`` methods the reference path uses.

The engine refuses to run (``eligible`` is False) whenever any
observation channel is on: schedule nudges, an Observer, trace
recording with hooks, or the tests' ``max_ops`` valve. Fuzz replays
therefore always take the reference min-scan loop, and the
fast-vs-reference equivalence matrix (tests/test_fastsim.py) pins that
both paths agree on stats, persist streams and coverage maps. Set
``REPRO_FASTSIM=0`` to force the reference loop everywhere.
"""

from __future__ import annotations

import gc
import heapq
import os

from repro.coherence.l1cache import (
    EXCLUSIVE_CODE,
    MODIFIED_CODE,
    SHARED_CODE,
)
from repro.consistency.events import MemOrder
from repro.core.thread import OpKind
from repro.persistency.base import PersistencyMechanism
from repro.persistency.lrp import LRPMechanism

_WORK = OpKind.WORK
_READ = OpKind.READ
_WRITE = OpKind.WRITE
_ACQUIRE = MemOrder.ACQUIRE
_ACQ_REL = MemOrder.ACQ_REL
_NEVER = float("inf")


def eligible(scheduler) -> bool:
    """Whether the batch engine may run this scheduler's workload."""
    return (scheduler._nudges is None
            and scheduler.max_ops is None
            and scheduler.machine.obs is None
            and os.environ.get("REPRO_FASTSIM", "1") != "0")


def acquire_hook_is_noop(mechanism) -> bool:
    """True when ``on_acquire`` provably does nothing but return 0.

    Checked by method identity: the base-class hook and LRP's override
    (Section 5.2.2: acquires need no local action) are the only no-op
    implementations. Any mechanism that overrides the hook with real
    work — BB's barrier-on-acquire, ARP/DPO/HOPS's sync-source
    handling — fails the identity test and gets the full event-built
    path for every acquire.
    """
    hook = type(mechanism).on_acquire
    return (hook is PersistencyMechanism.on_acquire
            or hook is LRPMechanism.on_acquire)


def run(scheduler) -> int:
    """Execute the scheduler's threads to completion; the makespan.

    Caller guarantees :func:`eligible` returned True.
    """
    # The loop allocates heavily (ops, events, records) but the only
    # reference cycles it creates are line<->cache attachments, which
    # refcounting alone reclaims once detached; pausing the cyclic
    # collector avoids full-generation scans triggered by allocation
    # volume.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _run(scheduler)
    finally:
        if gc_was_enabled:
            gc.enable()


def _run(scheduler) -> int:
    machine = scheduler.machine
    config = machine.config
    compute = config.compute_cycles_per_op
    l1_hit_cycles = config.l1_hit_cycles
    line_mask = ~(config.line_bytes - 1)
    threads = scheduler.threads
    stats_list = machine.stats
    trace = machine.trace
    memory = trace._memory
    memory_get = memory.get
    # With recording off the per-read MemoryEvent is pure overhead
    # (nothing retains it); with recording on every event must exist.
    fast_reads = not trace.record
    mechanism = machine.mechanism
    acquire_noop = acquire_hook_is_noop(mechanism)
    # Every in-tree on_acquire honours acquire_ignores_event, so the
    # event can be skipped for acquire loads too: sync_source is
    # derived from the writer-meta map exactly as _sync_source would.
    acquire_inline = acquire_noop or mechanism.acquire_ignores_event
    # With recording off and an event-free acquire hook, *every* read
    # resolves inline — the per-op branch collapses to one local test.
    inline_reads = fast_reads and acquire_inline
    on_acquire = mechanism.on_acquire
    writer_meta = trace._writer_meta
    # The event-id counter is kept in a local and written back to the
    # trace only around calls that read or bump it themselves (the
    # do_* slow paths) and at exit: inline reads then pay a local
    # increment instead of an attribute read-modify-write.
    ev_count = trace._count
    do_read = machine._do_read
    do_write = machine._do_write
    do_rmw = machine._do_rmw
    coherence_access = machine.coherence_access
    fast_miss, fast_upgrade = machine.make_fast_path()
    l1s = machine.fabric.l1s
    heappop, heapreplace = heapq.heappop, heapq.heapreplace

    # L1 geometry is config-wide (identical across cores); the
    # per-thread containers are bundled into one tuple so a quantum
    # switch costs a single index + unpack.
    geom = l1s[0]
    shift = geom._line_shift
    set_mask = geom._set_mask
    num_sets = geom._num_sets
    tstate = []
    for t in threads:
        l1 = l1s[t.thread_id]
        tstate.append((t, t.gen, stats_list[t.thread_id], l1, l1._sets,
                       l1.state_codes, l1.lru, l1.lines))

    # Heap keys are single ints, ``(clock << tshift) | tid``: the
    # packed comparison is exactly the (clock, tid) lexicographic
    # order (tid < 2**tshift), every sift compares machine ints
    # instead of tuples, and a yield allocates no tuple.
    tshift = max(1, (len(threads) - 1).bit_length())
    tmask = (1 << tshift) - 1
    heap = [(t.clock << tshift) | t.thread_id for t in threads]
    heapq.heapify(heap)
    nheap = len(heap)
    executed = scheduler._executed_ops
    # The running thread's (stale) entry stays at heap[0] for the whole
    # quantum: a yield is then one heapreplace (single sift) instead of
    # a heappush + heappop pair, and the scheduling bound — the
    # smallest key among the *other* threads — is the smaller of the
    # root's children.
    while nheap:
        tid = heap[0] & tmask
        thread, gen, stats, l1, sets, codes, lru, lines = tstate[tid]
        clock = thread.clock
        if nheap > 2:
            bound = heap[1]
            b = heap[2]
            if b < bound:
                bound = b
        elif nheap == 2:
            bound = heap[1]
        else:
            # Last thread standing: an unreachable bound erases the
            # yield check from its remaining ops.
            bound = _NEVER

        # Resume the coroutine exactly as SimThread.next_op would.
        try:
            if thread._started:
                op = gen.send(thread._pending_result)
            else:
                thread._started = True
                op = next(gen)
        except StopIteration:
            stats.cycles = clock
            thread.clock = clock
            thread.done = True
            heappop(heap)
            nheap -= 1
            continue

        while True:
            kind = op.kind
            if kind is _READ:
                addr = op.addr
                line_addr = addr & line_mask
                if set_mask is not None:
                    set_index = (line_addr >> shift) & set_mask
                else:
                    set_index = (line_addr >> shift) % num_sets
                slot = sets[set_index].get(line_addr)
                if slot is not None:
                    # Hit: a set never maps an INVALID slot (every
                    # detach also deletes the set entry), so residency
                    # alone serves a read.
                    tick = l1._tick + 1
                    l1._tick = tick
                    lru[slot] = tick
                    stats.l1_hits += 1
                    latency = l1_hit_cycles
                else:
                    _line, latency = fast_miss(
                        tid, line_addr, clock, False, set_index)
                if inline_reads:
                    stats.reads += 1
                    ev_count += 1
                    try:
                        result = memory[addr]
                    except KeyError:
                        result = None  # uninitialized word reads as None
                    order = op.order
                    if order is _ACQUIRE or order is _ACQ_REL:
                        stats.acquires += 1
                        if not acquire_noop:
                            src = writer_meta.get(addr)
                            latency += on_acquire(
                                tid, None, clock + latency,
                                sync_source=src[0]
                                if (src is not None and src[1]
                                    and src[0] != tid) else None)
                else:
                    order = op.order
                    if fast_reads and not (order is _ACQUIRE
                                           or order is _ACQ_REL):
                        stats.reads += 1
                        ev_count += 1
                        result = memory_get(addr)
                    else:
                        trace._count = ev_count
                        result, latency = do_read(tid, op, clock, latency)
                        ev_count = trace._count
            elif kind is _WORK:
                result = None
                latency = op.cycles
            else:
                addr = op.addr
                line_addr = addr & line_mask
                if set_mask is not None:
                    set_index = (line_addr >> shift) & set_mask
                else:
                    set_index = (line_addr >> shift) % num_sets
                slot = sets[set_index].get(line_addr)
                if kind is _WRITE:
                    code = codes[slot] if slot is not None else 0
                    if code == MODIFIED_CODE or code == EXCLUSIVE_CODE:
                        tick = l1._tick + 1
                        l1._tick = tick
                        lru[slot] = tick
                        stats.l1_hits += 1
                        if code == EXCLUSIVE_CODE:
                            codes[slot] = MODIFIED_CODE  # silent E->M
                        trace._count = ev_count
                        result, latency = do_write(
                            tid, op, lines[slot], clock, l1_hit_cycles)
                        ev_count = trace._count
                    elif code == SHARED_CODE:
                        # The reference path's lookup touches the LRU
                        # before the S->M upgrade.
                        tick = l1._tick + 1
                        l1._tick = tick
                        lru[slot] = tick
                        line = lines[slot]
                        latency = fast_upgrade(tid, line, clock)
                        trace._count = ev_count
                        result, latency = do_write(
                            tid, op, line, clock, latency)
                        ev_count = trace._count
                    elif slot is None:
                        line, latency = fast_miss(
                            tid, line_addr, clock, True, set_index)
                        trace._count = ev_count
                        result, latency = do_write(
                            tid, op, line, clock, latency)
                        ev_count = trace._count
                    else:
                        line, latency = coherence_access(
                            tid, line_addr, clock, True)
                        trace._count = ev_count
                        result, latency = do_write(
                            tid, op, line, clock, latency)
                        ev_count = trace._count
                else:  # CAS / XCHG
                    code = codes[slot] if slot is not None else 0
                    if code == MODIFIED_CODE or code == EXCLUSIVE_CODE:
                        tick = l1._tick + 1
                        l1._tick = tick
                        lru[slot] = tick
                        stats.l1_hits += 1
                        if code == EXCLUSIVE_CODE:
                            codes[slot] = MODIFIED_CODE
                        trace._count = ev_count
                        result, latency = do_rmw(
                            tid, op, lines[slot], clock, l1_hit_cycles)
                        ev_count = trace._count
                    elif code == SHARED_CODE:
                        tick = l1._tick + 1
                        l1._tick = tick
                        lru[slot] = tick
                        line = lines[slot]
                        latency = fast_upgrade(tid, line, clock)
                        trace._count = ev_count
                        result, latency = do_rmw(
                            tid, op, line, clock, latency)
                        ev_count = trace._count
                    elif slot is None:
                        line, latency = fast_miss(
                            tid, line_addr, clock, True, set_index)
                        trace._count = ev_count
                        result, latency = do_rmw(
                            tid, op, line, clock, latency)
                        ev_count = trace._count
                    else:
                        line, latency = coherence_access(
                            tid, line_addr, clock, True)
                        trace._count = ev_count
                        result, latency = do_rmw(
                            tid, op, line, clock, latency)
                        ev_count = trace._count

            clock += latency + compute
            executed += 1
            key = (clock << tshift) | tid
            if key > bound:
                # Another thread's key is now smaller: yield the core.
                thread.clock = clock
                thread._pending_result = result
                heapreplace(heap, key)
                break
            try:
                op = gen.send(result)
            except StopIteration:
                stats.cycles = clock
                thread.clock = clock
                thread.done = True
                heappop(heap)
                nheap -= 1
                break

    trace._count = ev_count
    scheduler._executed_ops = executed
    return scheduler.makespan()
