"""Service selftest: kill a campaign mid-sweep, resume, compare bytes.

Four phases, one shared 20-job grid (every LFD x every Figure 5
mechanism — the same reduced suite ``python -m repro.exp --selftest``
times):

A. **baseline** — an uninterrupted in-process drain; its
   :meth:`~repro.exp.service.campaign.Campaign.aggregate` bytes are
   the reference.
B. **SIGKILL the campaign** — a subprocess ``run`` is killed (whole
   process group, no cleanup handlers) once the results journal has
   at least one record; ``resume`` then drives the same directory to
   completion. Pinned: the aggregate is **byte-identical** to the
   baseline and no job with a journaled/cached result executed twice.
C. **SIGKILL one worker** — a subprocess ``run`` keeps going while we
   kill the pid found in a lease file; the coordinator must re-queue
   the dead worker's lease and the surviving worker finishes the
   campaign, again byte-identical.
D. **shared cache** — two fresh campaigns pointed at one
   ``$REPRO_CACHE_SHARED`` directory: the second must execute zero
   jobs (every summary arrives by read-through).

The report lands in ``BENCH_svc.json`` (``make svc-smoke``), with
``identical_aggregate`` / ``reexecutions`` pinned by the CI baseline.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro.bench.configs import SCALED_CONFIG, bench_config
from repro.exp.cache import ENV_SHARED
from repro.exp.runner import Job
from repro.exp.service.campaign import (
    Campaign,
    create_campaign,
    open_campaign,
)
from repro.exp.service.worker import read_worker_stats, run_campaign
from repro.workloads.harness import WorkloadSpec

SUITE_WORKLOADS = ("linkedlist", "hashmap", "bstree", "skiplist",
                   "queue")
SUITE_MECHANISMS = ("nop", "sb", "bb", "lrp")

#: Every campaign uses one name so their aggregates are comparable
#: byte-for-byte (the campaign name is part of the canonical payload).
CAMPAIGN_NAME = "svc-selftest"

_DEADLINE = 180.0


def suite_jobs(seed: int = 1) -> List[Job]:
    config = bench_config(SCALED_CONFIG)
    return [
        Job(spec=WorkloadSpec(structure=workload, num_threads=8,
                              initial_size=512, ops_per_thread=16,
                              seed=seed),
            mechanism=mechanism, config=config)
        for workload in SUITE_WORKLOADS
        for mechanism in SUITE_MECHANISMS
    ]


def _child_env() -> Dict[str, str]:
    """Subprocess environment: repro importable, no ambient tiers."""
    env = dict(os.environ)
    import repro

    src = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    parts = [src] + [p for p in
                     env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    env.pop(ENV_SHARED, None)
    env.pop("REPRO_HEARTBEAT_DIR", None)
    return env


def _spawn_run(root: str, workers: int) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.exp.service", "run", root,
         "--workers", str(workers), "--quiet", "--poll", "0.05"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=_child_env(), start_new_session=True)


def reexecution_count(campaign: Campaign) -> int:
    """Journal records with ``cached: false`` beyond one per digest.

    The no-re-execution guarantee: a job is simulated at most once per
    campaign lifetime, because the cache entry is published before the
    journal line and the journal line before the done rename. Any
    digest with two uncached records means a finished job ran again.
    """
    uncached: Dict[str, int] = {}
    for record in campaign.read_results():
        digest = record.get("digest")
        if isinstance(digest, str) and not record.get("cached"):
            uncached[digest] = uncached.get(digest, 0) + 1
    return sum(count - 1 for count in uncached.values() if count > 1)


def _phase_baseline(root: str, jobs: List[Job],
                    note) -> Tuple[bytes, float]:
    note("phase A: uninterrupted baseline drain")
    create_campaign(root, jobs, name=CAMPAIGN_NAME)
    started = time.perf_counter()
    report = run_campaign(root, workers=0, poll=0.01)
    seconds = time.perf_counter() - started
    if not report.ok:
        raise RuntimeError("baseline campaign did not complete")
    return open_campaign(root).aggregate(), seconds


def _phase_kill_resume(root: str, jobs: List[Job], workers: int,
                       note) -> Optional[Dict[str, object]]:
    """SIGKILL the whole campaign mid-sweep, then resume it.

    Returns None when the subprocess finished before the kill landed
    (the caller retries with a fresh directory).
    """
    create_campaign(root, jobs, name=CAMPAIGN_NAME)
    campaign = open_campaign(root)
    proc = _spawn_run(root, workers)
    killed = False
    deadline = time.time() + _DEADLINE
    try:
        while time.time() < deadline:
            journaled = len(campaign.read_results())
            if journaled >= 1 and proc.poll() is None:
                os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
                killed = True
                break
            if proc.poll() is not None:
                break
            time.sleep(0.01)
    finally:
        if proc.poll() is None and not killed:
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
        proc.wait()
        if proc.stdout:
            proc.stdout.close()
    if not killed:
        return None
    journaled_at_kill = len(campaign.read_results())
    done_at_kill = campaign.status().done
    note(f"phase B: SIGKILL'd campaign after {journaled_at_kill} "
         f"journaled job(s); resuming")
    started = time.perf_counter()
    report = run_campaign(root, workers=workers, poll=0.05)
    resume_seconds = time.perf_counter() - started
    if not report.ok:
        raise RuntimeError("resumed campaign did not complete")
    stats = read_worker_stats(root)
    return {
        "killed_after_jobs": journaled_at_kill,
        "done_at_kill": done_at_kill,
        "resume_seconds": round(resume_seconds, 3),
        "recovered_leases": report.recovered_leases,
        "aggregate": open_campaign(root).aggregate(),
        "reexecutions": reexecution_count(campaign),
        "steals": sum(int(s.get("stolen", 0)) for s in stats),
        "resume_cache_hits": sum(int(s.get("cache_hits", 0))
                                 for s in stats),
    }


def _phase_worker_kill(root: str, jobs: List[Job], workers: int,
                       note) -> Optional[Dict[str, object]]:
    """SIGKILL one worker of a live run; the rest must finish it.

    Returns None when no lease could be observed in time (campaign
    finished first) — the caller retries.
    """
    create_campaign(root, jobs, name=CAMPAIGN_NAME)
    campaign = open_campaign(root)
    leased_dir = os.path.join(campaign.queue.root, "leased")
    proc = _spawn_run(root, workers)
    victim: Optional[int] = None
    deadline = time.time() + _DEADLINE
    started = time.perf_counter()
    try:
        while time.time() < deadline and proc.poll() is None:
            for name in sorted(os.listdir(leased_dir)):
                # Lease filenames carry the claimant pid as a suffix.
                split = campaign.queue._split_lease(name)
                if split is None:
                    continue
                pid = split[1]
                if pid > 0 and pid != proc.pid:
                    victim = pid
                    break
            if victim is not None:
                break
            time.sleep(0.005)
        if victim is None:
            return None
        note(f"phase C: SIGKILL'd worker pid {victim} holding a lease")
        try:
            os.kill(victim, signal.SIGKILL)
        except ProcessLookupError:
            return None  # finished its job just before the kill
        stdout, _ = proc.communicate(timeout=_DEADLINE)
    finally:
        if proc.poll() is None:
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
            proc.wait()
    seconds = time.perf_counter() - started
    if proc.returncode != 0:
        raise RuntimeError(
            f"campaign run with a killed worker exited "
            f"{proc.returncode}; expected the survivors to finish it")
    report = json.loads(stdout.decode("utf-8"))
    return {
        "killed_worker_pid": victim,
        "seconds": round(seconds, 3),
        "recovered_leases": int(report.get("recovered_leases", 0)),
        "aggregate": open_campaign(root).aggregate(),
        "reexecutions": reexecution_count(campaign),
    }


def _phase_shared_cache(base: str, note) -> Dict[str, object]:
    """Two campaigns, one shared tier: the second executes nothing."""
    note("phase D: shared-cache read-through across campaigns")
    shared = os.path.join(base, "shared-cache")
    config = bench_config(SCALED_CONFIG)
    jobs = [
        Job(spec=WorkloadSpec(structure="queue", num_threads=8,
                              initial_size=512, ops_per_thread=16,
                              seed=2),
            mechanism=mechanism, config=config)
        for mechanism in SUITE_MECHANISMS
    ]
    previous = os.environ.get(ENV_SHARED)
    os.environ[ENV_SHARED] = shared
    try:
        first = os.path.join(base, "shared-first")
        second = os.path.join(base, "shared-second")
        create_campaign(first, jobs, name=CAMPAIGN_NAME)
        run_campaign(first, workers=0, poll=0.01)
        started = time.perf_counter()
        create_campaign(second, jobs, name=CAMPAIGN_NAME)
        run_campaign(second, workers=0, poll=0.01)
        warm_seconds = time.perf_counter() - started
        stats = read_worker_stats(second)
        executed = sum(int(s.get("executed", 0)) for s in stats)
        hits = sum(int(s.get("cache_hits", 0)) for s in stats)
    finally:
        if previous is None:
            os.environ.pop(ENV_SHARED, None)
        else:
            os.environ[ENV_SHARED] = previous
    published = sum(
        1 for _root, _dirs, files in os.walk(shared)
        for name in files if name.endswith(".pkl"))
    return {
        "jobs": len(jobs),
        "published_entries": published,
        "second_run_executed": executed,
        "second_run_cache_hits": hits,
        "warm_seconds": round(warm_seconds, 3),
    }


def run_selftest(output: str = "BENCH_svc.json", workers: int = 2,
                 verbose: bool = True, seed: int = 1) -> Dict[str, object]:
    def note(message: str) -> None:
        if verbose:
            print(f"svc-selftest: {message}", file=sys.stderr)

    jobs = suite_jobs(seed)
    ambient = os.environ.pop(ENV_SHARED, None)
    try:
        with tempfile.TemporaryDirectory(prefix="repro-svc-") as base:
            baseline, baseline_seconds = _phase_baseline(
                os.path.join(base, "baseline"), jobs, note)

            kill_report = None
            for attempt in range(3):
                kill_report = _phase_kill_resume(
                    os.path.join(base, f"killed-{attempt}"), jobs,
                    workers, note)
                if kill_report is not None:
                    break
                note("phase B: run finished before the kill landed; "
                     "retrying")
            if kill_report is None:
                raise RuntimeError(
                    "could not interrupt a campaign mid-sweep in 3 "
                    "attempts — grid too small for this machine?")

            worker_report = None
            for attempt in range(3):
                worker_report = _phase_worker_kill(
                    os.path.join(base, f"worker-kill-{attempt}"), jobs,
                    workers, note)
                if worker_report is not None:
                    break
                note("phase C: no lease observed before completion; "
                     "retrying")
            if worker_report is None:
                raise RuntimeError(
                    "could not catch a worker holding a lease in 3 "
                    "attempts")

            shared_report = _phase_shared_cache(base, note)
    finally:
        if ambient is not None:
            os.environ[ENV_SHARED] = ambient

    identical_b = kill_report.pop("aggregate") == baseline
    identical_c = worker_report.pop("aggregate") == baseline
    reexecutions = (int(kill_report["reexecutions"])
                    + int(worker_report["reexecutions"]))
    recovered = (int(kill_report["recovered_leases"])
                 + int(worker_report["recovered_leases"]))
    ok = (identical_b and identical_c and reexecutions == 0
          and recovered >= 1
          and shared_report["second_run_executed"] == 0
          and shared_report["second_run_cache_hits"]
          == shared_report["jobs"])

    report: Dict[str, object] = {
        "suite": {
            "jobs": len(jobs),
            "workloads": list(SUITE_WORKLOADS),
            "mechanisms": list(SUITE_MECHANISMS),
        },
        "workers": workers,
        "baseline_seconds": round(baseline_seconds, 3),
        "throughput_per_sec": round(
            len(jobs) / baseline_seconds, 3) if baseline_seconds else None,
        "killed_run": {**kill_report,
                       "identical_aggregate": identical_b},
        "worker_kill": {**worker_report,
                        "identical_aggregate": identical_c},
        "shared_cache": shared_report,
        "identical_aggregate": identical_b and identical_c,
        "reexecutions": reexecutions,
        "recovered_leases": recovered,
        "ok": ok,
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report
