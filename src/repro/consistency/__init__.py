"""Memory-consistency formalism: events, happens-before, litmus tests."""

from repro.consistency.events import (
    EventKind,
    MemOrder,
    MemoryEvent,
    Trace,
)
from repro.consistency.happens_before import HappensBefore

__all__ = [
    "EventKind",
    "MemOrder",
    "MemoryEvent",
    "Trace",
    "HappensBefore",
]
