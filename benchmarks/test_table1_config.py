"""Table 1: the simulated machine configuration.

Not a performance experiment — this bench renders and pins the
configuration table the rest of the evaluation runs on, both the
verbatim paper machine and the documented Python-scale variant.
"""

from conftest import run_once

from repro.bench.configs import PAPER_CONFIG, SCALED_CONFIG


def test_table1_paper_machine(benchmark):
    text = run_once(benchmark, PAPER_CONFIG.describe)
    print("\nTable 1 (paper machine):\n" + text)
    assert "64-core" in text
    assert "cached mode: 120 cycles" in text
    assert "uncached mode: 350 cycles" in text
    assert "RET (private)" in text
    benchmark.extra_info["table"] = text


def test_table1_scaled_machine(benchmark):
    text = run_once(benchmark, SCALED_CONFIG.describe)
    print("\nTable 1 (scaled reproduction machine):\n" + text)
    assert "8KB" in text
    benchmark.extra_info["table"] = text
