"""Crash simulation and null-recovery validation.

The NVM's persist log is the durability order of the run. Crashing
after any prefix of it reconstructs an NVM image; *null recovery*
(Izraelevitz & Scott, as used by the paper) demands that every such
image is a consistent cut — for an LFD that means the structure is
immediately usable, which the per-LFD structural validators check
(e.g. no reachable node with never-persisted fields).

RP-enforcing mechanisms (SB/BB/LRP) must pass at every crash point;
ARP and NOP are expected to fail — that is the paper's Figure 1
argument, reproduced as an experiment.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.common.rng import make_rng
from repro.core.simulator import SimulationResult
from repro.lfds.base import RecoveryReport


@dataclasses.dataclass
class CrashOutcome:
    """Result of one simulated crash."""

    prefix_len: int
    report: RecoveryReport

    @property
    def recovered(self) -> bool:
        return self.report.ok


@dataclasses.dataclass
class CrashCampaign:
    """Aggregate over many crash points of one run."""

    mechanism: str
    workload: str
    outcomes: List[CrashOutcome]

    @property
    def attempts(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> List[CrashOutcome]:
        return [o for o in self.outcomes if not o.recovered]

    @property
    def all_recovered(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "all recovered" if self.all_recovered else (
            f"{len(self.failures)}/{self.attempts} crash points "
            "UNRECOVERABLE")
        return (f"{self.workload:<10} {self.mechanism:<4} "
                f"{self.attempts} crash points: {status}")


def crash_points(log_length: int, num_points: int,
                 seed: int = 0) -> List[int]:
    """Choose crash prefixes: always 0 and the full log, plus a
    deterministic random sample in between.

    Contract: ``num_points`` must be at least 2 (the endpoint prefixes
    0 and ``log_length`` are always part of the sample — asking for
    fewer points than the mandatory endpoints is a caller bug and
    raises ``ValueError``). The result is sorted, each prefix appears
    exactly once, and its length is exactly
    ``min(num_points, log_length + 1)``: a short log degrades to
    testing every prefix exactly once instead of re-rolling — and
    re-testing — already-sampled ones.
    """
    if num_points < 2:
        raise ValueError(
            f"num_points must be >= 2 (prefixes 0 and log_length are "
            f"always sampled), got {num_points}")
    if num_points >= log_length + 1:
        return list(range(log_length + 1))
    points = {0, log_length}
    rng = make_rng(seed, "crash")
    while len(points) < num_points:
        points.add(rng.randint(0, log_length))
    return sorted(points)


def crash_test(result: SimulationResult, num_points: int = 24,
               seed: int = 0) -> CrashCampaign:
    """Crash a finished run at many persist-log prefixes and validate
    null recovery of the structure at each."""
    log = result.nvm.persist_log()
    outcomes = []
    for prefix in crash_points(len(log), num_points, seed):
        image = result.nvm.image_after_prefix(prefix)
        report = result.structure.validate_image(image)
        outcomes.append(CrashOutcome(prefix_len=prefix, report=report))
    return CrashCampaign(mechanism=result.mechanism,
                         workload=result.spec.structure,
                         outcomes=outcomes)


def exhaustive_crash_test(result: SimulationResult) -> CrashCampaign:
    """Validate every single crash prefix (small runs only)."""
    log = result.nvm.persist_log()
    outcomes = [
        CrashOutcome(prefix_len=k,
                     report=result.structure.validate_image(
                         result.nvm.image_after_prefix(k)))
        for k in range(len(log) + 1)
    ]
    return CrashCampaign(mechanism=result.mechanism,
                         workload=result.spec.structure,
                         outcomes=outcomes)
