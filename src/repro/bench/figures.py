"""Reproduction of every figure in the paper's evaluation (Section 6).

Each ``run_*`` function executes the simulations behind one paper
figure and returns a structured result that can render itself as the
same rows/series the paper reports. The pytest benchmarks under
``benchmarks/`` call these; ``python -m repro.bench.figures`` runs the
whole evaluation from the command line.

Absolute numbers differ from the paper (our substrate is a behavioral
Python simulator, not Pin on a testbed); the *shape* — who wins, by
roughly what factor — is the reproduction target. EXPERIMENTS.md
records paper-vs-measured for every figure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.bench.configs import (
    FIGURE8_THREADS,
    FIGURE_MECHANISMS,
    SCALED_CONFIG,
    figure_spec,
    uncached,
)
from repro.bench.report import render_series, render_table
from repro.common.params import MachineConfig
from repro.core.recovery import crash_test
from repro.core.simulator import SimulationResult, simulate
from repro.lfds import WORKLOAD_NAMES
from repro.workloads.harness import WorkloadSpec


# ----------------------------------------------------------------------
# Figures 5 and 7: normalized execution time
# ----------------------------------------------------------------------

@dataclasses.dataclass
class NormalizedExecutionResult:
    """Execution time of each mechanism normalized to NOP, per LFD."""

    title: str
    workloads: List[str]
    mechanisms: List[str]
    results: Dict[str, Dict[str, SimulationResult]]

    def normalized(self, workload: str, mechanism: str) -> float:
        nop = self.results[workload]["nop"].makespan
        return self.results[workload][mechanism].makespan / nop

    def improvement(self, workload: str, slower: str,
                    faster: str) -> float:
        """Fractional exec-time improvement of ``faster`` vs ``slower``."""
        slow = self.results[workload][slower].makespan
        fast = self.results[workload][faster].makespan
        return (slow - fast) / slow

    def mean_improvement(self, slower: str, faster: str) -> float:
        gains = [self.improvement(w, slower, faster)
                 for w in self.workloads]
        return sum(gains) / len(gains)

    def render(self) -> str:
        rows = []
        for workload in self.workloads:
            rows.append([workload] + [
                self.normalized(workload, mech)
                for mech in self.mechanisms
            ])
        return render_table(self.title,
                            ["workload"] + self.mechanisms, rows)


def run_normalized_execution(config: MachineConfig, title: str, *,
                             scale: str = "quick", num_threads: int = 32,
                             seed: int = 1,
                             workloads: Optional[Sequence[str]] = None
                             ) -> NormalizedExecutionResult:
    """Shared engine for Figures 5 and 7."""
    workloads = list(workloads or WORKLOAD_NAMES)
    mechanisms = ["nop"] + FIGURE_MECHANISMS
    results: Dict[str, Dict[str, SimulationResult]] = {}
    for workload in workloads:
        spec = figure_spec(workload, num_threads=num_threads,
                           scale=scale, seed=seed)
        results[workload] = {
            mech: simulate(spec, mechanism=mech, config=config)
            for mech in mechanisms
        }
    return NormalizedExecutionResult(
        title=title, workloads=workloads,
        mechanisms=FIGURE_MECHANISMS, results=results)


def run_figure5(*, scale: str = "quick", num_threads: int = 32,
                seed: int = 1,
                workloads: Optional[Sequence[str]] = None
                ) -> NormalizedExecutionResult:
    """Figure 5: exec time normalized to NOP, cached NVM mode."""
    return run_normalized_execution(
        SCALED_CONFIG,
        "Figure 5: execution time normalized to No-Persistency "
        "(cached mode, lower is better)",
        scale=scale, num_threads=num_threads, seed=seed,
        workloads=workloads)


def run_figure7(*, scale: str = "quick", num_threads: int = 32,
                seed: int = 1,
                workloads: Optional[Sequence[str]] = None
                ) -> NormalizedExecutionResult:
    """Figure 7: same as Figure 5 with the NVM DRAM cache disabled."""
    return run_normalized_execution(
        uncached(SCALED_CONFIG),
        "Figure 7: execution time normalized to No-Persistency "
        "(uncached mode, lower is better)",
        scale=scale, num_threads=num_threads, seed=seed,
        workloads=workloads)


# ----------------------------------------------------------------------
# Figure 6: critical-path writebacks
# ----------------------------------------------------------------------

@dataclasses.dataclass
class Figure6Result:
    """% of writebacks on the execution critical path, BB vs LRP."""

    workloads: List[str]
    fractions: Dict[str, Dict[str, float]]   # workload -> mech -> frac

    def render(self) -> str:
        rows = [
            [w, f"{self.fractions[w]['bb'] * 100:.0f}%",
             f"{self.fractions[w]['lrp'] * 100:.0f}%"]
            for w in self.workloads
        ]
        return render_table(
            "Figure 6: percentage of write-backs in the critical path "
            "(lower is better)",
            ["workload", "BB", "LRP"], rows)


def run_figure6(fig5: Optional[NormalizedExecutionResult] = None, *,
                scale: str = "quick", num_threads: int = 32,
                seed: int = 1) -> Figure6Result:
    """Figure 6 is derived from the Figure 5 runs."""
    fig5 = fig5 or run_figure5(scale=scale, num_threads=num_threads,
                               seed=seed)
    fractions = {
        workload: {
            mech: fig5.results[workload][mech]
            .stats.critical_writeback_fraction
            for mech in ("bb", "lrp")
        }
        for workload in fig5.workloads
    }
    return Figure6Result(workloads=fig5.workloads, fractions=fractions)


# ----------------------------------------------------------------------
# Figure 8: persistency overhead vs thread count
# ----------------------------------------------------------------------

@dataclasses.dataclass
class Figure8Result:
    """% overhead over NOP, per workload, as threads scale."""

    thread_counts: List[int]
    overheads: Dict[str, Dict[str, List[float]]]  # wl -> mech -> [%]

    def render(self) -> str:
        blocks = []
        for workload, series in self.overheads.items():
            blocks.append(render_series(
                f"Figure 8 ({workload}): % persistency overhead over "
                "No-Persistency vs threads (lower is better)",
                "threads", self.thread_counts,
                {m.upper(): v for m, v in series.items()}))
        return "\n\n".join(blocks)


def run_figure8(*, scale: str = "quick",
                thread_counts: Optional[Sequence[int]] = None,
                workloads: Optional[Sequence[str]] = None,
                mechanisms: Sequence[str] = ("bb", "lrp"),
                seed: int = 1) -> Figure8Result:
    """Figure 8(a-e): overhead sweep over 1-32 worker threads."""
    thread_counts = list(thread_counts or FIGURE8_THREADS)
    workloads = list(workloads or WORKLOAD_NAMES)
    overheads: Dict[str, Dict[str, List[float]]] = {}
    for workload in workloads:
        overheads[workload] = {mech: [] for mech in mechanisms}
        for threads in thread_counts:
            spec = figure_spec(workload, num_threads=threads,
                               scale=scale, seed=seed)
            nop = simulate(spec, mechanism="nop", config=SCALED_CONFIG)
            for mech in mechanisms:
                run = simulate(spec, mechanism=mech, config=SCALED_CONFIG)
                overheads[workload][mech].append(
                    run.stats.overhead_vs(nop.stats) * 100.0)
    return Figure8Result(thread_counts=thread_counts, overheads=overheads)


# ----------------------------------------------------------------------
# Section 6.4: data-structure size sensitivity
# ----------------------------------------------------------------------

@dataclasses.dataclass
class SizeSensitivityResult:
    """% overhead over NOP as the structure size is swept."""

    workload: str
    sizes: List[int]
    overheads: Dict[str, List[float]]

    def render(self) -> str:
        return render_series(
            f"Size sensitivity ({self.workload}): % overhead over "
            "No-Persistency vs initial size",
            "size", self.sizes,
            {m.upper(): v for m, v in self.overheads.items()})


def run_size_sensitivity(workload: str = "hashmap", *,
                         sizes: Sequence[int] = (8192, 16384, 32768,
                                                 65536),
                         num_threads: int = 16,
                         ops_per_thread: int = 32,
                         mechanisms: Sequence[str] = ("bb", "lrp"),
                         seed: int = 1) -> SizeSensitivityResult:
    """The paper varied sizes 8K-1M and saw no significant change."""
    overheads: Dict[str, List[float]] = {m: [] for m in mechanisms}
    for size in sizes:
        spec = WorkloadSpec(structure=workload, num_threads=num_threads,
                            initial_size=size,
                            ops_per_thread=ops_per_thread, seed=seed)
        nop = simulate(spec, mechanism="nop", config=SCALED_CONFIG)
        for mech in mechanisms:
            run = simulate(spec, mechanism=mech, config=SCALED_CONFIG)
            overheads[mech].append(
                run.stats.overhead_vs(nop.stats) * 100.0)
    return SizeSensitivityResult(workload=workload, sizes=list(sizes),
                                 overheads=overheads)


# ----------------------------------------------------------------------
# RET-size ablation (Section 5.2.1 design choice)
# ----------------------------------------------------------------------

@dataclasses.dataclass
class RetAblationResult:
    """LRP execution time and engine activity across RET sizes."""

    workload: str
    ret_sizes: List[int]
    normalized: List[float]
    watermark_drains: List[int]

    def render(self) -> str:
        rows = [
            [self.ret_sizes[i], self.normalized[i],
             self.watermark_drains[i]]
            for i in range(len(self.ret_sizes))
        ]
        return render_table(
            f"RET ablation ({self.workload}): LRP exec time normalized "
            "to NOP and watermark-triggered drains vs RET entries",
            ["RET entries", "LRP/NOP", "watermark drains"], rows)


def run_ret_ablation(workload: str = "hashmap", *,
                     ret_sizes: Sequence[int] = (4, 8, 16, 32, 64),
                     num_threads: int = 16, scale: str = "quick",
                     seed: int = 1) -> RetAblationResult:
    """Sweep the Release Epoch Table size (paper default: 32)."""
    spec = figure_spec(workload, num_threads=num_threads, scale=scale,
                       seed=seed)
    nop = simulate(spec, mechanism="nop", config=SCALED_CONFIG)
    normalized, drains = [], []
    for entries in ret_sizes:
        config = dataclasses.replace(
            SCALED_CONFIG, ret_entries=entries,
            ret_watermark=max(1, (entries * 3) // 4))
        run = simulate(spec, mechanism="lrp", config=config)
        normalized.append(run.makespan / nop.makespan)
        drains.append(run.machine.mechanism.stats_ret_watermark_drains)
    return RetAblationResult(workload=workload,
                             ret_sizes=list(ret_sizes),
                             normalized=normalized,
                             watermark_drains=drains)


# ----------------------------------------------------------------------
# Recovery matrix (Figure 1 / Section 3 argument, as an experiment)
# ----------------------------------------------------------------------

@dataclasses.dataclass
class RecoveryMatrixResult:
    """Crash-recovery outcomes per (workload, mechanism)."""

    rows: List[Dict[str, object]]

    def outcome(self, workload: str, mechanism: str) -> Dict[str, object]:
        for row in self.rows:
            if (row["workload"] == workload
                    and row["mechanism"] == mechanism):
                return row
        raise KeyError((workload, mechanism))

    def render(self) -> str:
        table = [
            [row["workload"], row["mechanism"], row["crash_points"],
             row["unrecoverable"],
             "OK" if row["unrecoverable"] == 0 else "VIOLATIONS"]
            for row in self.rows
        ]
        return render_table(
            "Recovery matrix: null recovery across crash points "
            "(RP mechanisms must always recover; ARP/NOP must not)",
            ["workload", "mechanism", "crash points", "unrecoverable",
             "verdict"], table)


def run_recovery_matrix(*, workloads: Optional[Sequence[str]] = None,
                        mechanisms: Sequence[str] = (
                            "nop", "arp", "sb", "bb", "dpo", "hops",
                            "lrp"),
                        num_threads: int = 8, initial_size: int = 256,
                        ops_per_thread: int = 24, seeds: Sequence[int] = (0, 1),
                        crash_points: int = 40) -> RecoveryMatrixResult:
    """Crash every mechanism on every LFD at many persist-log points."""
    workloads = list(workloads or WORKLOAD_NAMES)
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        for mech in mechanisms:
            attempts = 0
            failures = 0
            for seed in seeds:
                spec = WorkloadSpec(structure=workload,
                                    num_threads=num_threads,
                                    initial_size=initial_size,
                                    ops_per_thread=ops_per_thread,
                                    seed=seed)
                run = simulate(spec, mechanism=mech, config=SCALED_CONFIG)
                campaign = crash_test(run, num_points=crash_points,
                                      seed=seed)
                attempts += campaign.attempts
                failures += len(campaign.failures)
            rows.append({
                "workload": workload,
                "mechanism": mech,
                "crash_points": attempts,
                "unrecoverable": failures,
            })
    return RecoveryMatrixResult(rows=rows)


# ----------------------------------------------------------------------
# Command-line entry point
# ----------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(
        description="Regenerate the paper's evaluation figures.")
    parser.add_argument("--scale", choices=("quick", "full"),
                        default="quick")
    parser.add_argument("--figures", nargs="*", default=None,
                        help="subset, e.g. fig5 fig6 fig7 fig8 size "
                             "ret recovery")
    args = parser.parse_args(argv)
    wanted = set(args.figures or
                 ["fig5", "fig6", "fig7", "fig8", "size", "ret",
                  "recovery"])

    fig5 = None
    if wanted & {"fig5", "fig6"}:
        fig5 = run_figure5(scale=args.scale)
        if "fig5" in wanted:
            print(fig5.render())
            print(f"\nmean improvement BB over SB: "
                  f"{fig5.mean_improvement('sb', 'bb') * 100:.0f}%")
            print(f"mean improvement LRP over BB: "
                  f"{fig5.mean_improvement('bb', 'lrp') * 100:.0f}%\n")
    if "fig6" in wanted:
        print(run_figure6(fig5).render(), "\n")
    if "fig7" in wanted:
        print(run_figure7(scale=args.scale).render(), "\n")
    if "fig8" in wanted:
        print(run_figure8(scale=args.scale).render(), "\n")
    if "size" in wanted:
        print(run_size_sensitivity().render(), "\n")
    if "ret" in wanted:
        print(run_ret_ablation().render(), "\n")
    if "recovery" in wanted:
        print(run_recovery_matrix().render())


if __name__ == "__main__":
    main()
