"""Small Python-version compatibility helpers.

The simulator supports Python 3.9+ (CI exercises 3.9 and 3.12).
``dataclass(slots=True)`` arrived in 3.10; the hot-path dataclasses
splat :data:`DATACLASS_SLOTS` instead so 3.9 still imports — it only
loses the slots memory/attribute-lookup optimization, not behavior.
"""

from __future__ import annotations

import sys
from typing import Any, Dict

#: ``{"slots": True}`` where supported, else empty. Usage:
#: ``@dataclasses.dataclass(frozen=True, **DATACLASS_SLOTS)``.
DATACLASS_SLOTS: Dict[str, Any] = (
    {"slots": True} if sys.version_info >= (3, 10) else {}
)
