"""The NVM subsystem: persist timing, bandwidth, and the durable log.

The model follows Section 6.3 of the paper:

* **cached mode** — a line persist is acknowledged once it reaches the
  battery-backed NVM-side DRAM cache (120 cycles);
* **uncached mode** — the ack waits for the actual NVM write
  (350 cycles).

Multiple memory controllers serve persists; a line's home controller is
selected by address interleaving. Each controller has finite bandwidth:
back-to-back persists to one controller serialize on its occupancy.

Every acknowledged persist is appended to a **persist log** — the
ground truth for crash experiments: crashing after log prefix *k*
reconstructs the NVM image from exactly the first *k* acknowledged line
persists (persists are line-atomic at ack time; Section 5 of
DESIGN.md).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.params import MachineConfig
from repro.common.tables import numpy_or_none

Word = Optional[int]


@dataclasses.dataclass(frozen=True)
class PersistRecord:
    """One acknowledged line persist.

    ``words`` maps word address to ``(value, event_id)``, where
    ``event_id`` identifies the *youngest* store event whose value the
    persisted word carries (older stores to the word were coalesced).
    """

    issue_seq: int
    line_addr: int
    words: Tuple[Tuple[int, Tuple[Word, int]], ...]
    issue_time: int
    complete_time: int

    def word_values(self) -> Dict[int, Word]:
        """Word address -> persisted value for this record."""
        return {addr: value for addr, (value, _event) in self.words}

    def word_events(self) -> Dict[int, int]:
        """Word address -> id of the store whose value persisted."""
        return {addr: event for addr, (_value, event) in self.words}


class NVMController:
    """All NVM channels plus the durable persist log."""

    def __init__(self, config: MachineConfig) -> None:
        self._config = config
        self._busy_until = [0] * config.num_memory_controllers
        self._records: List[PersistRecord] = []
        self._issue_seq = 0
        # Words considered durable before the measured phase started
        # (the pre-populated data structure).
        self._baseline_image: Dict[int, Word] = {}
        self._baseline_events: Dict[int, int] = {}

    @property
    def config(self) -> MachineConfig:
        return self._config

    @property
    def persist_count(self) -> int:
        """Number of line persists issued so far."""
        return self._issue_seq

    def channel_for(self, line_addr: int) -> int:
        """Home memory controller of a line (address-interleaved)."""
        return (line_addr // self._config.line_bytes) % len(self._busy_until)

    def issue_persist(self, line_addr: int,
                      words: Dict[int, Tuple[Word, int]],
                      now: int, *, after: int = 0,
                      ordered_after: Optional["PersistRecord"] = None
                      ) -> PersistRecord:
        """Issue a line persist at time ``now``; return its record.

        ``words`` carries the current (coalesced) dirty word values of
        the line together with the id of the youngest store per word.

        Two ways to order this persist behind a predecessor:

        * ``after`` — a hard gate: do not even *issue* before this
          time (a controller that waits for the predecessor's ack).
        * ``ordered_after`` — pipelined ordering: issue immediately,
          but the ack is constrained to land after the predecessor's
          ack (plus one occupancy slot). This models an ordering-aware
          memory system (e.g. the battery-backed NVM-side DRAM cache)
          that sustains ordered streams at throughput rather than
          round-trip latency, while the persist *log* still reflects
          the required durability order by construction.
        """
        issue_time = max(now, after)
        channel = self.channel_for(line_addr)
        start = max(issue_time, self._busy_until[channel])
        self._busy_until[channel] = start + self._config.nvm_occupancy_cycles
        complete = start + self._config.nvm_persist_cycles
        if ordered_after is not None:
            complete = max(
                complete,
                ordered_after.complete_time
                + self._config.nvm_occupancy_cycles)
        record = PersistRecord(
            issue_seq=self._issue_seq,
            line_addr=line_addr,
            words=tuple(sorted(words.items())),
            issue_time=issue_time,
            complete_time=complete,
        )
        self._issue_seq += 1
        self._records.append(record)
        return record

    def issue_persist_batch(
            self, items: Iterable[Tuple[int, Dict[int, Tuple[Word, int]]]],
            now: int, *, after: int = 0,
            ordered_after: Optional["PersistRecord"] = None
            ) -> List[PersistRecord]:
        """Issue a batch of line persists sharing one set of constraints.

        Bit-identical, by construction, to calling :meth:`issue_persist`
        once per ``(line_addr, words)`` item in order with the same
        ``now``/``after``/``ordered_after`` — the serialization of
        same-channel persists has a closed form (the *k*-th persist a
        batch sends to a channel starts one occupancy slot after the
        previous one), which lets the channel/bandwidth accounting be
        computed for the whole batch at once, vectorized with numpy
        when available. Callers whose ordering constraint *changes per
        record* (e.g. LRP's release chains) cannot batch and keep the
        per-record path.
        """
        items = list(items)
        issue_time = max(now, after)
        busy = self._busy_until
        num_channels = len(busy)
        line_bytes = self._config.line_bytes
        occupancy = self._config.nvm_occupancy_cycles
        persist_cycles = self._config.nvm_persist_cycles
        floor = (ordered_after.complete_time + occupancy
                 if ordered_after is not None else None)

        np = numpy_or_none()
        if np is not None and len(items) >= 16:
            addrs = np.fromiter((addr for addr, _ in items),
                                dtype=np.int64, count=len(items))
            channels = (addrs // line_bytes) % num_channels
            base = np.maximum(issue_time,
                              np.asarray(busy, dtype=np.int64))
            order = np.argsort(channels, kind="stable")
            sorted_ch = channels[order]
            boundary = np.empty(len(items), dtype=bool)
            boundary[0] = True
            boundary[1:] = sorted_ch[1:] != sorted_ch[:-1]
            group_starts = np.flatnonzero(boundary)
            group_sizes = np.diff(np.append(group_starts, len(items)))
            ranks = (np.arange(len(items))
                     - np.repeat(group_starts, group_sizes))
            starts_sorted = base[sorted_ch] + ranks * occupancy
            starts = np.empty_like(starts_sorted)
            starts[order] = starts_sorted
            completes = starts + persist_cycles
            if floor is not None:
                np.maximum(completes, floor, out=completes)
            counts = np.bincount(channels, minlength=num_channels)
            new_busy = base + counts * occupancy
            for channel in np.flatnonzero(counts):
                busy[channel] = int(new_busy[channel])
            complete_times = completes.tolist()
        else:
            complete_times = []
            for line_addr, _words in items:
                channel = (line_addr // line_bytes) % num_channels
                start = busy[channel]
                if issue_time > start:
                    start = issue_time
                busy[channel] = start + occupancy
                complete = start + persist_cycles
                if floor is not None and complete < floor:
                    complete = floor
                complete_times.append(complete)

        records = []
        seq = self._issue_seq
        for (line_addr, words), complete in zip(items, complete_times):
            record = PersistRecord(
                issue_seq=seq,
                line_addr=line_addr,
                words=tuple(sorted(words.items())),
                issue_time=issue_time,
                complete_time=complete,
            )
            seq += 1
            records.append(record)
        self._issue_seq = seq
        self._records.extend(records)
        return records

    # ------------------------------------------------------------------
    # Durable state reconstruction (crash experiments)
    # ------------------------------------------------------------------

    def persist_log(self) -> List[PersistRecord]:
        """Acknowledged persists in completion (i.e. durability) order."""
        return sorted(self._records,
                      key=lambda r: (r.complete_time, r.issue_seq))

    def reset_log(self) -> None:
        """Forget recorded persists (measured phase starts fresh)."""
        self._records.clear()

    def set_baseline_image(self, words: Dict[int, Word],
                           events: Optional[Dict[int, int]] = None, *,
                           share: bool = False) -> None:
        """Install pre-populated durable state (setup-phase checkpoint).

        With ``share`` the dicts are adopted without copying; the
        caller must never mutate them afterwards (the controller itself
        only ever reads the baseline).
        """
        if share:
            self._baseline_image = words
            self._baseline_events = events or {}
        else:
            self._baseline_image = dict(words)
            self._baseline_events = dict(events or {})

    def baseline_image(self) -> Dict[int, Word]:
        return dict(self._baseline_image)

    def image_after_prefix(self, prefix_len: int) -> Dict[int, Word]:
        """NVM contents if the machine crashed after ``prefix_len``
        acknowledged persists (in durability order)."""
        log = self.persist_log()
        if not 0 <= prefix_len <= len(log):
            raise ValueError(
                f"prefix_len must be in [0, {len(log)}], got {prefix_len}")
        image = dict(self._baseline_image)
        for record in log[:prefix_len]:
            image.update(record.word_values())
        return image

    def durable_events_after_prefix(self, prefix_len: int) -> Dict[int, int]:
        """Word -> youngest persisted store event id, for a crash prefix."""
        log = self.persist_log()
        events = dict(self._baseline_events)
        for record in log[:prefix_len]:
            events.update(record.word_events())
        return events

    def image_at_time(self, time: int) -> Dict[int, Word]:
        """NVM contents if power failed at cycle ``time``."""
        image = dict(self._baseline_image)
        for record in self.persist_log():
            if record.complete_time <= time:
                image.update(record.word_values())
        return image

    def final_image(self) -> Dict[int, Word]:
        """NVM contents once every issued persist has completed."""
        return self.image_after_prefix(len(self._records))
