"""Worker heartbeats and the live watch renderer.

The heartbeat side channel must be harmless (atomic writes, throttled,
never takes a job or the watcher down) and honest (stale files degrade
to a STALE marker plus one warning — satellite requirement — instead
of a crash or a silent stall). These tests pin both halves plus the
``--watch`` loop and the runner integration end to end.
"""

import io
import json
import os
import time

from repro.common.params import MachineConfig
from repro.exp import heartbeat
from repro.exp.__main__ import run_watch
from repro.exp.progress import WatchRenderer
from repro.exp.runner import Job, execute_job
from repro.workloads.harness import WorkloadSpec


def _write(directory, label, state, age=0.0, **fields):
    now = time.time() - age
    payload = {"label": label, "state": state, "pid": 1,
               "started_at": now - 1.0, "updated_at": now}
    payload.update(fields)
    path = os.path.join(directory, heartbeat.slug(label) + ".json")
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


# ----------------------------------------------------------------------
# Writer: atomicity, throttling, failure isolation
# ----------------------------------------------------------------------

def test_writer_creates_atomic_json(tmp_path):
    writer = heartbeat.HeartbeatWriter(str(tmp_path), "fig5/hashmap lrp")
    assert writer.update("setup")
    # The label was slugged into a safe stem and no temp file remains.
    names = os.listdir(tmp_path)
    assert names == ["fig5_hashmap_lrp.json"]
    data = json.loads((tmp_path / names[0]).read_text())
    assert data["state"] == "setup"
    assert data["label"] == "fig5/hashmap lrp"
    assert data["updated_at"] >= data["started_at"]


def test_writer_throttles_intermediate_but_not_terminal(tmp_path):
    writer = heartbeat.HeartbeatWriter(str(tmp_path), "job")
    assert writer.update("running", execs=1)
    # Immediately again: inside MIN_WRITE_GAP, dropped.
    assert not writer.update("running", execs=2)
    data = json.loads((tmp_path / "job.json").read_text())
    assert data["execs"] == 1
    # Terminal states always land, throttle or not.
    assert writer.update("done", makespan=123)
    data = json.loads((tmp_path / "job.json").read_text())
    assert data["state"] == "done"
    assert data["makespan"] == 123


def test_writer_survives_unwritable_directory(tmp_path):
    target = tmp_path / "gone"
    target.mkdir()
    writer = heartbeat.HeartbeatWriter(str(target), "job")
    target.rmdir()
    # Monitoring failure must not raise into the job.
    assert writer.update("done") is False


def test_job_writer_disabled_without_env(monkeypatch):
    monkeypatch.delenv(heartbeat.ENV_DIR, raising=False)
    assert heartbeat.job_writer("job") is None


# ----------------------------------------------------------------------
# Reader: corrupt files degrade, missing directory reads empty
# ----------------------------------------------------------------------

def test_read_heartbeats_missing_directory(tmp_path):
    assert heartbeat.read_heartbeats(str(tmp_path / "nope")) == []


def test_read_heartbeats_corrupt_file_degrades(tmp_path):
    _write(str(tmp_path), "good", "done")
    (tmp_path / "torn.json").write_text("{\"label\": \"torn")
    (tmp_path / "list.json").write_text("[1, 2]")
    (tmp_path / "ignored.txt").write_text("not a heartbeat")
    entries = heartbeat.read_heartbeats(str(tmp_path))
    assert [e["label"] for e in entries] == ["good", "list", "torn"]
    states = {e["label"]: e["state"] for e in entries}
    assert states["good"] == "done"
    assert states["torn"] == "unreadable"
    assert states["list"] == "unreadable"


# ----------------------------------------------------------------------
# Staleness and rendering (the --watch degradation contract)
# ----------------------------------------------------------------------

def test_is_stale_rules():
    now = time.time()
    fresh = {"state": "running", "updated_at": now - 1}
    silent = {"state": "running", "updated_at": now - 100}
    finished = {"state": "done", "updated_at": now - 100}
    unreadable = {"state": "unreadable"}
    missing_ts = {"state": "running"}
    assert not heartbeat.is_stale(fresh, now)
    assert heartbeat.is_stale(silent, now)
    # Terminal and unreadable entries never count as stale ...
    assert not heartbeat.is_stale(finished, now)
    assert not heartbeat.is_stale(unreadable, now)
    # ... but a running entry with no timestamp at all does.
    assert heartbeat.is_stale(missing_ts, now)


def test_render_watch_stale_marker_and_single_warning(tmp_path):
    """Satellite pin: a stale heartbeat degrades to a STALE marker and
    exactly one trailing warning line — never an exception."""
    directory = str(tmp_path)
    _write(directory, "alive", "running", age=1.0, execs=500)
    _write(directory, "wedged", "running", age=120.0, execs=7)
    _write(directory, "zombie", "running", age=300.0)
    entries = heartbeat.read_heartbeats(directory)
    lines, stale = heartbeat.render_watch(entries, now=time.time(),
                                          directory=directory)
    assert stale == 2
    assert lines[0].startswith("[watch] 3 job(s)")
    rendered = "\n".join(lines)
    assert rendered.count("STALE") == 2
    # The live job still shows progress; the stale ones hide theirs
    # (execs=7 may be a lie from a dead worker).
    assert "execs=500" in rendered
    assert "execs=7" not in rendered
    warnings = [line for line in lines if line.startswith("warning:")]
    assert len(warnings) == 1
    assert "2 heartbeat(s) stale" in warnings[0]


def test_render_watch_no_heartbeats():
    lines, stale = heartbeat.render_watch([], now=time.time())
    assert stale == 0
    assert any("no heartbeats yet" in line for line in lines)


def test_render_watch_terminal_fields():
    now = time.time()
    entries = [
        {"label": "cell-a", "state": "done", "updated_at": now - 2,
         "execs": 1024, "makespan": 147951,
         "telemetry": {"persist.lines": 9, "stall.cycles": 40}},
        {"label": "cell-b", "state": "failed", "updated_at": now - 2,
         "error": "ValueError('boom')"},
    ]
    lines, stale = heartbeat.render_watch(entries, now=now)
    assert stale == 0
    rendered = "\n".join(lines)
    assert "makespan=147951" in rendered
    assert "persist.lines=9" in rendered
    assert "error=ValueError('boom')" in rendered


def test_all_terminal():
    assert not heartbeat.all_terminal([])
    assert heartbeat.all_terminal([{"state": "done"},
                                   {"state": "failed"},
                                   {"state": "unreadable"}])
    assert not heartbeat.all_terminal([{"state": "done"},
                                       {"state": "running"}])


# ----------------------------------------------------------------------
# The --watch loop
# ----------------------------------------------------------------------

def test_run_watch_once_clean(tmp_path):
    directory = str(tmp_path)
    _write(directory, "cell", "done", makespan=42)
    stream = io.StringIO()
    code = run_watch(directory, ttl=15.0, refresh=0.01, once=True,
                     renderer=WatchRenderer(stream))
    assert code == 0
    assert "makespan=42" in stream.getvalue()


def test_run_watch_once_stale_exit_code(tmp_path):
    directory = str(tmp_path)
    _write(directory, "cell", "running", age=120.0)
    stream = io.StringIO()
    code = run_watch(directory, ttl=15.0, refresh=0.01, once=True,
                     renderer=WatchRenderer(stream))
    assert code == 1
    assert "STALE" in stream.getvalue()


def test_run_watch_missing_directory_exits_one(tmp_path, capsys):
    """Satellite pin: watching a directory that does not exist fails
    fast with a one-line diagnostic instead of rendering an empty
    block forever."""
    stream = io.StringIO()
    code = run_watch(str(tmp_path / "never-created"), ttl=15.0,
                     refresh=0.01, once=False,
                     renderer=WatchRenderer(stream))
    assert code == 1
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert "no heartbeats" in err
    assert heartbeat.ENV_DIR in err
    # Nothing was rendered — the loop never started.
    assert stream.getvalue() == ""


def test_run_watch_empty_directory_exits_one(tmp_path, capsys):
    """An existing but never-populated directory (sweep launched
    without REPRO_HEARTBEAT_DIR) gets the same immediate diagnostic."""
    stream = io.StringIO()
    code = run_watch(str(tmp_path), ttl=15.0, refresh=0.01, once=True,
                     renderer=WatchRenderer(stream))
    assert code == 1
    assert "no heartbeats" in capsys.readouterr().err
    assert stream.getvalue() == ""


def test_run_watch_stops_when_everything_is_dead(tmp_path):
    """One stale worker + one finished job: the loop must notice that
    nothing is alive any more and stop (exit 1) instead of spinning."""
    directory = str(tmp_path)
    _write(directory, "finished", "done")
    _write(directory, "wedged", "running", age=120.0)
    stream = io.StringIO()
    code = run_watch(directory, ttl=15.0, refresh=0.01, once=False,
                     renderer=WatchRenderer(stream))
    assert code == 1
    assert "warning:" in stream.getvalue()


# ----------------------------------------------------------------------
# Runner integration: execute_job keeps a heartbeat, simulation
# stays bit-identical with the side channel on
# ----------------------------------------------------------------------

def test_execute_job_writes_terminal_heartbeat(tmp_path, monkeypatch):
    from repro.core.simulator import clear_setup_cache

    directory = str(tmp_path / "hb")
    monkeypatch.setenv(heartbeat.ENV_DIR, directory)
    clear_setup_cache()
    job = Job(spec=WorkloadSpec(structure="hashmap", num_threads=4,
                                initial_size=64, ops_per_thread=12,
                                seed=1),
              mechanism="lrp", config=MachineConfig(num_cores=4),
              collect_obs=True)
    with_hb = execute_job(job)

    entries = heartbeat.read_heartbeats(directory)
    assert len(entries) == 1
    entry = entries[0]
    assert entry["state"] == "done"
    assert entry["makespan"] == with_hb.makespan
    assert entry["execs"] >= 4 * 12  # executed ops include setup
    assert entry["telemetry"]["persist.lines"] \
        == with_hb.obs["metrics"]["counters"]["persist.lines"]

    # Heartbeats are a pure side channel: same run without them is
    # bit-identical.
    monkeypatch.delenv(heartbeat.ENV_DIR)
    clear_setup_cache()
    without_hb = execute_job(job)
    assert without_hb.makespan == with_hb.makespan
    assert without_hb.obs == with_hb.obs
    assert without_hb.persist_log_digest == with_hb.persist_log_digest
    clear_setup_cache()


def test_execute_job_failed_heartbeat(tmp_path, monkeypatch):
    import pytest

    directory = str(tmp_path / "hb")
    monkeypatch.setenv(heartbeat.ENV_DIR, directory)
    job = Job(spec=WorkloadSpec(structure="hashmap", num_threads=4,
                                initial_size=64, ops_per_thread=12,
                                seed=1),
              mechanism="definitely-not-a-mechanism",
              config=MachineConfig(num_cores=4))
    with pytest.raises(Exception):
        execute_job(job)
    entries = heartbeat.read_heartbeats(directory)
    assert len(entries) == 1
    assert entries[0]["state"] == "failed"
    assert "error" in entries[0]
