"""End-to-end tests of the simulate() driver."""

import dataclasses

import pytest

from repro.common.params import MachineConfig, NVMMode
from repro.core.simulator import simulate, simulate_all_mechanisms
from repro.workloads.harness import WorkloadSpec

CFG = MachineConfig(num_cores=8, l1_size_bytes=8 * 1024)
SPEC = WorkloadSpec(structure="hashmap", num_threads=4,
                    initial_size=128, ops_per_thread=16, seed=2)


class TestSimulate:
    def test_returns_consistent_result(self):
        result = simulate(SPEC, mechanism="lrp", config=CFG)
        assert result.mechanism == "lrp"
        assert result.makespan > 0
        assert result.stats.execution_cycles == result.makespan
        assert result.stats.total_ops == 4 * 16

    def test_config_grows_cores_if_needed(self):
        small = MachineConfig(num_cores=2)
        spec = dataclasses.replace(SPEC, num_threads=4)
        result = simulate(spec, mechanism="nop", config=small)
        assert result.config.num_cores == 4

    def test_deterministic_replay(self):
        a = simulate(SPEC, mechanism="bb", config=CFG)
        b = simulate(SPEC, mechanism="bb", config=CFG)
        assert a.makespan == b.makespan
        assert len(a.trace) == len(b.trace)
        assert [r.line_addr for r in a.nvm.persist_log()] == \
               [r.line_addr for r in b.nvm.persist_log()]

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            simulate(SPEC, mechanism="magic", config=CFG)

    def test_uncached_mode_slower_for_sb(self):
        cached = simulate(SPEC, mechanism="sb", config=CFG)
        uncached = simulate(
            SPEC, mechanism="sb",
            config=dataclasses.replace(CFG, nvm_mode=NVMMode.UNCACHED))
        assert uncached.makespan > cached.makespan

    def test_volatile_is_fastest(self):
        runs = simulate_all_mechanisms(SPEC, config=CFG)
        assert runs["nop"].makespan == min(r.makespan
                                           for r in runs.values())

    def test_sb_slowest_of_rp_mechanisms(self):
        runs = simulate_all_mechanisms(SPEC, config=CFG)
        assert runs["sb"].makespan >= runs["bb"].makespan
        assert runs["sb"].makespan >= runs["lrp"].makespan

    def test_trace_is_rc_consistent(self):
        from repro.consistency.happens_before import HappensBefore

        result = simulate(SPEC, mechanism="lrp", config=CFG)
        hb = HappensBefore.from_trace(result.trace)
        assert hb.validate_read_values() == []

    def test_coherence_invariants_after_run(self):
        result = simulate(SPEC, mechanism="lrp", config=CFG)
        assert result.machine.fabric.check_invariants() == []

    def test_drain_makes_everything_durable(self):
        for mech in ("nop", "sb", "bb", "lrp", "arp"):
            result = simulate(SPEC, mechanism=mech, config=CFG)
            result.verify_durable_final_state()


class TestStatsPlumbing:
    def test_persist_counts_positive_for_rp_mechanisms(self):
        for mech in ("sb", "bb", "lrp"):
            result = simulate(SPEC, mechanism=mech, config=CFG)
            assert result.stats.total_persists > 0

    def test_lrp_stalls_less_than_sb(self):
        sb = simulate(SPEC, mechanism="sb", config=CFG)
        lrp = simulate(SPEC, mechanism="lrp", config=CFG)
        assert (lrp.stats.persist_stall_cycles
                < sb.stats.persist_stall_cycles)

    def test_summary_dict(self):
        result = simulate(SPEC, mechanism="lrp", config=CFG)
        summary = result.stats.summary()
        assert summary["mechanism"] == "lrp"
        assert summary["workload"] == "hashmap"
