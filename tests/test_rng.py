"""Unit tests for repro.common.rng (deterministic RNG derivation)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.rng import make_rng, weighted_choice


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7, "worker", 3)
        b = make_rng(7, "worker", 3)
        assert [a.random() for _ in range(10)] == \
               [b.random() for _ in range(10)]

    def test_different_streams_diverge(self):
        a = make_rng(7, "worker", 3)
        b = make_rng(7, "worker", 4)
        assert [a.random() for _ in range(5)] != \
               [b.random() for _ in range(5)]

    def test_different_seeds_diverge(self):
        a = make_rng(1, "x")
        b = make_rng(2, "x")
        assert a.random() != b.random()

    def test_stable_across_hash_randomization(self):
        # The derivation must not depend on Python's randomized str
        # hash; this value is pinned to catch regressions.
        rng = make_rng(42, "pinned")
        first = rng.randrange(1 << 30)
        rng2 = make_rng(42, "pinned")
        assert rng2.randrange(1 << 30) == first


class TestWeightedChoice:
    def test_single_item(self):
        rng = make_rng(0)
        assert weighted_choice(rng, ["a"], [1.0]) == "a"

    def test_zero_weight_never_chosen(self):
        rng = make_rng(0)
        picks = {weighted_choice(rng, ["a", "b"], [0.0, 1.0])
                 for _ in range(50)}
        assert picks == {"b"}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a"], [1.0, 2.0])

    def test_non_positive_total_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a", "b"], [0.0, 0.0])

    @given(st.integers(0, 2 ** 32), st.integers(1, 6))
    def test_always_returns_an_item(self, seed, n):
        rng = make_rng(seed)
        items = list(range(n))
        weights = [rng.random() + 0.01 for _ in items]
        assert weighted_choice(rng, items, weights) in items

    @given(st.integers(0, 2 ** 32))
    def test_heavily_weighted_item_dominates(self, seed):
        rng = make_rng(seed, "dominate")
        picks = [weighted_choice(rng, ["x", "y"], [1000.0, 1.0])
                 for _ in range(20)]
        assert picks.count("x") >= 15
