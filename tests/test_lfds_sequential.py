"""Sequential correctness of every LFD against a reference model.

Each structure runs single-threaded on the simulated machine through
randomized insert/delete/contains sequences; results must match a
Python set/list oracle exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import MachineConfig
from repro.common.rng import make_rng
from repro.core.machine import Machine
from repro.core.scheduler import Scheduler
from repro.lfds import (
    BinarySearchTree,
    HashMap,
    LinkedList,
    MichaelScottQueue,
    SkipList,
)
from repro.memory.address import HeapAllocator

CFG = MachineConfig(num_cores=2)

SET_STRUCTURES = [LinkedList, HashMap, BinarySearchTree, SkipList]


def _build(cls):
    allocator = HeapAllocator(line_bytes=CFG.line_bytes)
    if cls is HashMap:
        return cls(allocator, num_buckets=8)
    return cls(allocator)


def _drive(structure, script, initial=None):
    """Run a (op, key) script single-threaded; return results list."""
    machine = Machine(CFG, "nop")
    memory = {}
    structure.build_initial(initial or [], memory)
    machine.install_initial_state(memory)
    results = []

    def worker(tid):
        for op, key in script:
            if op == "insert":
                ok = yield from structure.insert(key, key * 10 + 1)
            elif op == "delete":
                ok = yield from structure.delete(key)
            else:
                ok = yield from structure.contains(key)
            results.append(ok)

    Scheduler(machine, [worker]).run()
    return results, machine


def _oracle(script, initial=None):
    present = set(initial or [])
    expected = []
    for op, key in script:
        if op == "insert":
            expected.append(key not in present)
            present.add(key)
        elif op == "delete":
            expected.append(key in present)
            present.discard(key)
        else:
            expected.append(key in present)
    return expected, present


def _script(seed, length, key_range=12):
    rng = make_rng(seed, "script")
    ops = ["insert", "delete", "contains"]
    return [(rng.choice(ops), rng.randrange(key_range))
            for _ in range(length)]


@pytest.mark.parametrize("cls", SET_STRUCTURES,
                         ids=lambda c: c.name)
class TestSetSemantics:
    def test_insert_then_contains(self, cls):
        structure = _build(cls)
        results, _ = _drive(structure, [
            ("insert", 5), ("contains", 5), ("contains", 6),
        ])
        assert results == [True, True, False]

    def test_duplicate_insert_fails(self, cls):
        structure = _build(cls)
        results, _ = _drive(structure, [("insert", 5), ("insert", 5)])
        assert results == [True, False]

    def test_delete_semantics(self, cls):
        structure = _build(cls)
        results, _ = _drive(structure, [
            ("insert", 5), ("delete", 5), ("delete", 5),
            ("contains", 5),
        ])
        assert results == [True, True, False, False]

    def test_reinsert_after_delete(self, cls):
        structure = _build(cls)
        results, _ = _drive(structure, [
            ("insert", 5), ("delete", 5), ("insert", 5),
            ("contains", 5),
        ])
        assert results == [True, True, True, True]

    def test_initial_population_visible(self, cls):
        structure = _build(cls)
        results, _ = _drive(structure, [
            ("contains", 2), ("insert", 2), ("delete", 2),
            ("contains", 2),
        ], initial=[1, 2, 3])
        assert results == [True, False, True, False]

    def test_collect_keys_matches_oracle(self, cls):
        structure = _build(cls)
        script = _script(7, 40)
        _, machine = _drive(structure, script, initial=[1, 4, 9])
        _, present = _oracle(script, initial=[1, 4, 9])
        assert structure.collect_keys(
            machine.trace.memory_snapshot()) == present

    def test_final_image_validates(self, cls):
        structure = _build(cls)
        script = _script(3, 30)
        _, machine = _drive(structure, script)
        machine.finish(1_000_000)
        report = structure.validate_image(machine.nvm.final_image())
        assert report.ok, report.problems

    @pytest.mark.parametrize("seed", range(5))
    def test_random_scripts_match_oracle(self, cls, seed):
        structure = _build(cls)
        script = _script(seed, 60)
        results, _ = _drive(structure, script, initial=[0, 5, 11])
        expected, _ = _oracle(script, initial=[0, 5, 11])
        assert results == expected


class TestSetSemanticsProperty:
    @given(st.sampled_from(SET_STRUCTURES),
           st.lists(st.tuples(
               st.sampled_from(["insert", "delete", "contains"]),
               st.integers(0, 9)), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_matches_oracle(self, cls, script):
        structure = _build(cls)
        results, _ = _drive(structure, script)
        expected, _ = _oracle(script)
        assert results == expected


class TestQueueSequential:
    def test_fifo_order(self):
        queue = _build(MichaelScottQueue)
        machine = Machine(CFG, "nop")
        memory = {}
        queue.build_initial([], memory)
        machine.install_initial_state(memory)
        out = []

        def worker(tid):
            for v in (10, 20, 30):
                yield from queue.enqueue(v)
            for _ in range(4):
                value = yield from queue.dequeue()
                out.append(value)

        Scheduler(machine, [worker]).run()
        assert out == [10, 20, 30, None]

    def test_initial_values_dequeue_first(self):
        queue = _build(MichaelScottQueue)
        machine = Machine(CFG, "nop")
        memory = {}
        queue.build_initial([-1, -2], memory)
        machine.install_initial_state(memory)
        out = []

        def worker(tid):
            yield from queue.enqueue(99)
            for _ in range(3):
                value = yield from queue.dequeue()
                out.append(value)

        Scheduler(machine, [worker]).run()
        assert out == [-1, -2, 99]

    def test_collect_keys_is_remaining_values(self):
        queue = _build(MichaelScottQueue)
        machine = Machine(CFG, "nop")
        memory = {}
        queue.build_initial([-1, -2, -3], memory)
        machine.install_initial_state(memory)

        def worker(tid):
            yield from queue.dequeue()
            yield from queue.enqueue(7)

        Scheduler(machine, [worker]).run()
        assert queue.collect_keys(
            machine.trace.memory_snapshot()) == {-2, -3, 7}

    def test_final_image_validates(self):
        queue = _build(MichaelScottQueue)
        machine = Machine(CFG, "nop")
        memory = {}
        queue.build_initial([-1], memory)
        machine.install_initial_state(memory)

        def worker(tid):
            yield from queue.enqueue(5)
            yield from queue.dequeue()

        Scheduler(machine, [worker]).run()
        machine.finish(1_000_000)
        assert queue.validate_image(machine.nvm.final_image()).ok


class TestSkipListDeterminism:
    def test_levels_deterministic_per_key(self):
        a = _build(SkipList)
        b = _build(SkipList)
        for key in range(200):
            assert a.level_for(key) == b.level_for(key)

    def test_levels_geometric(self):
        sl = _build(SkipList)
        levels = [sl.level_for(k) for k in range(4096)]
        ones = sum(1 for l in levels if l == 1)
        assert 0.4 < ones / len(levels) < 0.6
        assert max(levels) <= sl.max_level
