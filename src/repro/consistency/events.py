"""Memory events and execution traces.

Every memory operation executed on the simulated machine is recorded as
a :class:`MemoryEvent`. The trace is a *total* order (the scheduler
interleaves threads atomically per memory operation, which yields a
sequentially consistent — hence RC-legal — execution, mirroring the
paper's use of a TSO host simulator, Section 6.3).

Events carry C++11-style ordering annotations (:class:`MemOrder`); the
happens-before construction of :mod:`repro.consistency.happens_before`
and the persistency mechanisms both key off these annotations.

Keeping the full event list is optional (``Trace(record=False)``,
driven by ``MachineConfig.record_trace``): figure runs only need the
aggregate statistics and the NVM persist log, so they skip the
per-event storage. Event ids, architectural memory, reads-from edges
and synchronizes-with metadata are maintained identically either way —
only the retained ``events`` list differs.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from repro.common.compat import DATACLASS_SLOTS

Word = Optional[int]


class MemOrder(enum.Enum):
    """Ordering annotation of a memory operation."""

    PLAIN = "plain"
    ACQUIRE = "acquire"
    RELEASE = "release"
    ACQ_REL = "acq_rel"

    @property
    def has_acquire(self) -> bool:
        return self in (MemOrder.ACQUIRE, MemOrder.ACQ_REL)

    @property
    def has_release(self) -> bool:
        return self in (MemOrder.RELEASE, MemOrder.ACQ_REL)


class EventKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    RMW = "rmw"  # compare-and-swap / fetch-op (read + conditional write)


@dataclasses.dataclass(frozen=True, **DATACLASS_SLOTS)
class MemoryEvent:
    """One executed memory operation.

    ``event_id`` is the position in the global execution order.
    For an RMW, ``success`` records whether the write part performed
    (a failed CAS degenerates to an acquire/plain read).

    ``source_thread``/``source_release`` describe the write this event
    reads from (thread that performed it, and whether it was a
    release), captured at record time so synchronizes-with edges can be
    resolved without the retained event list.
    """

    event_id: int
    thread_id: int
    kind: EventKind
    order: MemOrder
    addr: int
    value: Word = None          # value written (WRITE / successful RMW)
    read_value: Word = None     # value observed (READ / RMW)
    reads_from: Optional[int] = None  # event_id of the write observed
    success: bool = True        # False only for a failed RMW
    source_thread: Optional[int] = None  # thread of the write observed
    source_release: bool = False         # that write was a release

    @property
    def is_write_effect(self) -> bool:
        """True if this event wrote a value to memory."""
        if self.kind is EventKind.WRITE:
            return True
        return self.kind is EventKind.RMW and self.success

    @property
    def is_read_effect(self) -> bool:
        """True if this event observed a value from memory."""
        return self.kind in (EventKind.READ, EventKind.RMW)

    @property
    def is_release(self) -> bool:
        """A release write or successful release-RMW (paper notation Rel)."""
        return self.is_write_effect and self.order.has_release

    @property
    def is_acquire(self) -> bool:
        """An acquire read or acquire-RMW (paper notation Acq)."""
        return self.is_read_effect and self.order.has_acquire


class Trace:
    """Recorder for the global execution order of memory events.

    Maintains the architectural memory (word -> value) and the
    last-writer map used to derive reads-from edges. With
    ``record=False`` the per-event list is not retained (event ids and
    architectural state still advance identically).
    """

    def __init__(self, record: bool = True) -> None:
        self.record = record
        self._events: List[MemoryEvent] = []
        self._count = 0
        self._memory: Dict[int, Word] = {}
        self._last_writer: Dict[int, int] = {}
        # word addr -> (writer thread, writer was a release); mirrors
        # _last_writer so sync sources resolve without the event list.
        self._writer_meta: Dict[int, Tuple[int, bool]] = {}
        self._initial: Dict[int, Word] = {}

    def __len__(self) -> int:
        return self._count

    @property
    def events(self) -> List[MemoryEvent]:
        """The retained event list (requires ``record=True``)."""
        if not self.record and self._count:
            raise RuntimeError(
                "trace recording is disabled (MachineConfig.record_trace"
                "=False): the event list was not retained")
        return self._events

    def initialize(self, values: Dict[int, Word]) -> None:
        """Install initial memory values (no events are recorded)."""
        if self._count:
            raise ValueError("initialize before recording events")
        self._memory.update(values)
        self._initial.update(values)

    def initial_value(self, addr: int) -> Word:
        return self._initial.get(addr)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _append(self, event: MemoryEvent) -> MemoryEvent:
        self._count += 1
        if self.record:
            self._events.append(event)
        return event

    def record_read(self, thread_id: int, addr: int,
                    order: MemOrder = MemOrder.PLAIN) -> MemoryEvent:
        """Record a load; returns the event (with the observed value)."""
        source = self._writer_meta.get(addr)
        return self._append(MemoryEvent(
            event_id=self._count,
            thread_id=thread_id,
            kind=EventKind.READ,
            order=order,
            addr=addr,
            read_value=self._memory.get(addr),
            reads_from=self._last_writer.get(addr),
            source_thread=source[0] if source else None,
            source_release=source[1] if source else False,
        ))

    def record_write(self, thread_id: int, addr: int, value: Word,
                     order: MemOrder = MemOrder.PLAIN) -> MemoryEvent:
        """Record a store of ``value``."""
        event = MemoryEvent(
            event_id=self._count,
            thread_id=thread_id,
            kind=EventKind.WRITE,
            order=order,
            addr=addr,
            value=value,
        )
        self._append(event)
        self._memory[addr] = value
        self._last_writer[addr] = event.event_id
        self._writer_meta[addr] = (thread_id, order.has_release)
        return event

    def record_rmw(self, thread_id: int, addr: int, expected: Word,
                   new_value: Word,
                   order: MemOrder = MemOrder.ACQ_REL) -> MemoryEvent:
        """Record a compare-and-swap; the write performs iff it matches."""
        observed = self._memory.get(addr)
        success = observed == expected
        source = self._writer_meta.get(addr)
        event = MemoryEvent(
            event_id=self._count,
            thread_id=thread_id,
            kind=EventKind.RMW,
            order=order,
            addr=addr,
            value=new_value if success else None,
            read_value=observed,
            reads_from=self._last_writer.get(addr),
            success=success,
            source_thread=source[0] if source else None,
            source_release=source[1] if source else False,
        )
        self._append(event)
        if success:
            self._memory[addr] = new_value
            self._last_writer[addr] = event.event_id
            self._writer_meta[addr] = (thread_id, order.has_release)
        return event

    def record_unconditional_rmw(self, thread_id: int, addr: int,
                                 new_value: Word,
                                 order: MemOrder = MemOrder.ACQ_REL
                                 ) -> MemoryEvent:
        """Record an atomic exchange (always-successful RMW)."""
        observed = self._memory.get(addr)
        source = self._writer_meta.get(addr)
        event = MemoryEvent(
            event_id=self._count,
            thread_id=thread_id,
            kind=EventKind.RMW,
            order=order,
            addr=addr,
            value=new_value,
            read_value=observed,
            reads_from=self._last_writer.get(addr),
            success=True,
            source_thread=source[0] if source else None,
            source_release=source[1] if source else False,
        )
        self._append(event)
        self._memory[addr] = new_value
        self._last_writer[addr] = event.event_id
        self._writer_meta[addr] = (thread_id, order.has_release)
        return event

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def load(self, addr: int) -> Word:
        """Current architectural value of ``addr``."""
        return self._memory.get(addr)

    def memory_snapshot(self) -> Dict[int, Word]:
        """Copy of the full architectural memory."""
        return dict(self._memory)

    def last_writer_snapshot(self) -> Dict[int, int]:
        """Copy of the word -> youngest-writer-event map."""
        return dict(self._last_writer)

    def writes(self) -> List[MemoryEvent]:
        """All events with a write effect, in execution order."""
        return [e for e in self.events if e.is_write_effect]
