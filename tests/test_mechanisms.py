"""Unit tests for the persistency mechanisms (NOP/SB/BB/LRP/ARP).

These drive a small Machine directly with hand-built op sequences and
inspect stalls, persist issue/completion times and the resulting
persist log — the microarchitectural contracts of Sections 3, 5 and
6.2 of the paper.
"""

import dataclasses

import pytest

from repro.common.params import MachineConfig
from repro.consistency.events import MemOrder
from repro.core.machine import Machine
from repro.core.thread import cas, load, store
from repro.memory.address import line_address

CFG = MachineConfig(num_cores=4, num_memory_controllers=2,
                    nvm_cached_occupancy=16)

LINE_A = 0x1000   # node fields
LINE_B = 0x2000   # link word
LINE_C = 0x3000


def machine(mech, config=CFG):
    return Machine(config, mech)


def run_ops(m, ops, start=0):
    """Execute (core, op) pairs back-to-back; returns (results, clocks)."""
    clocks = {}
    results = []
    for core, op in ops:
        now = clocks.get(core, start)
        result, latency = m.execute(core, op, now)
        clocks[core] = now + latency
        results.append((result, latency))
    return results, clocks


class TestNOP:
    def test_no_stalls_ever(self):
        m = machine("nop")
        _, clocks = run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, store(LINE_B, 2, MemOrder.RELEASE)),
            (1, load(LINE_B, MemOrder.ACQUIRE)),
        ])
        assert all(c.persist_stall_cycles == 0 for c in m.stats)

    def test_downgrade_persists_dirty_data(self):
        m = machine("nop")
        run_ops(m, [
            (0, store(LINE_A, 7)),
            (1, load(LINE_A)),     # downgrade M->S
        ])
        assert m.nvm.final_image().get(LINE_A) == 7

    def test_drain_persists_everything(self):
        m = machine("nop")
        run_ops(m, [(0, store(LINE_A, 7))])
        m.finish(10_000)
        assert m.nvm.final_image().get(LINE_A) == 7


class TestSB:
    def test_release_pays_two_barriers(self):
        m = machine("sb")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, store(LINE_B, 2, MemOrder.RELEASE)),
        ])
        # Barrier before (flush LINE_A) + barrier after (flush LINE_B):
        # at least two full persist round-trips of stall.
        assert m.stats[0].persist_stall_cycles >= 2 * 120
        assert m.stats[0].barrier_count == 2

    def test_plain_writes_do_not_stall(self):
        m = machine("sb")
        run_ops(m, [(0, store(LINE_A, 1)), (0, store(LINE_B, 2))])
        assert m.stats[0].persist_stall_cycles == 0

    def test_fields_persist_before_release(self):
        m = machine("sb")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, cas(LINE_B, None, LINE_A, MemOrder.RELEASE)),
        ])
        log = m.nvm.persist_log()
        addr_order = [r.line_addr for r in log]
        assert addr_order.index(LINE_A) < addr_order.index(LINE_B)

    def test_inter_thread_downgrade_stalls_requester(self):
        m = machine("sb")
        run_ops(m, [(0, store(LINE_A, 1))])
        m.execute(1, load(LINE_A), 0)
        assert m.stats[1].persist_stall_cycles > 0
        assert m.stats[0].persist_stall_cycles == 0

    def test_eviction_of_dirty_line_blocks(self):
        small = MachineConfig(num_cores=2, l1_size_bytes=2 * 64 * 1,
                              l1_assoc=1)
        m = machine("sb", small)
        run_ops(m, [
            (0, store(0x0, 1)),
            (0, load(0x80)),    # same set, evicts dirty 0x0
        ])
        assert m.stats[0].persist_stall_cycles > 0
        assert m.nvm.final_image().get(0x0) == 1


class TestBB:
    def test_barrier_does_not_stall(self):
        m = machine("bb")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, store(LINE_B, 2, MemOrder.RELEASE)),
        ])
        # Proactive flush: no blocking at the barrier itself.
        assert m.stats[0].persist_stall_cycles == 0
        assert m.stats[0].barrier_count == 2

    def test_release_flushes_proactively(self):
        m = machine("bb")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, store(LINE_B, 2, MemOrder.RELEASE)),
        ])
        assert m.nvm.persist_count == 2  # both epochs issued

    def test_epochs_persist_in_order(self):
        m = machine("bb")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, store(LINE_B, 2, MemOrder.RELEASE)),
        ])
        log = m.nvm.persist_log()
        assert [r.line_addr for r in log] == [LINE_A, LINE_B]

    def test_write_to_inflight_line_stalls(self):
        """The Figure 2(a) conflict: writing a line whose older-epoch
        flush is still in flight."""
        m = machine("bb")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, store(LINE_B, 2, MemOrder.RELEASE)),  # flushes LINE_A
            (0, store(LINE_A, 3)),                    # conflict!
        ])
        assert m.stats[0].persist_stall_cycles > 0
        assert m.stats[0].writebacks_critical >= 1

    def test_write_much_later_no_conflict(self):
        m = machine("bb")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, store(LINE_B, 2, MemOrder.RELEASE)),
        ])
        m.execute(0, store(LINE_A, 3), 100_000)  # flush long acked
        assert m.stats[0].persist_stall_cycles == 0

    def test_downgrade_of_open_epoch_stalls_requester(self):
        m = machine("bb")
        run_ops(m, [(0, store(LINE_A, 1))])   # open epoch, unflushed
        m.execute(1, load(LINE_A), 0)
        assert m.stats[1].persist_stall_cycles > 0

    def test_acquire_closes_open_epoch(self):
        m = machine("bb")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, load(LINE_C, MemOrder.ACQUIRE)),
        ])
        assert m.nvm.persist_count == 1  # LINE_A flushed by the barrier

    def test_acquire_without_dirty_lines_is_free(self):
        m = machine("bb")
        run_ops(m, [(0, load(LINE_C, MemOrder.ACQUIRE))])
        assert m.stats[0].barrier_count == 0


class TestLRP:
    def test_writes_and_releases_never_stall_locally(self):
        m = machine("lrp")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, cas(LINE_B, None, LINE_A, MemOrder.RELEASE)),
            (0, store(LINE_C, 5)),
        ])
        assert m.stats[0].persist_stall_cycles == 0

    def test_release_buffers_no_persist(self):
        """LRP is lazy: nothing persists until coherence demands it."""
        m = machine("lrp")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, cas(LINE_B, None, LINE_A, MemOrder.RELEASE)),
        ])
        assert m.nvm.persist_count == 0

    def test_epoch_bumped_per_release(self):
        m = machine("lrp")
        mech = m.mechanism
        assert mech.current_epoch(0) == 1
        run_ops(m, [(0, store(LINE_B, 1, MemOrder.RELEASE))])
        assert mech.current_epoch(0) == 2
        run_ops(m, [(0, store(LINE_C, 1, MemOrder.RELEASE))], start=500)
        assert mech.current_epoch(0) == 3

    def test_ret_entry_allocated_and_squashed(self):
        m = machine("lrp")
        mech = m.mechanism
        run_ops(m, [(0, store(LINE_B, 1, MemOrder.RELEASE))])
        assert mech.ret_occupancy(0) == 1
        m.execute(1, load(LINE_B), 0)  # I2 persists the release
        assert mech.ret_occupancy(0) == 0

    def test_i2_downgrade_blocks_requester_and_orders(self):
        """Invariant I2 + the required W1 -> Rel persist order."""
        m = machine("lrp")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, cas(LINE_B, None, LINE_A, MemOrder.RELEASE)),
        ])
        m.execute(1, load(LINE_B, MemOrder.ACQUIRE), 0)
        assert m.stats[1].persist_stall_cycles > 0
        log = m.nvm.persist_log()
        addrs = [r.line_addr for r in log]
        assert addrs.index(LINE_A) < addrs.index(LINE_B)
        fields = next(r for r in log if r.line_addr == LINE_A)
        release = next(r for r in log if r.line_addr == LINE_B)
        assert fields.complete_time < release.complete_time

    def test_i1_eviction_does_not_stall(self):
        small = dataclasses.replace(CFG, l1_size_bytes=2 * 64 * 1,
                                    l1_assoc=1)
        m = machine("lrp", small)
        run_ops(m, [
            (0, store(0x0, 1, MemOrder.RELEASE)),
            (0, load(0x80)),   # evicts the released line
        ])
        assert m.stats[0].persist_stall_cycles == 0
        assert m.nvm.persist_count >= 1   # but it did persist

    def test_i1_eviction_blocks_line_at_directory(self):
        small = dataclasses.replace(CFG, l1_size_bytes=2 * 64 * 1,
                                    l1_assoc=1)
        m = machine("lrp", small)
        run_ops(m, [
            (0, store(0x0, 1, MemOrder.RELEASE)),
            (0, load(0x80)),
        ])
        assert m.fabric.blocked_until(0x0) > 0

    def test_i3_rmw_acquire_blocks_until_persist(self):
        m = machine("lrp")
        m.execute(0, store(LINE_B, 5), 0)
        result, latency = m.execute(
            0, cas(LINE_B, 5, 6, MemOrder.ACQ_REL), 1000)
        assert result[0] is True
        assert m.stats[0].persist_stall_cycles >= 120

    def test_i4_writeback_blocks_line(self):
        small = dataclasses.replace(CFG, l1_size_bytes=2 * 64 * 1,
                                    l1_assoc=1)
        m = machine("lrp", small)
        run_ops(m, [
            (0, store(0x0, 1)),     # only-written
            (0, load(0x80)),        # evicts it; I4 blocks the line
        ])
        assert m.fabric.blocked_until(0x0) > 0

    def test_figure4_engine_order(self):
        """The Figure 4 scenario: persisting Release(F2) must persist
        only-written X first, then Release(F1), then Release(F2)."""
        m = machine("lrp")
        line_f1, line_x, line_f2 = 0x5000, 0x6000, 0x7000
        run_ops(m, [
            (0, store(0x4000, 1)),                              # epoch 1 writes
            (0, store(line_f1, 2, MemOrder.RELEASE)),           # F1 (epoch 2)
            (0, store(line_x, 3)),                              # X (epoch 2)
            (0, store(line_f2, 4, MemOrder.RELEASE)),           # F2 (epoch 3)
        ])
        # Downgrade F2: triggers the persist engine with e_rel=3.
        m.execute(1, load(line_f2, MemOrder.ACQUIRE), 0)
        log = m.nvm.persist_log()
        completes = {r.line_addr: r.complete_time for r in log}
        assert completes[line_x] < completes[line_f1]
        assert completes[line_f1] < completes[line_f2]
        assert completes[0x4000] < completes[line_f1]

    def test_ret_watermark_triggers_background_drain(self):
        config = dataclasses.replace(CFG, ret_entries=4, ret_watermark=3)
        m = machine("lrp", config)
        ops = []
        for i in range(6):
            ops.append((0, store(0x1000 + i * 0x100, i,
                                 MemOrder.RELEASE)))
        run_ops(m, ops)
        assert m.mechanism.stats_ret_watermark_drains > 0
        assert m.mechanism.ret_occupancy(0) < 4
        assert m.stats[0].persist_stall_cycles == 0  # off critical path

    def test_epoch_wrap_drains(self):
        config = dataclasses.replace(CFG, epoch_bits=3)  # wrap at 8
        m = machine("lrp", config)
        ops = [(0, store(0x1000 + i * 0x100, i, MemOrder.RELEASE))
               for i in range(10)]
        run_ops(m, ops)
        assert m.mechanism.stats_epoch_wraps >= 1
        assert m.mechanism.current_epoch(0) <= 8

    def test_release_on_dirty_line_persists_old_content_first(self):
        m = machine("lrp")
        run_ops(m, [
            (0, store(LINE_B, 1)),                            # dirty
            (0, store(LINE_B, 2, MemOrder.RELEASE)),          # same line
        ])
        # The old only-written content was persisted; the release is
        # freshly buffered.
        assert m.nvm.persist_count == 1
        line = m.fabric.l1s[0].lookup(LINE_B)
        assert line.is_released

    def test_drain_orders_writes_before_releases(self):
        m = machine("lrp")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, store(LINE_B, 2, MemOrder.RELEASE)),
            (0, store(LINE_C, 3)),
        ])
        m.finish(10_000)
        log = m.nvm.persist_log()
        completes = {r.line_addr: r.complete_time for r in log}
        assert completes[LINE_A] < completes[LINE_B]


class TestARP:
    def test_never_stalls(self):
        m = machine("arp")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, store(LINE_B, 2, MemOrder.RELEASE)),
            (1, load(LINE_B, MemOrder.ACQUIRE)),
            (1, store(LINE_C, 3)),
        ])
        assert all(c.persist_stall_cycles == 0 for c in m.stats)

    def test_persists_word_granular_immediately(self):
        m = machine("arp")
        run_ops(m, [(0, store(LINE_A, 1))])
        assert m.nvm.persist_count == 1

    def test_arp_rule_enforced_across_sync(self):
        """W(T0) before Rel must persist before W(T1) after Acq."""
        m = machine("arp")
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, store(LINE_B, 2, MemOrder.RELEASE)),
        ])
        m.execute(1, load(LINE_B, MemOrder.ACQUIRE), 0)
        m.execute(1, store(LINE_C, 3), 5)
        log = m.nvm.persist_log()
        completes = {r.line_addr: r.complete_time for r in log}
        assert completes[LINE_A] <= completes[LINE_C]

    def test_release_may_persist_before_fields(self):
        """The Figure 1(e) weakness: same-epoch persists are unordered,
        so with a congested fields-channel the release can win."""
        config = dataclasses.replace(CFG, num_memory_controllers=2)
        m = machine("arp", config)
        # Congest the channel of LINE_A (channel = line index % 2).
        filler = [(1, store(0x4000 + i * 0x80, i)) for i in range(10)]
        run_ops(m, filler)
        run_ops(m, [
            (0, store(0x4000, 1)),                     # fields, busy channel
            (0, store(0x4040, 2, MemOrder.RELEASE)),   # release, idle one
        ])
        log = m.nvm.persist_log()
        fields = [r for r in log if r.line_addr == 0x4000]
        release = next(r for r in log if r.line_addr == 0x4040)
        assert release.complete_time < fields[-1].complete_time
