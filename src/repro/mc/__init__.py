"""Small-scope model checking of litmus programs (exhaustive DPOR).

The fuzzer (:mod:`repro.fuzz`) samples schedules; this package proves
things at litmus scope instead: :class:`DPORExplorer` enumerates every
Mazurkiewicz trace of a program exactly once via dynamic partial-order
reduction with sleep sets, and :mod:`repro.mc.judge` decides, per
persistency mechanism, whether *any* reachable crash state of *any*
execution breaks Release Persistency's consistent-cut guarantee.

``python -m repro.mc --selftest`` pins the whole construction against
brute-force enumeration and the independent Px86-derived axioms of
:mod:`repro.mc.px86`.
"""

from repro.mc.dpor import DependencyOrder, DPORExplorer, DPORStats, \
    explore_program, trace_key
from repro.mc.judge import CrashWitness, TraceJudgement, judge_trace, \
    enumerate_crash_states, materialize_persist_log
from repro.mc.programs import LitmusProgram, PROGRAMS, SUITE, get_program
from repro.mc.px86 import px86_allows, px86_write_pairs
from repro.mc.checker import DEFAULT_MECHANISMS, MechanismVerdict, \
    ProgramCheck, check_program

__all__ = [
    "DependencyOrder",
    "DPORExplorer",
    "DPORStats",
    "explore_program",
    "trace_key",
    "CrashWitness",
    "TraceJudgement",
    "judge_trace",
    "enumerate_crash_states",
    "materialize_persist_log",
    "LitmusProgram",
    "PROGRAMS",
    "SUITE",
    "get_program",
    "px86_allows",
    "px86_write_pairs",
    "DEFAULT_MECHANISMS",
    "MechanismVerdict",
    "ProgramCheck",
    "check_program",
]
