"""Deterministic smallest-clock-first scheduler.

Each hardware thread runs a generator coroutine that yields
:class:`~repro.core.thread.Op` objects. The scheduler always advances
the runnable thread with the lowest local clock — a conservative
time-ordered interleaving: memory operations perform atomically in
(simulated) timestamp order, which yields a sequentially consistent
execution whose timing reflects contention, persist stalls and cache
behaviour.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Iterable, List, Optional

from repro.core.machine import Machine
from repro.core.thread import Op, OpKind

_WORK = OpKind.WORK

WorkerGen = Generator[Op, object, None]
WorkerFactory = Callable[[int], WorkerGen]


class SimThread:
    """One hardware thread driving a workload coroutine."""

    __slots__ = ("thread_id", "gen", "clock", "done", "_pending_result",
                 "_started")

    def __init__(self, thread_id: int, gen: WorkerGen) -> None:
        self.thread_id = thread_id
        self.gen = gen
        self.clock = 0
        self.done = False
        self._pending_result: object = None
        self._started = False

    def next_op(self) -> Optional[Op]:
        """Advance the coroutine to its next yielded op (None = done)."""
        try:
            if not self._started:
                self._started = True
                return next(self.gen)
            return self.gen.send(self._pending_result)
        except StopIteration:
            self.done = True
            return None

    def deliver(self, result: object) -> None:
        self._pending_result = result


class Scheduler:
    """Runs worker coroutines on a machine until all complete."""

    def __init__(self, machine: Machine,
                 workers: Iterable[WorkerFactory]) -> None:
        self.machine = machine
        self.threads: List[SimThread] = [
            SimThread(tid, factory(tid))
            for tid, factory in enumerate(workers)
        ]
        if len(self.threads) > machine.config.num_cores:
            raise ValueError(
                f"{len(self.threads)} workers exceed "
                f"{machine.config.num_cores} cores")
        self.max_ops: Optional[int] = None   # safety valve for tests
        self._executed_ops = 0

    def run(self) -> int:
        """Execute until every thread finishes; returns the makespan."""
        compute = self.machine.config.compute_cycles_per_op
        execute = self.machine.execute
        stats = self.machine.stats
        obs = self.machine.obs
        heappop, heappush = heapq.heappop, heapq.heappush
        heap = [(t.clock, t.thread_id) for t in self.threads]
        heapq.heapify(heap)
        while heap:
            _, tid = heappop(heap)
            thread = self.threads[tid]
            if thread.done:
                continue
            op = thread.next_op()
            if op is None:
                stats[tid].cycles = thread.clock
                continue
            if self.max_ops is not None and self._executed_ops >= self.max_ops:
                raise RuntimeError(
                    f"scheduler exceeded max_ops={self.max_ops} — "
                    "possible livelock in a workload")
            result, latency = execute(tid, op, thread.clock)
            thread.deliver(result)
            if obs is not None:
                # Exact compute attribution for the critical-path
                # report: WORK latency is pure compute; memory ops
                # contribute only the fixed per-op compute charge.
                if op.kind is _WORK:
                    obs.count(f"sched.compute_cycles.c{tid}",
                              latency + compute)
                    obs.tick(f"compute.c{tid}", thread.clock,
                             latency + compute)
                else:
                    obs.count(f"sched.compute_cycles.c{tid}", compute)
                    obs.count(f"sched.mem_cycles.c{tid}", latency)
                    obs.tick(f"compute.c{tid}", thread.clock, compute)
                    obs.tick(f"mem.c{tid}", thread.clock, latency)
                obs.span(f"core{tid}", op.kind.name, thread.clock,
                         latency + compute, cat="op")
            thread.clock += latency + compute
            self._executed_ops += 1
            heappush(heap, (thread.clock, tid))
        return self.makespan()

    def makespan(self) -> int:
        """The slowest thread's final clock (run wall-time in cycles)."""
        return max((t.clock for t in self.threads), default=0)
