"""Validator sensitivity tests for BST, skip list and queue.

Each structural recovery validator must accept clean images and
pre-populated builds, and must detect seeded corruptions of the kind a
too-weak persistency model can produce (reachable-but-uninitialized
nodes, broken ordering, dangling/overtaking pointers, cycles).
"""

import pytest

from repro.lfds.bst import (
    ALIVE,
    KEY as B_KEY,
    LEFT,
    RIGHT,
    BinarySearchTree,
)
from repro.lfds.queue import NEXT as Q_NEXT, VALUE, MichaelScottQueue
from repro.lfds.skiplist import HEADER_WORDS, SkipList
from repro.lfds.base import field, mark
from repro.memory.address import HeapAllocator


def _alloc():
    return HeapAllocator(line_bytes=64)


class TestBSTValidator:
    def _tree(self, keys=(5, 2, 8, 1, 9)):
        tree = BinarySearchTree(_alloc())
        memory = {}
        tree.build_initial(keys, memory)
        return tree, memory

    def test_clean_build_passes(self):
        tree, memory = self._tree()
        report = tree.validate_image(memory)
        assert report.ok
        assert report.live_keys == {5, 2, 8, 1, 9}
        assert report.reachable_nodes == 5

    def test_empty_tree_passes(self):
        tree, memory = self._tree(keys=())
        assert tree.validate_image(memory).ok

    def test_uninitialized_child_detected(self):
        tree, memory = self._tree()
        root = memory[tree.root_ptr]
        memory[field(root, LEFT)] = 0x666000   # ghost node
        report = tree.validate_image(memory)
        assert not report.ok
        assert "never persisted" in report.problems[0]

    def test_bst_ordering_violation_detected(self):
        tree, memory = self._tree()
        root = memory[tree.root_ptr]
        left = memory[field(root, LEFT)]
        memory[field(left, B_KEY)] = 99   # > root key on the left
        report = tree.validate_image(memory)
        assert not report.ok
        assert any("ordering" in p for p in report.problems)

    def test_tombstone_not_live(self):
        tree, memory = self._tree()
        root = memory[tree.root_ptr]
        memory[field(root, ALIVE)] = 0
        report = tree.validate_image(memory)
        assert report.ok
        assert 5 not in report.live_keys

    def test_bad_alive_word_detected(self):
        tree, memory = self._tree()
        root = memory[tree.root_ptr]
        memory[field(root, ALIVE)] = 7
        assert not tree.validate_image(memory).ok

    def test_cycle_detected(self):
        tree, memory = self._tree()
        root = memory[tree.root_ptr]
        right = memory[field(root, RIGHT)]
        memory[field(right, RIGHT)] = root
        assert not tree.validate_image(memory).ok

    def test_missing_root_pointer_detected(self):
        tree, memory = self._tree()
        del memory[tree.root_ptr]
        assert not tree.validate_image(memory).ok


class TestSkipListValidator:
    def _list(self, keys=(3, 7, 11, 20)):
        skiplist = SkipList(_alloc())
        memory = {}
        skiplist.build_initial(keys, memory)
        return skiplist, memory

    def test_clean_build_passes(self):
        skiplist, memory = self._list()
        report = skiplist.validate_image(memory)
        assert report.ok
        assert report.live_keys == {3, 7, 11, 20}

    def test_empty_passes(self):
        skiplist, memory = self._list(keys=())
        assert skiplist.validate_image(memory).ok

    def test_upper_levels_form_subchains(self):
        skiplist, memory = self._list(keys=tuple(range(64)))
        assert skiplist.validate_image(memory).ok

    def test_uninitialized_node_detected(self):
        skiplist, memory = self._list()
        first = memory[skiplist._next_addr(skiplist.head, 0)]
        memory[skiplist._next_addr(skiplist.head, 0)] = 0x777000
        report = skiplist.validate_image(memory)
        assert not report.ok
        assert "never persisted" in report.problems[0]

    def test_level0_ordering_violation_detected(self):
        skiplist, memory = self._list()
        first = memory[skiplist._next_addr(skiplist.head, 0)]
        memory[field(first, 0)] = 1000   # KEY out of order
        assert not skiplist.validate_image(memory).ok

    def test_marked_node_not_live(self):
        skiplist, memory = self._list()
        first = memory[skiplist._next_addr(skiplist.head, 0)]
        link = skiplist._next_addr(first, 0)
        memory[link] = mark(memory[link])
        report = skiplist.validate_image(memory)
        assert report.ok
        assert 3 not in report.live_keys

    def test_missing_head_level_detected(self):
        skiplist, memory = self._list()
        del memory[skiplist._next_addr(skiplist.head, 2)]
        assert not skiplist.validate_image(memory).ok


class TestQueueValidator:
    def _queue(self, values=(-1, -2, -3)):
        queue = MichaelScottQueue(_alloc())
        memory = {}
        queue.build_initial(values, memory)
        return queue, memory

    def test_clean_build_passes(self):
        queue, memory = self._queue()
        report = queue.validate_image(memory)
        assert report.ok
        assert report.live_keys == {-1, -2, -3}

    def test_empty_queue_passes(self):
        queue, memory = self._queue(values=())
        assert queue.validate_image(memory).ok

    def test_uninitialized_node_detected(self):
        queue, memory = self._queue()
        head = memory[queue.head_ptr]
        memory[field(head, Q_NEXT)] = 0x888000
        report = queue.validate_image(memory)
        assert not report.ok
        assert "never persisted" in report.problems[0]

    def test_tail_overtaking_chain_detected(self):
        queue, memory = self._queue()
        memory[queue.tail_ptr] = 0x999000   # unreachable "node"
        report = queue.validate_image(memory)
        assert not report.ok
        assert any("tail" in p for p in report.problems)

    def test_missing_head_pointer_detected(self):
        queue, memory = self._queue()
        del memory[queue.head_ptr]
        assert not queue.validate_image(memory).ok

    def test_cycle_detected(self):
        queue, memory = self._queue()
        head = memory[queue.head_ptr]
        first = memory[field(head, Q_NEXT)]
        memory[field(first, Q_NEXT)] = head
        memory[queue.tail_ptr] = head
        assert not queue.validate_image(memory).ok
