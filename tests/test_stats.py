"""Unit tests for repro.common.stats."""

import pytest

from repro.common.stats import CoreStats, RunStats, merge_core_stats


def _core(core_id=0, **kwargs):
    stats = CoreStats(core_id=core_id)
    for key, value in kwargs.items():
        setattr(stats, key, value)
    return stats


class TestCoreStats:
    def test_defaults_zero(self):
        stats = CoreStats()
        assert stats.reads == 0
        assert stats.writebacks_total == 0
        assert stats.cycles == 0

    def test_critical_fraction_empty(self):
        assert CoreStats().critical_writeback_fraction == 0.0

    def test_critical_fraction(self):
        stats = _core(writebacks_total=10, writebacks_critical=4)
        assert stats.critical_writeback_fraction == 0.4


class TestRunStats:
    def _run(self, cycles_list, **core_kwargs):
        cores = [_core(i, cycles=c, **core_kwargs)
                 for i, c in enumerate(cycles_list)]
        return RunStats(mechanism="lrp", workload="hashmap",
                        num_threads=len(cores), per_core=cores)

    def test_execution_cycles_is_max(self):
        run = self._run([10, 50, 30])
        assert run.execution_cycles == 50

    def test_execution_cycles_empty(self):
        run = RunStats("lrp", "hashmap", 0, [])
        assert run.execution_cycles == 0

    def test_totals_sum(self):
        run = self._run([1, 2], persists_issued=3, ops_completed=5)
        assert run.total_persists == 6
        assert run.total_ops == 10

    def test_critical_fraction_aggregates(self):
        run = self._run([1, 1], writebacks_total=5,
                        writebacks_critical=1)
        assert run.critical_writeback_fraction == 0.2

    def test_critical_fraction_no_writebacks(self):
        assert self._run([1]).critical_writeback_fraction == 0.0

    def test_overhead_vs(self):
        fast = self._run([100])
        slow = self._run([150])
        assert slow.overhead_vs(fast) == 0.5
        assert fast.overhead_vs(fast) == 0.0

    def test_overhead_vs_zero_baseline_raises(self):
        base = RunStats("nop", "hashmap", 0, [])
        with pytest.raises(ValueError, match="zero-cycle baseline"):
            self._run([10]).overhead_vs(base)

    def test_normalized_to(self):
        fast = self._run([100])
        slow = self._run([130])
        assert abs(slow.normalized_to(fast) - 1.3) < 1e-12

    def test_normalized_to_zero_baseline_raises(self):
        base = RunStats("nop", "hashmap", 0, [])
        with pytest.raises(ValueError, match="zero-cycle baseline"):
            self._run([10]).normalized_to(base)

    def test_summary_keys(self):
        summary = self._run([10]).summary()
        for key in ("mechanism", "workload", "threads", "cycles", "ops",
                    "persists", "writebacks", "critical_wb_frac",
                    "persist_stalls"):
            assert key in summary

    def test_summary_value_types(self):
        # The summary mixes strings and numbers (the annotation says
        # Dict[str, object], not Dict[str, float]).
        summary = self._run([10]).summary()
        assert isinstance(summary["mechanism"], str)
        assert isinstance(summary["workload"], str)
        for key in ("threads", "cycles", "ops", "persists",
                    "writebacks", "critical_wb_frac", "persist_stalls"):
            assert isinstance(summary[key], (int, float)), key


class TestMerge:
    def test_merge_sums_counters_and_maxes_cycles(self):
        a = _core(0, reads=3, cycles=10, persists_issued=1)
        b = _core(1, reads=4, cycles=7, persists_issued=2)
        merged = merge_core_stats([a, b])
        assert merged.reads == 7
        assert merged.persists_issued == 3
        assert merged.cycles == 10

    def test_merge_empty(self):
        merged = merge_core_stats([])
        assert merged.reads == 0
        assert merged.cycles == 0
        assert merged.stall_reasons == {}

    def test_merge_empty_iterable_not_just_list(self):
        merged = merge_core_stats(iter(()))
        assert merged.core_id == -1
        assert merged.persist_stall_cycles == 0

    def test_merge_accepts_generator(self):
        merged = merge_core_stats(
            _core(i, reads=2, cycles=i * 5) for i in range(3))
        assert merged.reads == 6
        assert merged.cycles == 10

    def test_merge_does_not_mutate_or_alias_inputs(self):
        a = _core(0, reads=1)
        a.stall_reasons = {"barrier": 4}
        merged = merge_core_stats([a])
        merged.stall_reasons["barrier"] += 1
        assert a.reads == 1
        assert a.stall_reasons == {"barrier": 4}


class TestStallBreakdown:
    def test_breakdown_aggregates_across_cores(self):
        a = _core(0)
        a.stall_reasons = {"barrier": 100, "eviction": 5}
        b = _core(1)
        b.stall_reasons = {"barrier": 50}
        run = RunStats("sb", "hashmap", 2, [a, b])
        assert run.stall_breakdown() == {"barrier": 150, "eviction": 5}

    def test_breakdown_empty(self):
        run = RunStats("nop", "hashmap", 1, [_core(0)])
        assert run.stall_breakdown() == {}

    def test_breakdown_no_cores(self):
        run = RunStats("nop", "hashmap", 0, [])
        assert run.stall_breakdown() == {}

    def test_breakdown_matches_persist_stall_total(self):
        a = _core(0, persist_stall_cycles=105)
        a.stall_reasons = {"barrier": 100, "eviction": 5}
        b = _core(1, persist_stall_cycles=50)
        b.stall_reasons = {"barrier": 50}
        run = RunStats("sb", "hashmap", 2, [a, b])
        assert (sum(run.stall_breakdown().values())
                == run.persist_stall_cycles == 155)

    def test_merge_includes_reasons(self):
        a = _core(0)
        a.stall_reasons = {"inter-thread": 7}
        b = _core(1)
        b.stall_reasons = {"inter-thread": 3, "barrier": 1}
        merged = merge_core_stats([a, b])
        assert merged.stall_reasons == {"inter-thread": 10, "barrier": 1}
