"""The ``hashmap`` workload: Michael's lock-free hash table.

Michael [SPAA'02] builds a dynamic lock-free hash table as an array of
bucket pointers, each rooting a Harris-style sorted list. Operations
hash to a bucket and run the list algorithm there — short chains make
this the latency-sensitive end of the workload spectrum, where persist
stalls are hardest to hide.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.lfds.base import (
    LogFreeStructure,
    NULL,
    OpGen,
    RecoveryReport,
    Word,
)
from repro.lfds.harris import HarrisListOps
from repro.memory.address import WORD_BYTES, HeapAllocator


class HashMap(LogFreeStructure):
    """Lock-free hash table (Michael, SPAA'02)."""

    name = "hashmap"

    def __init__(self, allocator: HeapAllocator, num_buckets: int = 256,
                 max_chain: int = 1 << 16,
                 bucket_stride_words: int = 8) -> None:
        super().__init__(allocator)
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self._ops = HarrisListOps(allocator)
        self.num_buckets = num_buckets
        # Bucket head words are line-strided: at paper scale (tens of
        # thousands of buckets) two threads essentially never touch the
        # same bucket-array line, and the scaled-down reproduction must
        # not introduce false sharing the original doesn't have.
        self._stride = bucket_stride_words * WORD_BYTES
        self.buckets_base = allocator.alloc(
            num_buckets * bucket_stride_words, line_align=True)
        self._max_chain = max_chain

    def bucket_ptr(self, key: int) -> int:
        """Address of the bucket head word for ``key``."""
        return self.buckets_base + (key % self.num_buckets) * self._stride

    def insert(self, key: int, value: int, tid=None) -> OpGen:
        return self._ops.insert(self.bucket_ptr(key), key, value,
                                allocator=self._allocator_for(tid))

    def delete(self, key: int) -> OpGen:
        return self._ops.delete(self.bucket_ptr(key), key)

    def contains(self, key: int) -> OpGen:
        return self._ops.contains(self.bucket_ptr(key), key)

    def build_initial(self, keys: Iterable[int],
                      memory: Dict[int, Word]) -> None:
        by_bucket: Dict[int, list] = {}
        for key in keys:
            by_bucket.setdefault(key % self.num_buckets, []).append(key)
        for bucket in range(self.num_buckets):
            head_ptr = self.buckets_base + bucket * self._stride
            bucket_keys = by_bucket.get(bucket)
            if bucket_keys:
                self._ops.build_chain(head_ptr, bucket_keys, memory,
                                      value_of=lambda k: k + 1)
            else:
                memory[head_ptr] = NULL

    def validate_image(self, image: Dict[int, Word]) -> RecoveryReport:
        problems = []
        live: Set[int] = set()
        total = 0
        for bucket in range(self.num_buckets):
            head_ptr = self.buckets_base + bucket * self._stride
            bucket_problems, count, bucket_live = self._ops.walk(
                image, head_ptr, self._max_chain)
            problems.extend(f"bucket {bucket}: {p}" for p in bucket_problems)
            for key in bucket_live:
                if key % self.num_buckets != bucket:
                    problems.append(
                        f"bucket {bucket}: key {key} hashed elsewhere")
            live |= bucket_live
            total += count
        return RecoveryReport(structure=self.name, ok=not problems,
                              problems=problems, reachable_nodes=total,
                              live_keys=live)

    def collect_keys(self, memory: Dict[int, Word]) -> Set[int]:
        return self.validate_image(memory).live_keys or set()
