"""Tests for the persist-buffer mechanisms (DPO and HOPS)."""

import dataclasses

import pytest

from repro.common.params import MachineConfig
from repro.consistency.events import MemOrder
from repro.core.machine import Machine
from repro.core.recovery import exhaustive_crash_test
from repro.core.simulator import simulate
from repro.core.thread import cas, load, store
from repro.persistency.buffered import DPOMechanism, HOPSMechanism
from repro.workloads.harness import WorkloadSpec

CFG = MachineConfig(num_cores=4, num_memory_controllers=2,
                    persist_buffer_entries=8)

LINE_A, LINE_B, LINE_C = 0x1000, 0x2000, 0x3000


def machine(mech, config=CFG):
    return Machine(config, mech)


def run_ops(m, ops):
    clocks = {}
    for core, op in ops:
        now = clocks.get(core, 0)
        _, latency = m.execute(core, op, now)
        clocks[core] = now + latency
    return clocks


class TestEnqueueSemantics:
    @pytest.mark.parametrize("mech", ["dpo", "hops"])
    def test_every_write_persists_immediately(self, mech):
        m = machine(mech)
        run_ops(m, [(0, store(LINE_A, 1)), (0, store(LINE_B, 2))])
        assert m.nvm.persist_count == 2

    @pytest.mark.parametrize("mech", ["dpo", "hops"])
    def test_no_cache_metadata(self, mech):
        m = machine(mech)
        run_ops(m, [(0, store(LINE_A, 1))])
        line = m.fabric.l1s[0].lookup(LINE_A & ~63)
        assert not line.has_pending

    @pytest.mark.parametrize("mech", ["dpo", "hops"])
    def test_epoch_ordering_across_release(self, mech):
        m = machine(mech)
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, cas(LINE_B, None, LINE_A, MemOrder.RELEASE)),
        ])
        log = m.nvm.persist_log()
        addrs = [r.line_addr for r in log]
        assert addrs.index(LINE_A & ~63) < addrs.index(LINE_B & ~63)

    @pytest.mark.parametrize("mech", ["dpo", "hops"])
    def test_sw_orders_acquirer_persists(self, mech):
        m = machine(mech)
        run_ops(m, [
            (0, store(LINE_A, 1)),
            (0, store(LINE_B, 2, MemOrder.RELEASE)),
        ])
        m.execute(1, load(LINE_B, MemOrder.ACQUIRE), 0)
        m.execute(1, store(LINE_C, 3), 5)
        completes = {r.line_addr: r.complete_time
                     for r in m.nvm.persist_log()}
        assert completes[LINE_B & ~63] <= completes[LINE_C & ~63]

    def test_dpo_orders_independent_threads_globally(self):
        """DPO's documented inefficiency: unrelated threads' persists
        serialize through the single controller buffer."""
        m = machine("dpo")
        run_ops(m, [(0, store(LINE_A, 1))])
        first = m.nvm.persist_log()[0]
        m.execute(1, store(LINE_C, 3), 0)       # unrelated thread
        second = [r for r in m.nvm.persist_log()
                  if r.line_addr == (LINE_C & ~63)][0]
        assert second.complete_time > first.complete_time

    def test_hops_leaves_independent_threads_unordered(self):
        m = machine("hops")
        other_channel = LINE_C + 0x40   # maps to the second controller
        run_ops(m, [(0, store(LINE_A, 1))])
        m.execute(1, store(other_channel, 3), 0)
        records = {r.line_addr: r for r in m.nvm.persist_log()}
        # Persists with unloaded latency: no cross-thread chain.
        record = records[other_channel & ~63]
        assert record.complete_time == record.issue_time + 120


class TestBackpressure:
    def test_buffer_full_stalls(self):
        config = dataclasses.replace(CFG, persist_buffer_entries=2,
                                     num_memory_controllers=1)
        m = machine("hops", config)
        ops = [(0, store(0x1000 + i * 0x100, i)) for i in range(8)]
        run_ops(m, ops)
        assert m.stats[0].persist_stall_cycles > 0
        assert m.stats[0].stall_reasons.get("buffer-full", 0) > 0

    def test_large_buffer_no_stall(self):
        config = dataclasses.replace(CFG, persist_buffer_entries=64)
        m = machine("hops", config)
        ops = [(0, store(0x1000 + i * 0x100, i)) for i in range(8)]
        run_ops(m, ops)
        assert m.stats[0].persist_stall_cycles == 0


class TestEndToEnd:
    @pytest.mark.parametrize("mech", ["dpo", "hops"])
    def test_recovery_and_oracle(self, mech):
        spec = WorkloadSpec(structure="skiplist", num_threads=6,
                            initial_size=64, ops_per_thread=16, seed=1)
        result = simulate(spec, mechanism=mech,
                          config=MachineConfig(num_cores=8,
                                               l1_size_bytes=8 * 1024))
        result.verify_final_state()
        result.verify_durable_final_state()
        assert exhaustive_crash_test(result).all_recovered

    def test_write_through_issues_more_persists_than_lrp(self):
        spec = WorkloadSpec(structure="hashmap", num_threads=8,
                            initial_size=256, ops_per_thread=24, seed=1)
        config = MachineConfig(num_cores=8, l1_size_bytes=8 * 1024)
        hops = simulate(spec, mechanism="hops", config=config)
        lrp = simulate(spec, mechanism="lrp", config=config)
        assert hops.stats.total_persists > 1.5 * lrp.stats.total_persists

    def test_mechanism_classes_exported(self):
        from repro.persistency import MECHANISMS

        assert MECHANISMS["dpo"] is DPOMechanism
        assert MECHANISMS["hops"] is HOPSMechanism
        assert DPOMechanism.enforces_rp and HOPSMechanism.enforces_rp
