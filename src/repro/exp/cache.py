"""Content-addressed on-disk cache for experiment results.

A cache entry is keyed by a stable digest of everything that determines
a simulation's outcome: the :class:`WorkloadSpec`, the
:class:`MachineConfig`, the mechanism name, any crash-campaign
parameters, and a *code version* (digest over every ``repro`` source
file). Simulations are deterministic, so key equality implies result
equality; editing any simulator source invalidates every entry at once
(coarse, but never stale).

Keys are built from a canonical JSON rendering of the dataclasses —
no ``hash()`` involved — so they are stable across processes and
machines (Python's per-process hash randomization never leaks in).

**Shared caches.** Content addressing makes results location-
independent, so caches compose: a :class:`ResultCache` constructed
with ``shared=`` (conventionally ``$REPRO_CACHE_SHARED``, see
:func:`shared_cache_dir`) treats that directory as a second, slower
tier. Reads go local first, then shared (a shared hit is copied into
the local tier — read-through); writes land locally *and* publish to
the shared directory with the same atomic temp+rename discipline, so
any number of concurrent campaigns and CI runs can share one
directory without ever observing a torn entry.

**Hygiene.** Long-lived shared caches grow without bound; the
``python -m repro.exp cache`` CLI layers ``stats`` (entries, bytes,
hit-rate since the last ``stats`` call, accumulated from the
:meth:`ResultCache.flush_stats` sidecar) and ``prune`` (``--older-
than`` / ``--max-bytes``, dry-run by default) on the helpers here.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple


def _canonical(obj: Any) -> Any:
    """Reduce dataclasses/enums/collections to JSON-stable primitives."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: _canonical(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): _canonical(value)
                for key, value in sorted(obj.items())}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for "
                    "a cache key")


def stable_digest(obj: Any) -> str:
    """Hex digest of the canonical JSON form of ``obj``."""
    text = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


_code_version: Optional[str] = None


def code_version() -> str:
    """Digest over every ``repro`` source file (cached per process)."""
    global _code_version
    if _code_version is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        hasher = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            hasher.update(str(path.relative_to(root)).encode("utf-8"))
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
        _code_version = hasher.hexdigest()
    return _code_version


def default_cache_dir() -> Path:
    """``$REPRO_EXP_CACHE_DIR``, else ``~/.cache/repro-exp``."""
    env = os.environ.get("REPRO_EXP_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-exp"


#: Environment variable naming the shared (second-tier) cache
#: directory. Opt-in at construction: library code passes
#: ``shared=shared_cache_dir()`` explicitly, so unit tests with a
#: private temp cache are never surprised by ambient state.
ENV_SHARED = "REPRO_CACHE_SHARED"


def shared_cache_dir() -> Optional[Path]:
    """``$REPRO_CACHE_SHARED`` as a Path, or None when unset."""
    env = os.environ.get(ENV_SHARED)
    return Path(env) if env else None


def _atomic_pickle(path: Path, value: Any) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultCache:
    """Pickle-per-key store of :class:`~repro.exp.runner.RunSummary`.

    With ``shared=`` set, the shared directory acts as a read-through
    second tier: local miss -> shared read (copied into the local
    tier on hit), every write published to both atomically.
    """

    def __init__(self, root: Optional[Path] = None,
                 shared: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.shared = Path(shared) if shared is not None else None
        self.hits = 0
        self.misses = 0
        #: Hits served from the shared tier (subset of ``hits``).
        self.shared_hits = 0

    def _path(self, key: str) -> Path:
        # Two-level fanout keeps directories small under big sweeps.
        return self.root / key[:2] / f"{key}.pkl"

    def _shared_path(self, key: str) -> Path:
        assert self.shared is not None
        return self.shared / key[:2] / f"{key}.pkl"

    @staticmethod
    def _load(path: Path) -> Optional[Any]:
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            return None

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or None (corrupt entries count as misses)."""
        value = self._load(self._path(key))
        if value is None and self.shared is not None:
            value = self._load(self._shared_path(key))
            if value is not None:
                # Read-through: promote into the local tier so the
                # next lookup never leaves this process's disk.
                _atomic_pickle(self._path(key), value)
                self.shared_hits += 1
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store atomically (concurrent writers never corrupt entries).

        Publish-on-write: with a shared tier configured, the entry is
        also published there (same temp+rename discipline), making the
        result visible to every other campaign sharing the directory.
        """
        _atomic_pickle(self._path(key), value)
        if self.shared is not None:
            try:
                _atomic_pickle(self._shared_path(key), value)
            except OSError:
                # A read-only or full shared tier degrades the cache
                # to local-only; it must never fail the run.
                pass

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.exists():
            for path in self.root.rglob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entry_count(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))

    def total_bytes(self) -> int:
        """Sum of entry sizes (for the stats / prune budget)."""
        total = 0
        if self.root.exists():
            for path in self.root.rglob("*.pkl"):
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    # -- usage-stats sidecar (python -m repro.exp cache stats) ----------

    @property
    def stats_path(self) -> Path:
        return self.root / "cache-stats.jsonl"

    def flush_stats(self) -> bool:
        """Append this session's hit/miss counters to the sidecar.

        Called at the end of a runner/service session (never per
        lookup — the hot path stays file-system-quiet). The ``cache
        stats`` CLI folds the lines since its last marker into a
        hit-rate "since last stats". Returns False when there was
        nothing to record or the sidecar is unwritable.
        """
        if not (self.hits or self.misses):
            return False
        record = {"hits": self.hits, "misses": self.misses,
                  "shared_hits": self.shared_hits, "at": time.time()}
        return _append_stats_line(self.stats_path, record)


def _append_stats_line(path: Path, record: Dict[str, object]) -> bool:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True) + "\n"
        fd = os.open(str(path),
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
    except OSError:
        return False
    return True


def read_stats_since_marker(path: Path) -> Dict[str, object]:
    """Fold sidecar lines recorded after the last ``stats`` marker."""
    hits = misses = shared_hits = sessions = 0
    try:
        with open(path) as handle:
            for raw in handle:
                try:
                    record = json.loads(raw)
                except ValueError:
                    continue
                if not isinstance(record, dict):
                    continue
                if record.get("marker"):
                    hits = misses = shared_hits = sessions = 0
                    continue
                hits += int(record.get("hits", 0))
                misses += int(record.get("misses", 0))
                shared_hits += int(record.get("shared_hits", 0))
                sessions += 1
    except OSError:
        pass
    lookups = hits + misses
    return {
        "sessions": sessions,
        "hits": hits,
        "misses": misses,
        "shared_hits": shared_hits,
        "hit_rate": (hits / lookups) if lookups else None,
    }


def write_stats_marker(path: Path) -> bool:
    """Reset the "since last stats" window (appends a marker line)."""
    return _append_stats_line(path, {"marker": True, "at": time.time()})


def plan_prune(cache: ResultCache,
               older_than_seconds: Optional[float] = None,
               max_bytes: Optional[int] = None,
               now: Optional[float] = None) -> List[Tuple[Path, int]]:
    """Entries that a prune with these limits would delete.

    ``older_than_seconds`` drops entries whose mtime is older;
    ``max_bytes`` then evicts oldest-first until the cache fits the
    budget. Pure planning — nothing is unlinked here, which is what
    makes the CLI's dry-run default trustworthy.
    """
    now = time.time() if now is None else now
    entries: List[Tuple[float, Path, int]] = []
    if cache.root.exists():
        for path in cache.root.rglob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path, stat.st_size))
    entries.sort()  # oldest first
    victims: List[Tuple[Path, int]] = []
    chosen = set()
    if older_than_seconds is not None:
        cutoff = now - older_than_seconds
        for mtime, path, size in entries:
            if mtime < cutoff:
                victims.append((path, size))
                chosen.add(path)
    if max_bytes is not None:
        remaining = sum(size for _mtime, path, size in entries
                        if path not in chosen)
        for _mtime, path, size in entries:
            if remaining <= max_bytes:
                break
            if path in chosen:
                continue
            victims.append((path, size))
            chosen.add(path)
            remaining -= size
    return victims


def execute_prune(victims: List[Tuple[Path, int]]) -> Tuple[int, int]:
    """Unlink planned victims; returns (entries_removed, bytes_freed)."""
    removed = freed = 0
    for path, size in victims:
        try:
            path.unlink()
        except OSError:
            continue
        removed += 1
        freed += size
    return removed, freed
