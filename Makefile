# Developer entry points. Everything runs from the repo root with the
# src/ layout on PYTHONPATH; no install step required.
# `make help` lists the targets.

PY       := PYTHONPATH=src python
PYTEST   := $(PY) -m pytest

.PHONY: help test smoke selftest fuzz-smoke mc-smoke obsfast-smoke \
        kv-smoke svc-smoke provenance figures trace bench-report \
        profile perf-smoke clean

help:
	@echo "make test          - full tier-1 suite"
	@echo "make smoke         - fast suite (skips @slow) + provenance pins"
	@echo "make selftest      - runner + obs end-to-end self-tests"
	@echo "make fuzz-smoke    - seeded fuzzing contract campaign (<60s):"
	@echo "                     ARP/NOP must yield shrunk counterexamples,"
	@echo "                     SB/BB/LRP must come back clean"
	@echo "make mc-smoke      - exhaustive DPOR model-checker selftest:"
	@echo "                     trace classes + verdicts pinned against"
	@echo "                     brute force and the Px86 axioms, witness"
	@echo "                     replay, reduction ratio -> BENCH_mc.json"
	@echo "make obsfast-smoke - batched-engine telemetry gate: paper-"
	@echo "                     scale cell plain vs observed (ABBA"
	@echo "                     median), makespan identity, exact fast-"
	@echo "                     vs-reference reconciliation across all"
	@echo "                     7 mechanisms -> BENCH_obsfast.json"
	@echo "make kv-smoke      - KV-service SLO gate: spans-on vs spans-"
	@echo "                     off ABBA overhead, bit-identical"
	@echo "                     makespans, exact reservoir quantiles,"
	@echo "                     engine reconciliation -> BENCH_kv.json,"
	@echo "                     compared against the stored baseline"
	@echo "make svc-smoke     - experiment job-service gate: SIGKILL'd"
	@echo "                     campaign resumes byte-identically with"
	@echo "                     zero re-execution, killed-worker lease"
	@echo "                     recovery, shared-cache warm start ->"
	@echo "                     BENCH_svc.json vs the stored baseline"
	@echo "make provenance    - persist-provenance flame + diff demo"
	@echo "                     (capture/fold/diff into provenance-out/)"
	@echo "make figures       - regenerate the paper figures (quick scale)"
	@echo "make trace         - example Chrome/Perfetto trace"
	@echo "make bench-report  - benchmark dashboard vs stored baselines"
	@echo "                     (exits nonzero on regression)"
	@echo "make profile       - cProfile one figure cell on the batch"
	@echo "                     engine (top-20 by cumtime/tottime)"
	@echo "make perf-smoke    - cold fig5 cell through the batch engine,"
	@echo "                     gated vs benchmarks/baselines/ (fails on"
	@echo "                     >50% slowdown or any makespan change)"
	@echo "make clean         - remove caches and generated artifacts"

# Full tier-1 suite (what CI gates on).
test:
	$(PYTEST) -x -q

# Fast feedback loop: skip the tests marked @pytest.mark.slow
# (recovery campaigns, hypothesis property sweeps, cross-mechanism
# interleaving checks). The provenance pins (trigger taxonomy, exact
# stall reconciliation, bit-identity) always run here.
smoke:
	$(PYTEST) -q -m "not slow"
	$(PYTEST) -q tests/test_provenance.py

# End-to-end self-tests: the parallel-runner equivalence suite and the
# observability stack (bit-identity, trace export, attribution,
# provenance reconciliation, capture diff).
selftest:
	$(PY) -m repro.exp --selftest --quiet
	$(PY) -m repro.obs --selftest

# Seeded coverage-guided fuzzing campaign exercising the paper's
# Figure-1 contract end to end: the weak mechanisms (ARP, NOP) must
# produce minimized, replayable counterexamples; the RP-enforcing ones
# (SB, BB, LRP) must survive every sampled crash point. Also pins the
# campaign's bit-for-bit seed determinism and emits throughput
# (execs/sec, coverage features) to BENCH_fuzz.json.
fuzz-smoke:
	$(PY) -m repro.fuzz --selftest --quiet --bench-out BENCH_fuzz.json

# Exhaustive small-scope model checking: DPOR with sleep sets over
# the litmus suite, pinned against brute-force enumeration (identical
# trace-class sets and bit-identical per-mechanism verdicts) and the
# independent Px86-derived persist-order axioms; ARP/NOP witnesses
# must replay through the fuzzer's repro machinery. Writes the
# schedule-reduction snapshot to BENCH_mc.json.
mc-smoke:
	$(PY) -m repro.mc --selftest --quiet --bench-out BENCH_mc.json

# Telemetry gate for the batched engine: one paper-scale hashmap/lrp
# cell plain vs observed (metrics + timeline), overhead bounded at
# 15%, every makespan byte-identical, and the exact fast-vs-reference
# reconciliation matrix. Writes BENCH_obsfast.json for bench-report.
obsfast-smoke:
	$(PY) -m repro.obs fastsmoke --bench-out BENCH_obsfast.json

# Request-level service gate: the KV workload with span tracking on vs
# off (ABBA rounds, median ratio), every makespan byte-identical, the
# streaming SLO reservoirs reconciled exactly against the stored
# records, and the batch engine's span lanes reconciled against the
# reference loop. The snapshot is then compared against the committed
# baseline (p50/p99/p999 and RTO gate as latency metrics, throughput
# as quality; the makespans are exact anchors).
kv-smoke:
	$(PY) -m repro.obs kvsmoke --bench-out BENCH_kv.json
	$(PY) -m repro.bench.history --snapshots BENCH_kv.json

# Job-service crash/recovery gate: the selftest drains a small sweep
# through the persistent queue, SIGKILLs a live campaign mid-flight
# and resumes it (byte-identical aggregate, zero re-execution),
# SIGKILLs a single worker (survivors recover its lease), and warm-
# starts a second campaign from the shared cache (zero executions).
# The snapshot is compared against the committed baseline.
svc-smoke:
	$(PY) -m repro.exp.service selftest --quiet --output BENCH_svc.json
	$(PY) -m repro.bench.history --snapshots BENCH_svc.json

# Persist-provenance demo: capture BB and LRP runs of the hashmap,
# fold the LRP stalls into a flamegraph, and diff the two captures
# (the EXPERIMENTS.md "Persist provenance" walkthrough).
provenance:
	$(PY) -m repro.obs provenance provenance-out/hashmap-bb.json --mechanism bb
	$(PY) -m repro.obs provenance provenance-out/hashmap-lrp.json --mechanism lrp
	$(PY) -m repro.obs flame provenance-out/hashmap-lrp-stalls.folded \
		--from-capture provenance-out/hashmap-lrp.json
	$(PY) -m repro.obs diff \
		--captures provenance-out/hashmap-bb.json provenance-out/hashmap-lrp.json \
		--json-out provenance-out/hashmap-lrp-vs-bb.diff.json

# Regenerate the paper's evaluation figures (quick scale).
figures:
	$(PY) -m repro.bench.figures --scale quick

# Example Chrome/Perfetto trace of a small LRP run.
trace:
	$(PY) -m repro.obs trace lrp-trace.json --mechanism lrp

# cProfile one cold figure cell (hashmap/lrp, quick scale) on the
# batch engine. `--engine reference` flips to the per-op heap loop
# for before/after comparisons; captured listings live in examples/.
profile:
	$(PY) -m repro.bench.profile --top 20

# CI perf smoke: one cold fig5 cell through the batch engine, checked
# against the committed baseline. Makespans are deterministic (any
# change fails); wall time gets a generous +50% noise allowance.
perf-smoke:
	$(PY) -m repro.bench.profile --top 0 \
		--check-against benchmarks/baselines/BENCH_profile.json

# Cross-run benchmark regression dashboard: refresh the runner
# snapshot (heartbeats on, so a watcher — or the dashboard's live
# section — can follow it), compare every BENCH_*.json against
# benchmarks/baselines/, write BENCH_REPORT.md, and fail on
# regression. The --live section folds any in-flight sweep's
# heartbeats into the report.
bench-report:
	REPRO_HEARTBEAT_DIR=heartbeats $(PY) -m repro.exp --selftest --quiet --obs
	$(PY) -m repro.bench.history --output BENCH_REPORT.md --live heartbeats

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks provenance-out heartbeats
	rm -f BENCH_runner.json BENCH_obsfast.json BENCH_kv.json \
		BENCH_svc.json BENCH_REPORT.md lrp-trace.json
	find . -name __pycache__ -type d -exec rm -rf {} +
