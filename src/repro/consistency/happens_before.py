"""Construction of the RC happens-before order (paper Section 2.1).

Given an execution trace, we build the happens-before DAG from the
formal rules of the paper:

* **Release one-sided barrier**: ``M po-> Rel  =>  M hb-> Rel``
* **Acquire one-sided barrier**: ``Acq po-> M  =>  Acq hb-> M``
* **Program-order address dependency**: same-address po implies hb
* **Release synchronizes-with acquire**: an acquire that reads from a
  release of another thread is hb-after it
* **RMW atomicity**: an RMW is a single event in our traces, so its
  read and write are trivially adjacent

Because the recorded execution is a total order, every generated edge
points from a lower ``event_id`` to a higher one; the event order is a
topological order, which makes the transitive closure a single forward
sweep with integer bitsets.

The edge set is *generating*: e.g. only events since a thread's last
release get a direct edge to the next release; earlier events reach it
transitively through that previous release (any event po-before a
release is hb-before it — including earlier releases).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.consistency.events import MemoryEvent, Trace


class HappensBefore:
    """The happens-before partial order of one execution.

    Two closure modes:

    * ``mode="rc"`` (default) — the full RC happens-before of
      Section 2.1, over all memory events.
    * ``mode="rp"`` — the closure of exactly the five RP rules of
      Section 4.1, which only involve write effects and acquires as
      transitive connectors. Notably, a *plain or acquire read* of a
      thread's own earlier write creates no RP edge (the RP
      same-address rule is write-to-write), so e.g. re-reading one's
      own release does not order later writes after it — matching what
      the LRP hardware enforces.
    """

    def __init__(self, events: Sequence[MemoryEvent],
                 max_events: int = 200_000, mode: str = "rc") -> None:
        if len(events) > max_events:
            raise ValueError(
                f"trace too large for closure ({len(events)} events; "
                f"limit {max_events}) — use a scaled-down run for checking")
        if mode not in ("rc", "rp"):
            raise ValueError(f"unknown happens-before mode {mode!r}")
        self._events = list(events)
        self._mode = mode
        self._edges: List[Set[int]] = [set() for _ in events]  # predecessors
        self._build_edges()
        self._closure: Optional[List[int]] = None

    @classmethod
    def from_trace(cls, trace: Trace, **kwargs) -> "HappensBefore":
        return cls(trace.events, **kwargs)

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def events(self) -> List[MemoryEvent]:
        return self._events

    def _build_edges(self) -> None:
        since_last_release: Dict[int, List[int]] = {}
        last_release: Dict[int, int] = {}
        last_acquire: Dict[int, int] = {}
        last_same_addr: Dict[Tuple[int, int], int] = {}
        rp = self._mode == "rp"

        for event in self._events:
            eid = event.event_id
            tid = event.thread_id
            preds = self._edges[eid]

            # In RP mode, plain reads are invisible to the persist
            # order: they neither persist nor connect rules.
            participates = (not rp or event.is_write_effect
                            or event.is_acquire)

            # Program-order address dependency. RC: all same-address
            # accesses chain; RP: write-to-write only (Section 4.1).
            addr_key = (tid, event.addr)
            if rp:
                if event.is_write_effect:
                    if addr_key in last_same_addr:
                        preds.add(last_same_addr[addr_key])
                    last_same_addr[addr_key] = eid
            else:
                if addr_key in last_same_addr:
                    preds.add(last_same_addr[addr_key])
                last_same_addr[addr_key] = eid

            # Acquire one-sided barrier: hb-after the latest acquire.
            if participates and tid in last_acquire \
                    and last_acquire[tid] != eid:
                preds.add(last_acquire[tid])

            # Release synchronizes-with acquire.
            if event.is_acquire and event.reads_from is not None:
                source = self._events[event.reads_from]
                if source.is_release and source.thread_id != tid:
                    preds.add(source.event_id)

            # Release one-sided barrier: everything since (and
            # including) the previous release is hb-before this release.
            if event.is_release:
                for prior in since_last_release.get(tid, ()):
                    preds.add(prior)
                if tid in last_release:
                    preds.add(last_release[tid])
                last_release[tid] = eid
                since_last_release[tid] = []
            elif participates:
                since_last_release.setdefault(tid, []).append(eid)

            if event.is_acquire:
                last_acquire[tid] = eid

            preds.discard(eid)

    # ------------------------------------------------------------------
    # Closure and queries
    # ------------------------------------------------------------------

    def _compute_closure(self) -> List[int]:
        """Per-event bitset of all hb-predecessors (transitive)."""
        closure = [0] * len(self._events)
        for eid in range(len(self._events)):
            acc = 0
            for pred in self._edges[eid]:
                acc |= closure[pred] | (1 << pred)
            closure[eid] = acc
        return closure

    @property
    def closure(self) -> List[int]:
        if self._closure is None:
            self._closure = self._compute_closure()
        return self._closure

    def ordered(self, first: int, second: int) -> bool:
        """True iff event ``first`` happens-before event ``second``."""
        if not (0 <= first < len(self._events)
                and 0 <= second < len(self._events)):
            raise IndexError("event id out of range")
        if first == second:
            return False
        return bool(self.closure[second] >> first & 1)

    def direct_predecessors(self, eid: int) -> Set[int]:
        """Generating-edge predecessors of event ``eid``."""
        return set(self._edges[eid])

    def predecessors(self, eid: int) -> Set[int]:
        """All transitive hb-predecessors of event ``eid``."""
        bits = self.closure[eid]
        preds: Set[int] = set()
        index = 0
        while bits:
            if bits & 1:
                preds.add(index)
            bits >>= 1
            index += 1
        return preds

    def write_pairs(self) -> Iterable[Tuple[MemoryEvent, MemoryEvent]]:
        """All hb-ordered pairs of write-effect events (W1 hb-> W2).

        This is the exact set of pairs Release Persistency constrains
        (Section 4.1): ``W1 hb-> W2  =>  W1 p-> W2``.
        """
        writes = [e for e in self._events if e.is_write_effect]
        for later in writes:
            later_preds = self.closure[later.event_id]
            for earlier in writes:
                if earlier.event_id >= later.event_id:
                    break
                if later_preds >> earlier.event_id & 1:
                    yield earlier, later

    def validate_read_values(self) -> List[str]:
        """Check the read-value axiom over the trace (sanity check).

        Returns a list of violation descriptions (empty = consistent).
        Our scheduler produces SC executions, so this should always be
        empty; it guards the simulator itself.
        """
        problems: List[str] = []
        for event in self._events:
            if not event.is_read_effect:
                continue
            if event.reads_from is None:
                continue  # read of an initial / uninitialized value
            source = self._events[event.reads_from]
            if source.value != event.read_value:
                problems.append(
                    f"event {event.event_id} read {event.read_value!r} but "
                    f"its reads-from source {source.event_id} wrote "
                    f"{source.value!r}")
        return problems
