#!/usr/bin/env python3
"""Quickstart: run a log-free hash map under Lazy Release Persistency.

Simulates 8 hardware threads hammering a lock-free hash table with a
1:1 insert:delete mix on a 64-core machine with PCM-like NVM, then:

* verifies the final structure against the linearizability oracle,
* crashes the machine at 20 random persist-log points and shows that
  the structure null-recovers from every one of them.

Run:  python examples/quickstart.py
"""

from repro import WorkloadSpec, simulate, crash_test


def main() -> None:
    spec = WorkloadSpec(
        structure="hashmap",
        num_threads=8,
        initial_size=1024,
        ops_per_thread=32,
        seed=42,
    )

    print(f"Simulating {spec.structure} with {spec.num_threads} threads "
          f"({spec.ops_per_thread} ops each) under LRP ...")
    result = simulate(spec, mechanism="lrp")

    stats = result.stats
    print(f"  execution time : {stats.execution_cycles:,} cycles")
    print(f"  operations     : {stats.total_ops}")
    print(f"  line persists  : {stats.total_persists}")
    print(f"  critical writebacks: {stats.critical_writebacks} / "
          f"{stats.total_writebacks} "
          f"({stats.critical_writeback_fraction:.0%})")
    print(f"  persist stalls : {stats.persist_stall_cycles:,} cycles")

    result.verify_final_state()
    print("final state matches the linearizability oracle ✓")

    campaign = crash_test(result, num_points=20)
    print(campaign.summary())
    if campaign.all_recovered:
        print("every crash point left a consistent, null-recoverable "
              "structure in NVM ✓")


if __name__ == "__main__":
    main()
