"""Differential run comparison over provenance captures.

Aligns two captures of the **same workload and seed** run under
different persistency mechanisms (e.g. LRP vs BB) and explains their
gap causally — the machine-readable version of "why is this bar in
Fig. 5 shorter":

* **persists avoided vs moved** — per-site persist counts compared:
  a site where the base mechanism persisted more lines *avoided*
  persists under the other; a site with more is where persists *moved*
  (e.g. barrier-triggered flushes becoming lazy eviction writebacks);
* **per-site stall-cycle deltas** — who stopped (or started) paying;
* **first divergence** — the first position at which the two ordered
  ``(site, trigger)`` persist streams disagree, i.e. the earliest
  causal difference between the runs.

A *capture* is a plain dict (JSON-able): workload identity + headline
stats + the serialized provenance dump. :func:`make_capture` builds one
from a :class:`~repro.exp.runner.RunSummary` whose job was run with
``collect_provenance``; :func:`dump_summary_provenance` writes them in
bulk for ``--provenance-out``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.provenance import persist_entries, site_stall_cycles

#: Keys that must match for two captures to be comparable.
IDENTITY_KEYS = ("workload", "seed", "threads", "initial_size",
                 "ops_per_thread")


def make_capture(summary) -> Dict[str, object]:
    """Distil a provenance-carrying :class:`RunSummary` into a capture."""
    obs = getattr(summary, "obs", None)
    if not obs or "provenance" not in obs:
        raise ValueError(
            f"summary for {summary.mechanism} carries no provenance "
            "(run the job with collect_provenance)")
    return {
        "workload": summary.spec.structure,
        "seed": summary.spec.seed,
        "threads": summary.spec.num_threads,
        "initial_size": summary.spec.initial_size,
        "ops_per_thread": summary.spec.ops_per_thread,
        "mechanism": summary.mechanism,
        "makespan": summary.makespan,
        "persist_stall_cycles": summary.stats.persist_stall_cycles,
        "persist_count": summary.persist_count,
        "provenance": obs["provenance"],
    }


def write_capture(capture: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(capture, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_capture(path: str) -> Dict[str, object]:
    with open(path) as handle:
        capture = json.load(handle)
    if "provenance" not in capture:
        raise ValueError(f"{path}: not a provenance capture "
                         "(missing 'provenance' key)")
    return capture


def dump_summary_provenance(summaries: Iterable, out_dir: str) -> List[str]:
    """Write one capture file per provenance-carrying run summary.

    Summaries without provenance (obs disabled, or collected without
    ``collect_provenance``) are skipped. Returns the paths written,
    named ``<structure>-<mechanism>-t<threads>-<nvm_mode>.json`` (the
    same scheme as the Chrome-trace dumps).
    """
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    for summary in summaries:
        obs = getattr(summary, "obs", None)
        if not obs or "provenance" not in obs:
            continue
        mode = getattr(summary.config.nvm_mode, "value",
                       summary.config.nvm_mode)
        path = os.path.join(
            out_dir,
            f"{summary.spec.structure}-{summary.mechanism}"
            f"-t{summary.spec.num_threads}-{mode}.json")
        write_capture(make_capture(summary), path)
        written.append(path)
    return written


# ----------------------------------------------------------------------
# The diff
# ----------------------------------------------------------------------

def _site_persists(capture: Dict[str, object]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for entry in persist_entries(capture["provenance"]):
        counts[entry["site"]] = counts.get(entry["site"], 0) + 1
    return counts


def _stream(capture: Dict[str, object]) -> List[Tuple[str, str]]:
    """The ordered (site, trigger) persist stream of a capture."""
    return [(e["site"], e["trigger"])
            for e in persist_entries(capture["provenance"])]


def diff_captures(base: Dict[str, object],
                  other: Dict[str, object]) -> Dict[str, object]:
    """Compare two captures of the same workload/seed.

    Orientation: ``base`` is the reference (e.g. BB) and ``other`` the
    mechanism being explained (e.g. LRP) — "avoided" counts persists
    the base performed at a site beyond what the other did there.
    """
    mismatched = [
        key for key in IDENTITY_KEYS
        if base.get(key) != other.get(key)
    ]
    if mismatched:
        detail = ", ".join(
            f"{key}: {base.get(key)!r} vs {other.get(key)!r}"
            for key in mismatched)
        raise ValueError(
            f"captures are not comparable (different {detail}); a diff "
            "needs the same workload and seed under two mechanisms")

    base_sites = _site_persists(base)
    other_sites = _site_persists(other)
    per_site: List[Dict[str, object]] = []
    avoided = moved = 0
    for site in sorted(set(base_sites) | set(other_sites)):
        b, o = base_sites.get(site, 0), other_sites.get(site, 0)
        avoided += max(0, b - o)
        moved += max(0, o - b)
        if b != o:
            per_site.append({"site": site, "base": b, "other": o,
                             "delta": o - b})
    per_site.sort(key=lambda row: (-abs(row["delta"]), row["site"]))

    base_stalls = site_stall_cycles(base["provenance"])
    other_stalls = site_stall_cycles(other["provenance"])
    stall_deltas: List[Dict[str, object]] = []
    for site in sorted(set(base_stalls) | set(other_stalls)):
        b, o = base_stalls.get(site, 0), other_stalls.get(site, 0)
        if b != o:
            stall_deltas.append({"site": site, "base": b, "other": o,
                                 "delta": o - b})
    stall_deltas.sort(key=lambda row: (-abs(row["delta"]), row["site"]))

    base_stream, other_stream = _stream(base), _stream(other)
    divergence: Optional[Dict[str, object]] = None
    for index, (b, o) in enumerate(zip(base_stream, other_stream)):
        if b != o:
            divergence = {
                "index": index,
                "base": {"site": b[0], "trigger": b[1]},
                "other": {"site": o[0], "trigger": o[1]},
            }
            break
    else:
        if len(base_stream) != len(other_stream):
            index = min(len(base_stream), len(other_stream))
            longer = base_stream if len(base_stream) > len(other_stream) \
                else other_stream
            which = "base" if longer is base_stream else "other"
            divergence = {
                "index": index,
                which: {"site": longer[index][0],
                        "trigger": longer[index][1]},
            }

    return {
        "workload": base["workload"],
        "seed": base["seed"],
        "threads": base["threads"],
        "base_mechanism": base["mechanism"],
        "other_mechanism": other["mechanism"],
        "makespan": {"base": base["makespan"],
                     "other": other["makespan"],
                     "delta": other["makespan"] - base["makespan"]},
        "persist_stall_cycles": {
            "base": base["persist_stall_cycles"],
            "other": other["persist_stall_cycles"],
            "delta": (other["persist_stall_cycles"]
                      - base["persist_stall_cycles"]),
        },
        "persists": {"base": len(base_stream),
                     "other": len(other_stream),
                     "avoided": avoided, "moved": moved},
        "per_site_persists": per_site,
        "per_site_stall_cycles": stall_deltas,
        "first_divergence": divergence,
    }


def render_diff(diff: Dict[str, object], limit: int = 12) -> str:
    """Human-readable report of a capture diff."""
    base = diff["base_mechanism"]
    other = diff["other_mechanism"]
    lines = [
        f"workload {diff['workload']} seed {diff['seed']} "
        f"t{diff['threads']}: {other} vs {base} (base)",
        "makespan      {base:>10} -> {other:>10}  ({delta:+})".format(
            **diff["makespan"]),
        "persist stall {base:>10} -> {other:>10}  ({delta:+})".format(
            **diff["persist_stall_cycles"]),
        "persists      {base:>10} -> {other:>10}  "
        "(avoided {avoided}, moved {moved})".format(**diff["persists"]),
    ]
    div = diff["first_divergence"]
    if div is None:
        lines.append("persist streams identical (no divergence)")
    else:
        at = [f"first divergence at persist #{div['index']}:"]
        for which, label in (("base", base), ("other", other)):
            entry = div.get(which)
            if entry is not None:
                at.append(f"  {label}: {entry['site']} "
                          f"[{entry['trigger']}]")
            else:
                at.append(f"  {label}: (stream ended)")
        lines.extend(at)
    for title, key, unit in (
            ("per-site persist deltas", "per_site_persists", ""),
            ("per-site stall-cycle deltas", "per_site_stall_cycles",
             " cycles")):
        rows = diff[key]
        if not rows:
            continue
        lines.append(f"{title} ({other} - {base}):")
        for row in rows[:limit]:
            lines.append(
                f"  {row['delta']:>+8}{unit}  {row['site']} "
                f"({row['base']} -> {row['other']})")
        if len(rows) > limit:
            lines.append(f"  ... {len(rows) - limit} more sites")
    return "\n".join(lines)
