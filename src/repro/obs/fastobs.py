"""Batched telemetry accumulator for the batch engine (fast path).

The reference scheduler loop narrates every memory operation straight
into the :class:`~repro.obs.Observer` — two dict upserts per op for
the ``sched.*`` counters plus two timeline ticks, and a handful more
per coherence miss. That per-op dispatch is exactly what the batch
engine (:mod:`repro.core.fastsim`) exists to avoid, which is why it
historically refused to run with any observer attached — going dark at
the paper-scale runs where telemetry matters most.

:class:`FastObs` closes that gap. It is a flat-table accumulator the
fused closures write into with plain list index arithmetic — no
per-op name hashing, no dict churn, no method dispatch (plain lists
beat ``array('q')`` here: small-int list stores skip the box/unbox
round-trip a typed array pays on every ``+= 1``):

* per-core op/cycle tallies for the scheduler's ``sched.*`` counters
  and the ``compute.c<i>`` / ``mem.c<i>`` timeline streams (kept as a
  current-window register per core, flushed to a list only when the
  window advances);
* one flat list of slots for the coherence/fabric counters the
  layered observed path emits per miss/upgrade (``dir.*``, ``noc.*``,
  ``l1.fills``, ``coh.*``);
* value->count tables for the two histograms on the miss path
  (``l1.set_occupancy`` indexed by occupancy, ``dir.block_wait`` as a
  sparse dict — block waits are rare);
* sparse window dicts for the rare ``coh.downgrades`` /
  ``coh.evictions`` timeline ticks.

:meth:`FastObs.flush` folds everything into the attached Observer
**additively** (counters add, histograms fold observation-for-
observation, timeline windows add), so emissions other components made
directly — mechanisms, the NoC/directory on the layered fallback path
— are preserved, and the final ``Observer.export()`` is
counter-for-counter, window-for-window identical to a reference-loop
run. The obs-selftest and tests/test_fastobs.py pin that equality
across the full mechanism matrix.

Everything else the reference path observes (persist taxonomy, stall
reasons, persist-queue depth gauges, RET occupancy, per-channel NVM
line counts, ``bb.*``/``lrp.*`` engine counters) is emitted by the
mechanisms and the NVM controller themselves, which stay attached to
the Observer on the fast path — those streams need no batching here
because they fire per *persist event*, not per op.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.metrics import Histogram

# Slot indices into FastObs.coh — one per counter the fused
# miss/upgrade closures bump. Order is mirrored by SLOT_NAMES.
SLOT_DIR_MISSES = 0
SLOT_DIR_UPGRADES = 1
SLOT_DIR_BLOCK_WAIT_CYCLES = 2
SLOT_NOC_MSGS = 3
SLOT_NOC_HOPS = 4
SLOT_L1_FILLS = 5
SLOT_COH_DOWNGRADES = 6
SLOT_COH_DOWNGRADES_DIRTY = 7
SLOT_COH_EVICTIONS = 8
SLOT_COH_EVICTIONS_DIRTY = 9
SLOT_COH_INVALIDATIONS = 10
#: Auxiliary tally (no counter of its own): upgrades that invalidated
#: at least one sharer, needed to derive their extra inv/ack message.
SLOT_AUX_UPGRADE_INV = 11
NUM_SLOTS = 12

#: Counter names for the first len(SLOT_NAMES) slots; slots past the
#: end are auxiliary tallies folded into derived counters at flush.
SLOT_NAMES = (
    "dir.misses",
    "dir.upgrades",
    "dir.block_wait_cycles",
    "noc.msgs",
    "noc.hops",
    "l1.fills",
    "coh.downgrades",
    "coh.downgrades_dirty",
    "coh.evictions",
    "coh.evictions_dirty",
    "coh.invalidations",
)


def fold_histogram(hist: Histogram, pairs) -> None:
    """Fold ``(value, count)`` pairs into ``hist``.

    Exactly equivalent to calling ``hist.observe(value)`` ``count``
    times — including min/max/total tracking and the ``clamped``
    tally for negative values — so batched accumulation cannot be
    told apart from streaming observation in the export.
    """
    for value, count in pairs:
        if not count:
            continue
        hist.count += count
        hist.total += value * count
        if hist.min is None or value < hist.min:
            hist.min = value
        if hist.max is None or value > hist.max:
            hist.max = value
        if value < 0:
            hist.clamped += count
        bucket = max(0, int(value) - 1).bit_length() if value > 1 else 0
        hist.buckets[bucket] = hist.buckets.get(bucket, 0) + count


class FastObs:
    """Flat-array telemetry tables for one batch-engine run."""

    __slots__ = (
        "observer", "interval", "num_cores",
        "ops", "mem_ops", "compute_cycles", "mem_cycles",
        "work_ops", "work_latency",
        "seg_ops0", "seg_work0", "seg_latency0", "seg_clock0",
        "coh", "occupancy", "block_wait",
        "tl_compute_window", "tl_compute_acc", "tl_compute_nb",
        "tl_mem_window", "tl_mem_acc",
        "tl_compute_out", "tl_mem_out",
        "tl_downgrades", "tl_evictions",
        "flushed",
    )

    def __init__(self, observer, num_cores: int, assoc: int) -> None:
        self.observer = observer
        timeline = observer.timeline
        # 0 disables window accumulation everywhere (`if interval:`).
        self.interval = timeline.interval if timeline is not None else 0
        self.num_cores = num_cores
        # Scheduler accounting: cycle totals plus op counts. The op
        # counts decide counter *existence* — the reference loop
        # creates sched.compute_cycles.c<i> on the first op even when
        # the compute charge is 0, and sched.mem_cycles.c<i> on the
        # first memory op, so a zero-valued counter must still appear.
        self.ops = [0] * num_cores
        self.mem_ops = [0] * num_cores
        self.compute_cycles = [0] * num_cores
        self.mem_cycles = [0] * num_cores
        # WORK-op tallies (count and summed latency) — WORK is the
        # only op kind with a non-uniform compute charge, so these two
        # plus the total op count fully determine a thread's cycle
        # split: cc = work_latency + ops * compute_cycles_per_op and
        # mc = clock_delta - cc. The engine fills compute_cycles /
        # mem_cycles from exactly that identity at run end.
        self.work_ops = [0] * num_cores
        self.work_latency = [0] * num_cores
        # Open-segment baselines for the timeline mode: a *segment* is
        # a run of consecutive quanta of one thread that all fit in
        # the compute register's current window. The engine closes a
        # segment (attributing its cycle charges to that window in one
        # step) only when a boundary-straddling quantum begins or the
        # run ends; these snapshots of ops / work_ops / work_latency /
        # thread clock mark where the open segment started.
        self.seg_ops0 = [0] * num_cores
        self.seg_work0 = [0] * num_cores
        self.seg_latency0 = [0] * num_cores
        self.seg_clock0 = [0] * num_cores
        # Coherence-path counter slots (see SLOT_* above).
        self.coh = [0] * NUM_SLOTS
        # l1.set_occupancy values are post-fill set sizes in [1, assoc].
        self.occupancy = [0] * (assoc + 1)
        self.block_wait: Dict[int, int] = {}
        # Timeline registers: windows are monotone per core (a thread's
        # clock never decreases), so one (window, accumulator) register
        # per stream suffices; it spills to the out list on advance.
        self.tl_compute_window = [-1] * num_cores
        self.tl_compute_acc = [0] * num_cores
        # Next window boundary of the compute register, i.e.
        # (tl_compute_window + 1) * interval (0 while no window yet):
        # one compare against it classifies a whole quantum without
        # any division.
        self.tl_compute_nb = [0] * num_cores
        self.tl_mem_window = [-1] * num_cores
        self.tl_mem_acc = [0] * num_cores
        self.tl_compute_out: List[List[Tuple[int, int]]] = [
            [] for _ in range(num_cores)]
        self.tl_mem_out: List[List[Tuple[int, int]]] = [
            [] for _ in range(num_cores)]
        self.tl_downgrades: Dict[int, int] = {}
        self.tl_evictions: Dict[int, int] = {}
        self.flushed = False

    # ------------------------------------------------------------------
    # Flush: fold the tables into the Observer, additively
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Merge all accumulated telemetry into the Observer.

        Idempotence guard included so a defensive second call cannot
        double-count; every merge is ``+=`` so emissions other
        components wrote directly to the Observer are preserved.
        """
        if self.flushed:
            return
        self.flushed = True
        metrics = self.observer.metrics
        counters = metrics.counters
        if self.interval:
            # With a timeline attached the engine skips the cycle
            # accumulators: every op's charge lands in exactly one
            # window, so the counter totals ARE the window sums. Spill
            # the live registers first, then recover the totals.
            for core in range(self.num_cores):
                if self.tl_compute_window[core] >= 0:
                    self.tl_compute_out[core].append(
                        (self.tl_compute_window[core],
                         self.tl_compute_acc[core]))
                    self.tl_compute_window[core] = -1
                if self.tl_mem_window[core] >= 0:
                    self.tl_mem_out[core].append(
                        (self.tl_mem_window[core], self.tl_mem_acc[core]))
                    self.tl_mem_window[core] = -1
                self.compute_cycles[core] = sum(
                    value for _, value in self.tl_compute_out[core])
                self.mem_cycles[core] = sum(
                    value for _, value in self.tl_mem_out[core])
        for core in range(self.num_cores):
            if self.ops[core]:
                name = f"sched.compute_cycles.c{core}"
                counters[name] = (counters.get(name, 0)
                                  + self.compute_cycles[core])
            if self.mem_ops[core]:
                name = f"sched.mem_cycles.c{core}"
                counters[name] = (counters.get(name, 0)
                                  + self.mem_cycles[core])
        coh = self.coh
        # Fixed-ratio derivations (see Machine.make_fast_path): the
        # observed layered path sends 2 messages for the doubled
        # requester->home leg of a miss plus the forwarding legs (2) or
        # the home->requester response (1), 2 for an upgrade plus 1 for
        # its inv/ack when sharers were invalidated — and fills exactly
        # one line per miss.
        misses = coh[SLOT_DIR_MISSES]
        coh[SLOT_L1_FILLS] += misses
        coh[SLOT_NOC_MSGS] += (3 * misses + coh[SLOT_COH_DOWNGRADES]
                               + 2 * coh[SLOT_DIR_UPGRADES]
                               + coh[SLOT_AUX_UPGRADE_INV])
        for slot, name in enumerate(SLOT_NAMES):
            # Every coherence event contributes >= 1, so a zero slot
            # means "never happened" — the reference path would not
            # have created the counter either.
            value = coh[slot]
            if value:
                counters[name] = counters.get(name, 0) + value
        if any(self.occupancy):
            hist = metrics.histograms.get("l1.set_occupancy")
            if hist is None:
                hist = metrics.histograms["l1.set_occupancy"] = Histogram()
            fold_histogram(hist, enumerate(self.occupancy))
        if self.block_wait:
            hist = metrics.histograms.get("dir.block_wait")
            if hist is None:
                hist = metrics.histograms["dir.block_wait"] = Histogram()
            fold_histogram(hist, sorted(self.block_wait.items()))

        timeline = self.observer.timeline
        if timeline is None:
            return
        series_map = timeline.series
        for core in range(self.num_cores):
            # Spill the live registers, then fold the out lists.
            if self.tl_compute_window[core] >= 0:
                self.tl_compute_out[core].append(
                    (self.tl_compute_window[core],
                     self.tl_compute_acc[core]))
                self.tl_compute_window[core] = -1
            if self.tl_mem_window[core] >= 0:
                self.tl_mem_out[core].append(
                    (self.tl_mem_window[core], self.tl_mem_acc[core]))
                self.tl_mem_window[core] = -1
            for name, out in ((f"compute.c{core}", self.tl_compute_out[core]),
                              (f"mem.c{core}", self.tl_mem_out[core])):
                if not out:
                    continue
                series = series_map.get(name)
                if series is None:
                    series = series_map[name] = {}
                for window, value in out:
                    series[window] = series.get(window, 0) + value
                del out[:]
        for name, windows in (("coh.downgrades", self.tl_downgrades),
                              ("coh.evictions", self.tl_evictions)):
            if not windows:
                continue
            series = series_map.get(name)
            if series is None:
                series = series_map[name] = {}
            for window, value in windows.items():
                series[window] = series.get(window, 0) + value
            windows.clear()
