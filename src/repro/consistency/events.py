"""Memory events and execution traces.

Every memory operation executed on the simulated machine is recorded as
a :class:`MemoryEvent`. The trace is a *total* order (the scheduler
interleaves threads atomically per memory operation, which yields a
sequentially consistent — hence RC-legal — execution, mirroring the
paper's use of a TSO host simulator, Section 6.3).

Events carry C++11-style ordering annotations (:class:`MemOrder`); the
happens-before construction of :mod:`repro.consistency.happens_before`
and the persistency mechanisms both key off these annotations.

Keeping the full event list is optional (``Trace(record=False)``,
driven by ``MachineConfig.record_trace``): figure runs only need the
aggregate statistics and the NVM persist log, so they skip the
per-event storage. Event ids, architectural memory, reads-from edges
and synchronizes-with metadata are maintained identically either way —
only the retained ``events`` list differs.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

Word = Optional[int]


class MemOrder(enum.Enum):
    """Ordering annotation of a memory operation."""

    PLAIN = "plain"
    ACQUIRE = "acquire"
    RELEASE = "release"
    ACQ_REL = "acq_rel"

    @property
    def has_acquire(self) -> bool:
        return self in (MemOrder.ACQUIRE, MemOrder.ACQ_REL)

    @property
    def has_release(self) -> bool:
        return self in (MemOrder.RELEASE, MemOrder.ACQ_REL)


class EventKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    RMW = "rmw"  # compare-and-swap / fetch-op (read + conditional write)


# Hot-path aliases (enum member access goes through the metaclass).
_READ_EVENT = EventKind.READ
_WRITE_EVENT = EventKind.WRITE
_RMW_EVENT = EventKind.RMW
_RELEASE = MemOrder.RELEASE
_ACQ_REL = MemOrder.ACQ_REL


class MemoryEvent:
    """One executed memory operation.

    ``event_id`` is the position in the global execution order.
    For an RMW, ``success`` records whether the write part performed
    (a failed CAS degenerates to an acquire/plain read).

    ``source_thread``/``source_release`` describe the write this event
    reads from (thread that performed it, and whether it was a
    release), captured at record time so synchronizes-with edges can be
    resolved without the retained event list.

    A plain __slots__ class (one event per memory operation at bench
    scale — dataclass construction overhead is measurable here).
    """

    __slots__ = ("event_id", "thread_id", "kind", "order", "addr",
                 "value", "read_value", "reads_from", "success",
                 "source_thread", "source_release")

    def __init__(self, event_id: int, thread_id: int, kind: EventKind,
                 order: MemOrder, addr: int,
                 value: Word = None,          # written (WRITE / good RMW)
                 read_value: Word = None,     # observed (READ / RMW)
                 reads_from: Optional[int] = None,  # write's event_id
                 success: bool = True,        # False only for failed RMW
                 source_thread: Optional[int] = None,  # observed writer
                 source_release: bool = False  # that write was a release
                 ) -> None:
        self.event_id = event_id
        self.thread_id = thread_id
        self.kind = kind
        self.order = order
        self.addr = addr
        self.value = value
        self.read_value = read_value
        self.reads_from = reads_from
        self.success = success
        self.source_thread = source_thread
        self.source_release = source_release

    def _key(self):
        return (self.event_id, self.thread_id, self.kind, self.order,
                self.addr, self.value, self.read_value, self.reads_from,
                self.success, self.source_thread, self.source_release)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not MemoryEvent:
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"MemoryEvent(event_id={self.event_id}, "
                f"thread_id={self.thread_id}, kind={self.kind!r}, "
                f"order={self.order!r}, addr={self.addr:#x}, "
                f"value={self.value!r}, read_value={self.read_value!r}, "
                f"success={self.success})")

    @property
    def is_write_effect(self) -> bool:
        """True if this event wrote a value to memory."""
        if self.kind is EventKind.WRITE:
            return True
        return self.kind is EventKind.RMW and self.success

    @property
    def is_read_effect(self) -> bool:
        """True if this event observed a value from memory."""
        return self.kind in (EventKind.READ, EventKind.RMW)

    @property
    def is_release(self) -> bool:
        """A release write or successful release-RMW (paper notation Rel)."""
        return self.is_write_effect and self.order.has_release

    @property
    def is_acquire(self) -> bool:
        """An acquire read or acquire-RMW (paper notation Acq)."""
        return self.is_read_effect and self.order.has_acquire


class Trace:
    """Recorder for the global execution order of memory events.

    Maintains the architectural memory (word -> value) and the
    last-writer map used to derive reads-from edges. With
    ``record=False`` the per-event list is not retained (event ids and
    architectural state still advance identically).
    """

    def __init__(self, record: bool = True) -> None:
        self.record = record
        self._events: List[MemoryEvent] = []
        self._count = 0
        self._memory: Dict[int, Word] = {}
        self._last_writer: Dict[int, int] = {}
        # word addr -> (writer thread, writer was a release); mirrors
        # _last_writer so sync sources resolve without the event list.
        self._writer_meta: Dict[int, Tuple[int, bool]] = {}
        self._initial: Dict[int, Word] = {}

    def __len__(self) -> int:
        return self._count

    @property
    def events(self) -> List[MemoryEvent]:
        """The retained event list (requires ``record=True``)."""
        if not self.record and self._count:
            raise RuntimeError(
                "trace recording is disabled (MachineConfig.record_trace"
                "=False): the event list was not retained")
        return self._events

    def initialize(self, values: Dict[int, Word], *,
                   share: bool = False) -> None:
        """Install initial memory values (no events are recorded).

        With ``share`` the caller promises never to mutate ``values``
        again: the trace adopts the dict as its (read-only) initial
        image directly, paying only the one copy into the mutable
        architectural memory. Lets a memoized setup image be reused
        across runs.
        """
        if self._count:
            raise ValueError("initialize before recording events")
        self._memory.update(values)
        if share and not self._initial:
            self._initial = values
        else:
            self._initial.update(values)

    def initial_value(self, addr: int) -> Word:
        return self._initial.get(addr)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _append(self, event: MemoryEvent) -> MemoryEvent:
        self._count += 1
        if self.record:
            self._events.append(event)
        return event

    def record_read(self, thread_id: int, addr: int,
                    order: MemOrder = MemOrder.PLAIN) -> MemoryEvent:
        """Record a load; returns the event (with the observed value)."""
        source = self._writer_meta.get(addr)
        event = MemoryEvent(
            self._count, thread_id, _READ_EVENT, order, addr,
            None, self._memory.get(addr), self._last_writer.get(addr),
            True,
            source[0] if source else None,
            source[1] if source else False,
        )
        self._count += 1
        if self.record:
            self._events.append(event)
        return event

    def record_write(self, thread_id: int, addr: int, value: Word,
                     order: MemOrder = MemOrder.PLAIN) -> MemoryEvent:
        """Record a store of ``value``."""
        count = self._count
        event = MemoryEvent(count, thread_id, _WRITE_EVENT, order, addr,
                            value)
        self._count = count + 1
        if self.record:
            self._events.append(event)
        self._memory[addr] = value
        self._last_writer[addr] = count
        self._writer_meta[addr] = (
            thread_id, order is _RELEASE or order is _ACQ_REL)
        return event

    def record_rmw(self, thread_id: int, addr: int, expected: Word,
                   new_value: Word,
                   order: MemOrder = MemOrder.ACQ_REL) -> MemoryEvent:
        """Record a compare-and-swap; the write performs iff it matches."""
        observed = self._memory.get(addr)
        success = observed == expected
        source = self._writer_meta.get(addr)
        count = self._count
        event = MemoryEvent(
            count, thread_id, _RMW_EVENT, order, addr,
            new_value if success else None, observed,
            self._last_writer.get(addr), success,
            source[0] if source else None,
            source[1] if source else False,
        )
        self._count = count + 1
        if self.record:
            self._events.append(event)
        if success:
            self._memory[addr] = new_value
            self._last_writer[addr] = count
            self._writer_meta[addr] = (
                thread_id, order is _RELEASE or order is _ACQ_REL)
        return event

    def record_unconditional_rmw(self, thread_id: int, addr: int,
                                 new_value: Word,
                                 order: MemOrder = MemOrder.ACQ_REL
                                 ) -> MemoryEvent:
        """Record an atomic exchange (always-successful RMW)."""
        observed = self._memory.get(addr)
        source = self._writer_meta.get(addr)
        count = self._count
        event = MemoryEvent(
            count, thread_id, _RMW_EVENT, order, addr,
            new_value, observed, self._last_writer.get(addr), True,
            source[0] if source else None,
            source[1] if source else False,
        )
        self._count = count + 1
        if self.record:
            self._events.append(event)
        self._memory[addr] = new_value
        self._last_writer[addr] = count
        self._writer_meta[addr] = (
            thread_id, order is _RELEASE or order is _ACQ_REL)
        return event

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def load(self, addr: int) -> Word:
        """Current architectural value of ``addr``."""
        return self._memory.get(addr)

    def memory_snapshot(self) -> Dict[int, Word]:
        """Copy of the full architectural memory."""
        return dict(self._memory)

    def last_writer_snapshot(self) -> Dict[int, int]:
        """Copy of the word -> youngest-writer-event map."""
        return dict(self._last_writer)

    def writes(self) -> List[MemoryEvent]:
        """All events with a write effect, in execution order."""
        return [e for e in self.events if e.is_write_effect]
