"""Top-level simulation driver: spec + mechanism -> results.

:func:`simulate` assembles a machine, installs the pre-populated LFD as
the durable baseline, runs the workers to completion, drains the
buffers and returns everything the benchmarks and recovery experiments
need (statistics, trace, NVM persist log, the structure itself).
"""

from __future__ import annotations

import copy
import dataclasses
import gc
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.common.params import DEFAULT_CONFIG, MachineConfig
from repro.common.stats import RunStats
from repro.core.machine import Machine
from repro.core.scheduler import Scheduler
from repro.obs import Observer
from repro.lfds import LogFreeStructure
from repro.workloads import kvservice
from repro.workloads.harness import (
    Outcome,
    WorkloadSpec,
    build_initial_memory,
    build_workers,
    expected_final_keys,
    make_structure,
)


# ----------------------------------------------------------------------
# Setup-phase memoization
# ----------------------------------------------------------------------
#
# Pre-populating a structure (random key draw + node-by-node build of
# the initial image) costs more than the measured simulation itself at
# bench scales. The built (structure, memory image) pair depends only
# on the fields below, so it is memoized: each run gets a deepcopy of
# the prototype structure (cheap — LFDs hold scalars and allocators,
# never the word image) and *shares* the frozen memory image
# (installed with share=True; the trace still takes its own mutable
# copy of the architectural memory).

_PROTO_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_PROTO_CACHE_MAX = 8


def _setup_prototype(spec: WorkloadSpec, config: MachineConfig
                     ) -> Tuple[LogFreeStructure, Dict[int, Optional[int]]]:
    key = (spec.structure, spec.initial_size, spec.effective_key_range,
           spec.seed, config.line_bytes)
    entry = _PROTO_CACHE.get(key)
    if entry is None:
        # The node-by-node build allocates hundreds of thousands of
        # objects at bench scales; pause the cyclic GC so its
        # generation sweeps don't tax the allocation loop (the same
        # trick fastsim.run applies to the measured phase).
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            structure = make_structure(spec, config)
            memory = build_initial_memory(spec, structure)
        finally:
            if gc_was_enabled:
                gc.enable()
        entry = (structure, memory)
        _PROTO_CACHE[key] = entry
        if len(_PROTO_CACHE) > _PROTO_CACHE_MAX:
            _PROTO_CACHE.popitem(last=False)
    else:
        _PROTO_CACHE.move_to_end(key)
    return entry


def clear_setup_cache() -> None:
    """Drop memoized setup prototypes (tests / memory pressure)."""
    _PROTO_CACHE.clear()


@dataclasses.dataclass
class SimulationResult:
    """Everything produced by one simulation run."""

    spec: WorkloadSpec
    mechanism: str
    config: MachineConfig
    machine: Machine
    structure: LogFreeStructure
    outcomes: List[List[Outcome]]
    stats: RunStats
    makespan: int
    #: Total operations executed (= schedule decisions taken) — the
    #: decision-index space the fuzzer's schedule nudges range over.
    executed_ops: int = 0
    #: Why the batch engine fell back to the reference loop (the
    #: :class:`repro.core.fastsim.Refusal` value string), or None when
    #: the fast path ran.
    fastsim_fallback: Optional[str] = None

    @property
    def trace(self):
        return self.machine.trace

    @property
    def nvm(self):
        return self.machine.nvm

    def verify_final_state(self) -> None:
        """Assert the structure's final contents match the oracle."""
        expected = expected_final_keys(self.spec, self.outcomes)
        actual = self.structure.collect_keys(
            self.trace.memory_snapshot())
        if actual != expected:
            missing = sorted(expected - actual)[:10]
            extra = sorted(actual - expected)[:10]
            raise AssertionError(
                f"final-state mismatch for {self.spec.structure}: "
                f"missing={missing} extra={extra}")

    def verify_durable_final_state(self) -> None:
        """Assert the drained NVM image equals the architectural state
        for every word the measured phase wrote."""
        image = self.nvm.final_image()
        memory = self.trace.memory_snapshot()
        stale = [
            addr for addr, value in memory.items()
            if image.get(addr) != value
        ]
        if stale:
            raise AssertionError(
                f"{len(stale)} words differ between NVM and memory "
                f"after drain, e.g. {stale[:5]}")


def simulate(spec: WorkloadSpec,
             mechanism: str = "lrp",
             config: Optional[MachineConfig] = None,
             observer: Optional[Observer] = None,
             schedule_nudges: Optional[Dict[int, int]] = None
             ) -> SimulationResult:
    """Run one full benchmark configuration.

    ``observer`` attaches the :mod:`repro.obs` instrumentation; the
    default (None) leaves every hook disabled and the run bit-identical
    to an unobserved one. ``schedule_nudges`` installs the fuzzer's
    priority perturbations (:meth:`Scheduler.set_nudges`); None keeps
    the scheduler on its default hot path.
    """
    config = config or DEFAULT_CONFIG
    if spec.num_threads > config.num_cores:
        config = dataclasses.replace(config, num_cores=spec.num_threads)
    machine = Machine(config, mechanism, observer=observer)
    proto_structure, proto_memory = _setup_prototype(spec, config)
    structure = copy.deepcopy(proto_structure)
    machine.install_initial_state(proto_memory, share=True)

    outcomes: List[List[Outcome]] = [[] for _ in range(spec.num_threads)]
    # Op-site tagging feeds only the provenance tracker; skip the
    # wrapper generators entirely otherwise so the hot path is
    # untouched when provenance is off.
    tag_sites = observer is not None and observer.provenance is not None
    # The KV-service spec shares the whole setup pipeline (structure,
    # pre-population, prototype cache) with WorkloadSpec — only the
    # worker builder differs (client request generators instead of the
    # fixed-op harness loop).
    if isinstance(spec, kvservice.KVServiceSpec):
        workers = kvservice.build_workers(spec, structure, outcomes,
                                          machine.stats,
                                          tag_sites=tag_sites)
    else:
        workers = build_workers(spec, structure, outcomes, machine.stats,
                                tag_sites=tag_sites)
    scheduler = Scheduler(machine, workers)
    if schedule_nudges is not None:
        scheduler.set_nudges(schedule_nudges)
    makespan = scheduler.run()
    machine.finish(makespan)

    stats = RunStats(
        mechanism=machine.mechanism.name,
        workload=spec.structure,
        num_threads=spec.num_threads,
        per_core=machine.stats[:spec.num_threads],
    )
    refusal = scheduler.fastsim_refusal
    return SimulationResult(
        spec=spec, mechanism=machine.mechanism.name, config=config,
        machine=machine, structure=structure, outcomes=outcomes,
        stats=stats, makespan=makespan,
        executed_ops=scheduler.executed_ops,
        fastsim_fallback=refusal.value if refusal is not None else None)


def simulate_all_mechanisms(
        spec: WorkloadSpec,
        mechanisms: Sequence[str] = ("nop", "sb", "bb", "lrp"),
        config: Optional[MachineConfig] = None
) -> Dict[str, SimulationResult]:
    """Run the same spec under several mechanisms (Figure 5/7 rows)."""
    return {name: simulate(spec, name, config) for name in mechanisms}
