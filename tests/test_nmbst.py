"""Tests for the Natarajan-Mittal external BST (the paper's bstree)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import MachineConfig
from repro.core.machine import Machine
from repro.core.scheduler import Scheduler
from repro.core.simulator import simulate
from repro.lfds.nmbst import (
    FLAG,
    INF0,
    INF1,
    INF2,
    KEY,
    LEFT,
    RIGHT,
    TAG,
    NMTree,
    addr_of,
    is_flagged,
    is_tagged,
)
from repro.lfds.base import field
from repro.memory.address import HeapAllocator
from repro.workloads.harness import WorkloadSpec

CFG = MachineConfig(num_cores=8, l1_size_bytes=8 * 1024)


def _tree():
    return NMTree(HeapAllocator(line_bytes=64))


def _drive(tree, script, initial=()):
    machine = Machine(CFG, "nop")
    memory = {}
    tree.build_initial(initial, memory)
    machine.install_initial_state(memory)
    results = []

    def worker(tid):
        for op, key in script:
            if op == "insert":
                ok = yield from tree.insert(key, key * 10)
            elif op == "delete":
                ok = yield from tree.delete(key)
            else:
                ok = yield from tree.contains(key)
            results.append(ok)

    Scheduler(machine, [worker]).run()
    return results, machine


class TestEdgeBits:
    def test_addr_of_strips_marks(self):
        assert addr_of(0x1000 | FLAG) == 0x1000
        assert addr_of(0x1000 | TAG) == 0x1000
        assert addr_of(0x1000 | FLAG | TAG) == 0x1000
        assert addr_of(None) == 0

    def test_flag_tag_predicates(self):
        assert is_flagged(0x1000 | FLAG)
        assert not is_flagged(0x1000 | TAG)
        assert is_tagged(0x1000 | TAG)
        assert not is_tagged(None)

    def test_sentinel_key_order(self):
        assert INF0 < INF1 < INF2


class TestSentinelSkeleton:
    def test_empty_tree_valid(self):
        tree = _tree()
        memory = {}
        tree.build_initial([], memory)
        report = tree.validate_image(memory)
        assert report.ok
        assert report.live_keys == set()

    def test_inf0_leaf_always_present(self):
        """The INF0 sentinel leaf stays after draining all real keys —
        the guard that keeps S from ever being spliced out."""
        tree = _tree()
        script = [("delete", k) for k in (1, 2, 3)]
        results, machine = _drive(tree, script, initial=(1, 2, 3))
        assert results == [True, True, True]
        memory = machine.trace.memory_snapshot()
        s_left = memory[field(tree.S, LEFT)]
        assert addr_of(memory[field(tree.R, LEFT)]) == tree.S
        # The remaining subtree must contain the INF0 leaf.
        report = tree.validate_image(memory)
        assert report.ok
        assert report.live_keys == set()

    def test_refill_after_drain(self):
        tree = _tree()
        script = ([("delete", k) for k in (1, 2)]
                  + [("insert", k) for k in (5, 1)]
                  + [("contains", 5), ("contains", 1), ("contains", 2)])
        results, machine = _drive(tree, script, initial=(1, 2))
        assert results == [True, True, True, True, True, True, False]
        assert tree.collect_keys(
            machine.trace.memory_snapshot()) == {1, 5}


class TestExternalShape:
    def test_internal_nodes_have_two_children(self):
        tree = _tree()
        _, machine = _drive(tree, [("insert", k) for k in range(10)])
        report = tree.validate_image(machine.trace.memory_snapshot())
        assert report.ok
        # 10 real leaves + 3 sentinel leaves + INF0 leaf and internals.
        assert report.live_keys == set(range(10))

    def test_flagged_leaf_not_live(self):
        tree = _tree()
        memory = {}
        tree.build_initial([4], memory)
        # Manually flag the edge to leaf 4 (an injected delete).
        def find_leaf_edge(node_raw, key):
            node = addr_of(node_raw)
            left = memory[field(node, LEFT)]
            if addr_of(left) == 0:
                return None
            node_key = memory[field(node, KEY)]
            side = LEFT if key < node_key else RIGHT
            child_raw = memory[field(node, side)]
            child = addr_of(child_raw)
            if addr_of(memory[field(child, LEFT)]) == 0:
                return field(node, side)
            return find_leaf_edge(child_raw, key)

        edge = find_leaf_edge(memory[field(tree.R, LEFT)], 4)
        memory[edge] |= FLAG
        report = tree.validate_image(memory)
        assert report.ok            # a flagged edge is a completed delete
        assert 4 not in report.live_keys

    def test_dangling_edge_detected(self):
        tree = _tree()
        memory = {}
        tree.build_initial([4, 9], memory)
        memory[field(tree.S, LEFT)] = 0x9900000
        report = tree.validate_image(memory)
        assert not report.ok
        assert "never persisted" in report.problems[0]

    def test_one_child_internal_detected(self):
        tree = _tree()
        memory = {}
        tree.build_initial([4, 9], memory)
        internal = addr_of(memory[field(tree.S, LEFT)])
        memory[field(internal, LEFT)] = 0
        assert not tree.validate_image(memory).ok


class TestSequentialSemantics:
    @given(st.lists(st.tuples(
        st.sampled_from(["insert", "delete", "contains"]),
        st.integers(0, 9)), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_matches_set_oracle(self, script):
        tree = _tree()
        results, _ = _drive(tree, script, initial=(2, 7))
        present = {2, 7}
        expected = []
        for op, key in script:
            if op == "insert":
                expected.append(key not in present)
                present.add(key)
            elif op == "delete":
                expected.append(key in present)
                present.discard(key)
            else:
                expected.append(key in present)
        assert results == expected


class TestConcurrent:
    @pytest.mark.parametrize("seed", range(4))
    def test_high_contention_final_state(self, seed):
        spec = WorkloadSpec(structure="bstree", num_threads=8,
                            initial_size=4, ops_per_thread=30,
                            key_range=8, seed=seed)
        result = simulate(spec, mechanism="nop", config=CFG)
        result.verify_final_state()

    def test_lrp_crash_recovery(self):
        from repro.core.recovery import exhaustive_crash_test

        spec = WorkloadSpec(structure="bstree", num_threads=6,
                            initial_size=64, ops_per_thread=20, seed=2)
        result = simulate(spec, mechanism="lrp", config=CFG)
        campaign = exhaustive_crash_test(result)
        assert campaign.all_recovered

    def test_write_intensity_exceeds_tombstone_tree(self):
        """The NM tree allocates/frees nodes per update, so it issues
        markedly more persists than the tombstone variant — the
        property behind the paper's large BST gains."""
        nm_spec = WorkloadSpec(structure="bstree", num_threads=8,
                               initial_size=256, ops_per_thread=24,
                               seed=1)
        tomb_spec = WorkloadSpec(structure="bstree_tomb", num_threads=8,
                                 initial_size=256, ops_per_thread=24,
                                 seed=1)
        nm = simulate(nm_spec, mechanism="bb", config=CFG)
        tomb = simulate(tomb_spec, mechanism="bb", config=CFG)
        assert nm.stats.total_persists > tomb.stats.total_persists
