"""Tests for persist provenance (repro.obs.provenance / flame / diff).

The load-bearing guarantees:

* provenance tracking is opt-in and *passive*: enabling it yields
  bit-identical makespans, stats and persist logs;
* every trigger in the taxonomy — barrier, eviction, downgrade,
  epoch-drain — is actually observed on the mechanism whose design
  produces it (plus release/rmw-acquire/store-buffer/drain);
* per-site stall cycles reconcile EXACTLY with
  ``RunStats.persist_stall_cycles`` (the flame view is accounting,
  not sampling);
* the LRP-vs-BB diff on the same workload/seed reports nonzero
  persists-avoided with per-site attribution and a first divergence;
* the ``provenance``/``flame``/``diff`` CLI verbs work end to end and
  create missing output-parent directories instead of crashing.
"""

import dataclasses
import hashlib
import json
import os

import pytest

from repro.common.params import MachineConfig
from repro.core.simulator import simulate
from repro.exp.runner import Job, execute_job
from repro.obs import Observer
from repro.obs import diff as diff_mod
from repro.obs import flame
from repro.obs.provenance import (
    TRIGGERS,
    UNTAGGED_SITE,
    persist_entries,
    site_persist_counts,
    site_stall_cycles,
    stall_folds,
)
from repro.obs.__main__ import main as obs_main
from repro.workloads.harness import WorkloadSpec

MECHANISMS = ("nop", "sb", "bb", "lrp", "arp", "dpo", "hops")


def tiny_spec(seed=1):
    return WorkloadSpec(structure="hashmap", num_threads=8,
                        initial_size=128, ops_per_thread=24, seed=seed)


def eviction_config():
    """A 1 KiB L1 (16 lines) so the tiny workload actually evicts."""
    return dataclasses.replace(MachineConfig(num_cores=8),
                               l1_size_bytes=1024)


def persist_digest(result):
    hasher = hashlib.sha256()
    for record in result.nvm.persist_log():
        hasher.update(repr((record.line_addr, record.words,
                            record.complete_time)).encode("ascii"))
    return hasher.hexdigest()


@pytest.fixture(scope="module")
def runs():
    """(plain result, provenance-observed result, observer) per mech."""
    spec, config = tiny_spec(), eviction_config()
    out = {}
    for mech in MECHANISMS:
        plain = simulate(spec, mech, config)
        observer = Observer(provenance=True)
        observed = simulate(spec, mech, config, observer=observer)
        out[mech] = (plain, observed, observer)
    return out


# ----------------------------------------------------------------------
# Passivity / bit-identity
# ----------------------------------------------------------------------

class TestPassivity:
    def test_bit_identical_results(self, runs):
        for mech, (plain, observed, _) in runs.items():
            assert plain.makespan == observed.makespan, mech
            assert plain.stats.summary() == observed.stats.summary(), mech
            assert persist_digest(plain) == persist_digest(observed), mech

    def test_provenance_off_by_default(self):
        assert Observer().provenance is None
        assert Observer(trace=True).provenance is None


# ----------------------------------------------------------------------
# The causal record itself
# ----------------------------------------------------------------------

class TestProvenanceRecord:
    def test_mechanism_recorded(self, runs):
        for mech, (_, _, observer) in runs.items():
            assert observer.provenance.to_dict()["mechanism"] == mech

    def test_triggers_are_in_taxonomy(self, runs):
        for mech, (_, _, observer) in runs.items():
            data = observer.provenance.to_dict()
            for entry in data["persists"]:
                assert entry["trigger"] in TRIGGERS, (mech, entry)

    def test_trigger_taxonomy_observed(self, runs):
        """Each mechanism exhibits the triggers its design produces."""
        def triggers_of(mech):
            data = runs[mech][2].provenance.to_dict()
            return {e["trigger"] for e in data["persists"]}

        assert "barrier" in triggers_of("sb")
        assert "eviction" in triggers_of("sb")
        assert "downgrade" in triggers_of("sb")
        assert "epoch-drain" in triggers_of("bb")
        assert "downgrade" in triggers_of("bb")
        assert "eviction" in triggers_of("lrp")
        assert "downgrade" in triggers_of("lrp")
        assert triggers_of("arp") == {"store-buffer"}
        # All four headline trigger kinds are covered somewhere.
        everything = set()
        for mech in MECHANISMS:
            everything |= triggers_of(mech)
        assert {"barrier", "eviction", "downgrade",
                "epoch-drain"} <= everything

    def test_sites_are_tagged(self, runs):
        """Persists resolve to workload source sites, not (untagged)."""
        for mech in ("sb", "bb", "lrp"):
            data = runs[mech][2].provenance.to_dict()
            sites = {e["site"] for e in data["persists"]}
            tagged = {s for s in sites
                      if s.startswith("hashmap.")}
            assert tagged, (mech, sites)
            assert UNTAGGED_SITE not in sites, mech

    def test_downgrade_carries_hb_edge(self, runs):
        """Downgrade persists record the (owner, requester) edge."""
        for mech in ("sb", "lrp", "nop"):
            data = runs[mech][2].provenance.to_dict()
            downgrades = [e for e in data["persists"]
                          if e["trigger"] == "downgrade"]
            assert downgrades, mech
            for entry in downgrades:
                owner, requester = entry["edge"]
                assert owner == entry["core"], (mech, entry)
                assert owner != requester, (mech, entry)

    def test_persist_entries_ordered_and_complete(self, runs):
        for mech in ("sb", "bb", "lrp"):
            result, _, observer = runs[mech][0], None, runs[mech][2]
            data = observer.provenance.to_dict()
            entries = persist_entries(data)
            seqs = [e["seq"] for e in entries]
            assert seqs == sorted(seqs)
            # One provenance entry per persist-log record.
            assert len(entries) == len(result.nvm.persist_log()), mech


# ----------------------------------------------------------------------
# Exact stall reconciliation
# ----------------------------------------------------------------------

class TestReconciliation:
    def test_stall_cycles_reconcile_exactly(self, runs):
        for mech, (plain, _, observer) in runs.items():
            data = observer.provenance.to_dict()
            folded = sum(stall_folds(data).values())
            assert folded == plain.stats.persist_stall_cycles, mech
            by_site = sum(site_stall_cycles(data).values())
            assert by_site == plain.stats.persist_stall_cycles, mech

    def test_flame_totals_reconcile(self, runs):
        for mech, (plain, _, observer) in runs.items():
            data = observer.provenance.to_dict()
            stalls = flame.collapse_stacks(data, "stalls")
            assert flame.total(stalls) == \
                plain.stats.persist_stall_cycles, mech
            persists = flame.collapse_stacks(data, "persists")
            assert flame.total(persists) == len(data["persists"]), mech

    def test_collapsed_stack_format(self, runs):
        data = runs["lrp"][2].provenance.to_dict()
        for mode in flame.MODES:
            for stack, value in flame.collapse_stacks(data, mode).items():
                frames = stack.split(";")
                assert len(frames) == 3, stack
                assert frames[-1] == "lrp"
                assert value > 0


# ----------------------------------------------------------------------
# Captures and the differential comparison
# ----------------------------------------------------------------------

class TestDiff:
    @pytest.fixture(scope="class")
    def captures(self):
        spec, config = tiny_spec(), eviction_config()
        out = {}
        for mech in ("bb", "lrp"):
            summary = execute_job(Job(spec=spec, mechanism=mech,
                                      config=config,
                                      collect_provenance=True))
            out[mech] = diff_mod.make_capture(summary)
        return out

    def test_summary_carries_provenance(self):
        summary = execute_job(Job(spec=tiny_spec(), mechanism="lrp",
                                  config=eviction_config(),
                                  collect_provenance=True))
        assert "provenance" in summary.obs
        assert summary.obs["provenance"]["mechanism"] == "lrp"

    def test_capture_without_provenance_rejected(self):
        summary = execute_job(Job(spec=tiny_spec(), mechanism="lrp",
                                  config=eviction_config(),
                                  collect_obs=True))
        with pytest.raises(ValueError, match="no provenance"):
            diff_mod.make_capture(summary)

    def test_capture_roundtrip(self, captures, tmp_path):
        path = str(tmp_path / "cap.json")
        diff_mod.write_capture(captures["lrp"], path)
        loaded = diff_mod.load_capture(path)
        assert loaded == json.loads(json.dumps(captures["lrp"]))

    def test_diff_reports_avoided_persists(self, captures):
        gap = diff_mod.diff_captures(captures["bb"], captures["lrp"])
        assert gap["base_mechanism"] == "bb"
        assert gap["other_mechanism"] == "lrp"
        assert gap["persists"]["avoided"] > 0
        assert gap["per_site_persists"], "per-site attribution missing"
        for row in gap["per_site_persists"]:
            assert row["delta"] == row["other"] - row["base"]
        # avoided/moved decompose the per-site deltas exactly.
        base_sites = site_persist_counts(captures["bb"]["provenance"])
        other_sites = site_persist_counts(captures["lrp"]["provenance"])
        avoided = sum(max(0, base_sites.get(s, 0) - other_sites.get(s, 0))
                      for s in set(base_sites) | set(other_sites))
        assert gap["persists"]["avoided"] == avoided

    def test_diff_first_divergence(self, captures):
        gap = diff_mod.diff_captures(captures["bb"], captures["lrp"])
        div = gap["first_divergence"]
        assert div is not None
        streams = {
            mech: [(e["site"], e["trigger"])
                   for e in persist_entries(captures[mech]["provenance"])]
            for mech in ("bb", "lrp")
        }
        index = div["index"]
        assert streams["bb"][:index] == streams["lrp"][:index]
        if "base" in div and "other" in div:
            assert (div["base"]["site"], div["base"]["trigger"]) \
                != (div["other"]["site"], div["other"]["trigger"])

    def test_diff_self_is_empty(self, captures):
        gap = diff_mod.diff_captures(captures["lrp"], captures["lrp"])
        assert gap["persists"]["avoided"] == 0
        assert gap["persists"]["moved"] == 0
        assert gap["first_divergence"] is None
        assert gap["per_site_persists"] == []

    def test_diff_rejects_identity_mismatch(self, captures):
        other_seed = execute_job(Job(spec=tiny_spec(seed=2),
                                     mechanism="lrp",
                                     config=eviction_config(),
                                     collect_provenance=True))
        with pytest.raises(ValueError, match="not comparable"):
            diff_mod.diff_captures(captures["bb"],
                                   diff_mod.make_capture(other_seed))


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------

ARGS = ["--threads", "4", "--size", "64", "--ops", "12"]


class TestCLI:
    def test_provenance_verb_creates_parent_dirs(self, tmp_path, capsys):
        out = str(tmp_path / "deep" / "nested" / "cap.json")
        rc = obs_main(["provenance", out, "--mechanism", "lrp"] + ARGS)
        assert rc == 0
        assert os.path.exists(out)
        assert "provenance" in diff_mod.load_capture(out)
        assert "wrote provenance capture" in capsys.readouterr().out

    def test_flame_verb_reconciles(self, tmp_path, capsys):
        cap = str(tmp_path / "cap.json")
        assert obs_main(["provenance", cap,
                         "--mechanism", "lrp"] + ARGS) == 0
        folded = str(tmp_path / "lrp.folded")
        rc = obs_main(["flame", folded, "--from-capture", cap])
        assert rc == 0
        capture = diff_mod.load_capture(cap)
        total = 0
        with open(folded) as handle:
            for line in handle:
                stack, value = line.rsplit(" ", 1)
                assert len(stack.split(";")) == 3
                total += int(value)
        assert total == capture["persist_stall_cycles"]
        assert "flame view" in capsys.readouterr().out

    def test_diff_verb_json_out_creates_parent(self, tmp_path, capsys):
        json_out = str(tmp_path / "missing" / "diff.json")
        rc = obs_main(["diff", "--base", "bb", "--other", "lrp",
                       "--json-out", json_out] + ARGS)
        assert rc == 0
        with open(json_out) as handle:
            gap = json.load(handle)
        assert gap["persists"]["avoided"] > 0
        assert "first divergence" in capsys.readouterr().out

    def test_flame_unwritable_output_exits_one(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory\n")
        out = str(blocker / "flame.folded")
        rc = obs_main(["flame", out, "--mechanism", "lrp"] + ARGS)
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
