"""JSON codec for :class:`~repro.exp.runner.Job`.

The queue journals job specs to disk, so a campaign submitted today
must decode bit-exactly in a worker process tomorrow. The cache
already renders every spec/config dataclass into canonical JSON for
its digests (:func:`repro.exp.cache._canonical`); this module adds the
inverse: a typed envelope that names the spec class so decoding
reconstructs the exact frozen dataclasses, enum members included.

The round-trip contract is strict equality: ``decode_job(encode_job(j))
== j``, which implies the decoded job's content-address digest
(:meth:`Job.key`) matches the submitted one — the property the whole
resume/no-re-execution story rests on. ``tests/test_service.py`` pins
it per spec type.

Fuzz-leg jobs carry live mutation objects that have no stable JSON
form; the service refuses them at submit time rather than silently
dropping the leg.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Type

from repro.common.params import MachineConfig, NVMMode
from repro.exp.runner import Job
from repro.workloads.harness import WorkloadSpec

#: Format tag written into every encoded job (bump on layout change).
CODEC_VERSION = 1


def _spec_types() -> Dict[str, Type]:
    from repro.workloads.kvservice import KVServiceSpec

    return {"WorkloadSpec": WorkloadSpec, "KVServiceSpec": KVServiceSpec}


def _plain_fields(obj) -> Dict[str, object]:
    """Dataclass fields as JSON primitives (enums by value)."""
    fields: Dict[str, object] = {}
    for field in dataclasses.fields(obj):
        value = getattr(obj, field.name)
        if isinstance(value, NVMMode):
            value = value.value
        fields[field.name] = value
    return fields


def encode_job(job: Job) -> Dict[str, object]:
    """Render a job as a JSON-stable dict (raises on fuzz jobs)."""
    if job.fuzz is not None:
        raise ValueError(
            "fuzz-leg jobs are not service-encodable: the mutation "
            "spec has no stable JSON form; run fuzz campaigns through "
            "python -m repro.fuzz instead")
    spec_type = type(job.spec).__name__
    if spec_type not in _spec_types():
        raise ValueError(f"unknown spec type {spec_type!r}")
    return {
        "codec": CODEC_VERSION,
        "spec_type": spec_type,
        "spec": _plain_fields(job.spec),
        "mechanism": job.mechanism,
        "config": _plain_fields(job.config),
        "crash_points": job.crash_points,
        "crash_seed": job.crash_seed,
        "collect_obs": job.collect_obs,
        "collect_trace": job.collect_trace,
        "timeline_interval": job.timeline_interval,
        "collect_provenance": job.collect_provenance,
        "collect_spans": job.collect_spans,
        "schedule_nudges": (
            [list(pair) for pair in job.schedule_nudges]
            if job.schedule_nudges is not None else None),
    }


def decode_job(data: Dict[str, object]) -> Job:
    """Reconstruct the exact Job an :func:`encode_job` dict came from."""
    version = data.get("codec")
    if version != CODEC_VERSION:
        raise ValueError(f"unsupported job codec version {version!r}")
    spec_cls = _spec_types().get(str(data["spec_type"]))
    if spec_cls is None:
        raise ValueError(f"unknown spec type {data['spec_type']!r}")
    spec = spec_cls(**data["spec"])
    config_fields = dict(data["config"])
    config_fields["nvm_mode"] = NVMMode(config_fields["nvm_mode"])
    config = MachineConfig(**config_fields)
    nudges = data.get("schedule_nudges")
    return Job(
        spec=spec,
        mechanism=str(data["mechanism"]),
        config=config,
        crash_points=data.get("crash_points"),
        crash_seed=int(data.get("crash_seed", 0)),
        collect_obs=bool(data.get("collect_obs", False)),
        collect_trace=bool(data.get("collect_trace", False)),
        timeline_interval=data.get("timeline_interval"),
        collect_provenance=bool(data.get("collect_provenance", False)),
        collect_spans=bool(data.get("collect_spans", False)),
        schedule_nudges=(
            tuple((int(i), int(r)) for i, r in nudges)
            if nudges is not None else None),
    )
