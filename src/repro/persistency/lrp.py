"""LRP: Lazy Release Persistency (the paper's mechanism, Section 5).

Writes simply buffer in the L1 and never trigger persists on their own.
Persists happen when the coherence protocol detects that buffered state
is about to leave the private cache, upholding four invariants:

* **I1** — evicting a *released* line triggers the persist of all
  earlier writes, then of the releases in epoch order, then of the line
  itself — all **off the critical path** (nobody waits).
* **I2** — downgrading a released line (a remote request, i.e. the
  acquiring side of a synchronizes-with edge) blocks the **requester**
  until that whole chain, including the released line, has persisted.
* **I3** — a successful RMW marked acquire blocks the pipeline until
  the RMW's own write has persisted.
* **I4** — the directory persists write-backs it receives and blocks
  requests for that line until the ack.

Hardware state per core (Section 5.2.1, Figure 3): an epoch-id counter
(incremented on every release), a pending-persists counter (modeled by
the ack times of issued persists), per-line ``min_epoch`` +
``release-bit`` metadata, a 32-entry Release Epoch Table (RET) with a
watermark that triggers the persist of the oldest release, and the
persist engine that scans the L1.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.coherence.l1cache import CacheLine, MESIState
from repro.consistency.events import MemoryEvent
from repro.memory.nvm import PersistRecord
from repro.obs import Histogram
from repro.persistency.base import PersistencyMechanism


def _later(first: Optional[PersistRecord],
           second: Optional[PersistRecord]) -> Optional[PersistRecord]:
    """The record completing later (None counts as the distant past)."""
    if first is None:
        return second
    if second is None or second.complete_time <= first.complete_time:
        return first
    return second


class LRPMechanism(PersistencyMechanism):
    """Lazy Release Persistency (one-sided barriers, enforced lazily)."""

    name = "lrp"
    enforces_rp = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        cores = self.config.num_cores
        self._epoch: List[int] = [1] * cores
        # Release Epoch Table: line addr -> release-epoch, insertion
        # order == epoch order (releases allocate entries in sequence).
        self._ret: List["OrderedDict[int, int]"] = [
            OrderedDict() for _ in range(cores)
        ]
        # All lines holding unpersisted writes (the persist engine's
        # L1-scan result, maintained incrementally for speed).
        self._pending: List[Dict[int, CacheLine]] = [
            {} for _ in range(cores)
        ]
        # The youngest release persist issued so far: releases must
        # persist in epoch order even across engine invocations, so
        # each release persist is pipeline-ordered after this record.
        self._release_tail: List[Optional[PersistRecord]] = [None] * cores
        self.stats_engine_runs = 0
        self.stats_ret_watermark_drains = 0
        self.stats_epoch_wraps = 0
        # Pre-resolved obs endpoints for the per-release RET narration
        # (same scheme as the base class's persist/stall sites — the
        # watermark check runs on every release, so name building and
        # registry lookups there are measurable at paper scale).
        if self.obs is not None:
            self._ret_gauge_names = [f"lrp.ret.c{i}"
                                     for i in range(cores)]
            self._engine_tick_names = [f"lrp.engine.c{i}"
                                       for i in range(cores)]
            self._hist_ret_occ: Optional[Histogram] = None
            self._ret_gauge_series: List[Optional[Dict[int, int]]] = (
                [None] * cores)

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------

    def on_write(self, core: int, line: CacheLine, event: MemoryEvent,
                 now: int) -> int:
        """Regular write: buffer only (min-epoch stamped if line clean)."""
        self._apply_store(core, line, event, epoch=self._epoch[core])
        self._pending[core][line.addr] = line
        return 0

    def on_release(self, core: int, line: CacheLine, event: MemoryEvent,
                   now: int) -> int:
        """Release: bump the epoch, tag the line, allocate a RET entry."""
        self._bump_epoch(core, now)
        # A release cannot coalesce with previous writes in the same
        # dirty line: the line is first persisted, then treated clean.
        if line.pending_words:
            if line.release_bit:  # is_released, pending known truthy
                # The line holds an older release: persist via the
                # engine so its preceding writes persist first.
                self._persist_engine(core, line, now, cause="release")
            else:
                self._pending[core].pop(line.addr, None)
                self._issue_line(core, line, now, trigger="release")
        self._apply_store(core, line, event, epoch=self._epoch[core])
        line.release_bit = True
        self._pending[core][line.addr] = line
        self._ret[core][line.addr] = self._epoch[core]
        self._check_watermark(core, now)
        return 0

    def on_rmw(self, core: int, line: CacheLine, event: MemoryEvent,
               now: int) -> int:
        """Successful RMW: release bookkeeping plus invariant I3."""
        if event.order.has_release:
            stall = self.on_release(core, line, event, now)
            if event.order.has_acquire:
                # I3 (+ release ordering): the RMW's write may persist
                # only after earlier writes; block until it is durable.
                ready, records = self._persist_engine(
                    core, line, now, cause="rmw-acquire")
                stall += self._wait_for(core, now + stall, records,
                                        reason="rmw-acquire")
            return stall
        if event.order.has_acquire:
            stall = self.on_write(core, line, event, now)
            self._pending[core].pop(line.addr, None)
            record = self._issue_line(core, line, now + stall,
                                      trigger="rmw-acquire")
            return stall + self._wait_for(core, now + stall, [record],
                                          reason="rmw-acquire")
        return self.on_write(core, line, event, now)

    def on_acquire(self, core: int, event: MemoryEvent, now: int,
                   sync_source=None) -> int:
        """Acquire loads need no local action (Section 5.2.2)."""
        return 0

    # ------------------------------------------------------------------
    # Coherence-triggered persists (invariants I1, I2, I4)
    # ------------------------------------------------------------------

    def on_evict(self, core: int, line: CacheLine, now: int) -> int:
        if not line.pending_words:
            self._block_if_inflight(core, line.addr, now)
            return 0
        if self.obs is not None and line.min_epoch is not None:
            self.obs.observe("lrp.epoch_age_at_evict",
                             self._epoch[core] - line.min_epoch)
        if line.release_bit:  # is_released, pending known truthy
            # I1: run the persist engine, off the critical path; the
            # directory blocks the line until its persist acks (the
            # PutM transient state of Section 5.2.3).
            ready, _records = self._persist_engine(core, line, now,
                                                   cause="eviction")
            self.fabric.block_line_until(line.addr, ready)
            return 0
        # Only-written victim: persist off the critical path; I4 blocks
        # requests for the line at the directory until the ack.
        self._pending[core].pop(line.addr, None)
        record = self._issue_line(core, line, now, trigger="eviction")
        self.fabric.block_line_until(line.addr, record.complete_time)
        return 0

    def on_downgrade(self, owner: int, line: CacheLine,
                     to_state: MESIState, requester: int, now: int) -> int:
        if line.pending_words:
            if line.release_bit:  # is_released, pending known truthy
                # I2: the requester blocks until the release and all of
                # its preceding writes have persisted. The directory
                # holds the line until then, so no other thread can
                # consume the not-yet-durable value.
                ready, records = self._persist_engine(
                    owner, line, now, cause="downgrade",
                    edge=(owner, requester))
                for record in records:
                    if record.complete_time > now:
                        self._mark_critical(record)
                if ready > now:
                    self.fabric.block_line_until(line.addr, ready)
                return self._wait_until(requester, now, ready,
                                        reason="inter-thread")
            # Only-written: persist off the critical path; the data is
            # forwarded immediately (no RP ordering without a release).
            self._pending[owner].pop(line.addr, None)
            self._issue_line(owner, line, now, trigger="downgrade",
                             edge=(owner, requester))
            return 0
        inflight = self._inflight_record(owner, line.addr, now)
        if inflight is not None:
            # The line's persist (e.g. from a RET-watermark drain) is
            # still in flight: the requester waits for durability.
            return self._wait_for(requester, now, [inflight],
                                  block_line=line.addr,
                                  reason="inter-thread")
        return 0

    # ------------------------------------------------------------------
    # The persist engine (Section 5.2.2)
    # ------------------------------------------------------------------

    def _persist_engine(self, core: int, trigger: CacheLine,
                        now: int, cause: str = "epoch-drain",
                        edge: Optional[Tuple[int, int]] = None
                        ) -> Tuple[int, List[PersistRecord]]:
        """Persist ``trigger`` (a released line) and everything older.

        ``cause`` names the coherence event that invoked the engine
        (provenance trigger taxonomy); ``edge`` is the owner->requester
        hb-edge for downgrade-invoked runs.

        Scans the pending lines: only-written lines with a smaller
        min-epoch are persisted immediately (unordered); released lines
        with a smaller epoch are buffered and persisted *after* all
        those writes ack, in epoch order; the trigger persists last.
        Returns the chain's ack time and the issued records.
        """
        self.stats_engine_runs += 1
        release_epoch = trigger.min_epoch
        if release_epoch is None:
            raise ValueError("persist-engine trigger must hold a release")
        pending = self._pending[core]
        pending.pop(trigger.addr, None)
        scanned = len(pending)

        writes_tail: Optional[PersistRecord] = None
        records: List[PersistRecord] = []
        older_releases: List[CacheLine] = []
        older_writes: List[CacheLine] = []
        for line in list(pending.values()):
            if line.min_epoch is None or line.min_epoch >= release_epoch:
                continue
            if line.is_released:
                older_releases.append(line)
                continue
            pending.pop(line.addr, None)
            older_writes.append(line)
        for record in self._issue_lines(core, older_writes, now,
                                        trigger=cause, edge=edge):
            records.append(record)
            writes_tail = _later(writes_tail, record)

        # Writes of older epochs may already be in flight (persisted by
        # an earlier coherence event): the releases are ordered behind
        # those too.
        for record in self._outstanding(core, now,
                                        below_epoch=release_epoch):
            writes_tail = _later(writes_tail, record)

        # Releases are *scheduled* in epoch order, ordered behind every
        # prior-write persist; the memory system pipelines the ordered
        # stream (Section 5.2.2 algorithm, with ordering delegated to
        # the NVM-side queues rather than ack polling).
        older_releases.sort(key=lambda l: l.min_epoch or 0)
        ready = now if writes_tail is None else writes_tail.complete_time
        barrier = _later(writes_tail, self._release_tail[core])
        for release_line in older_releases + [trigger]:
            pending.pop(release_line.addr, None)
            self._ret[core].pop(release_line.addr, None)
            record = self._issue_line(core, release_line, now,
                                      ordered_after=barrier,
                                      trigger=cause, edge=edge)
            if record is None:
                continue
            records.append(record)
            barrier = record
            self._release_tail[core] = record
            ready = max(ready, record.complete_time)
        if self.obs is not None:
            self.obs.count("lrp.engine_runs")
            self.obs.tick(self._engine_tick_names[core], now)
            self.obs.observe("lrp.engine_scan_lines", scanned)
            self.obs.observe("lrp.engine_chain_persists", len(records))
            self.obs.span(f"engine-c{core}", "persist-engine", now,
                          max(0, ready - now), cat="epoch-drain",
                          args={"persists": len(records)})
        return ready, records

    # ------------------------------------------------------------------
    # Epoch counter and RET management (Section 5.2.1)
    # ------------------------------------------------------------------

    def _bump_epoch(self, core: int, now: int) -> None:
        self._epoch[core] += 1
        if self._epoch[core] >= self.config.epoch_limit:
            # Epoch-id overflow: persist all not-yet-persisted lines
            # (ordered), then restart the epochs.
            self.stats_epoch_wraps += 1
            if self.obs is not None:
                self.obs.count("lrp.epoch_wraps")
            self._drain_core(core, now, trigger="epoch-wrap")
            self._epoch[core] = 1

    def _check_watermark(self, core: int, now: int) -> None:
        """RET at watermark: persist the oldest release, off-path."""
        if self.obs is not None:
            # Inlined observe + gauge against pre-resolved endpoints;
            # emissions (names, values, lazy creation) are identical
            # to the plain Observer calls.
            occupancy = len(self._ret[core])
            hist = self._hist_ret_occ
            if hist is None:
                hist = self._obs_histograms.get("lrp.ret_occupancy")
                if hist is None:
                    hist = self._obs_histograms["lrp.ret_occupancy"] = \
                        Histogram()
                self._hist_ret_occ = hist
            hist.observe(occupancy)
            timeline = self._timeline
            if timeline is not None:
                window = now // self._tl_interval
                series = self._ret_gauge_series[core]
                if series is None:
                    name = self._ret_gauge_names[core]
                    series = timeline.gauges.get(name)
                    if series is None:
                        series = timeline.gauges[name] = {}
                    self._ret_gauge_series[core] = series
                if occupancy > series.get(window, -1):
                    series[window] = occupancy
        while len(self._ret[core]) >= self.config.ret_watermark:
            self.stats_ret_watermark_drains += 1
            if self.obs is not None:
                self.obs.count("lrp.ret_watermark_drains")
            oldest_addr = next(iter(self._ret[core]))
            oldest_line = self._pending[core].get(oldest_addr)
            if oldest_line is None or not oldest_line.is_released:
                self._ret[core].pop(oldest_addr, None)
                continue
            self._persist_engine(core, oldest_line, now,
                                 cause="epoch-drain")

    def _drain_core(self, core: int, now: int,
                    trigger: str = "drain") -> int:
        """Persist every buffered line of a core (ordered); ack time."""
        pending = self._pending[core]
        writes_ack = now
        releases: List[CacheLine] = []
        writes: List[CacheLine] = []
        for line in list(pending.values()):
            if line.is_released:
                releases.append(line)
                continue
            pending.pop(line.addr, None)
            writes.append(line)
        for record in self._issue_lines(core, writes, now, trigger=trigger):
            writes_ack = max(writes_ack, record.complete_time)
        writes_tail: Optional[PersistRecord] = None
        for record in self._outstanding(core, now):
            writes_tail = _later(writes_tail, record)
        releases.sort(key=lambda l: l.min_epoch or 0)
        ready = max(writes_ack,
                    writes_tail.complete_time if writes_tail else now)
        barrier = _later(writes_tail, self._release_tail[core])
        for line in releases:
            pending.pop(line.addr, None)
            self._ret[core].pop(line.addr, None)
            record = self._issue_line(core, line, now,
                                      ordered_after=barrier,
                                      trigger=trigger)
            if record is not None:
                barrier = record
                self._release_tail[core] = record
                ready = max(ready, record.complete_time)
        return ready

    def drain(self, now: int) -> int:
        ready = now
        for core in range(self.config.num_cores):
            ready = max(ready, self._drain_core(core, now))
        return max(0, ready - now)

    # ------------------------------------------------------------------
    # Introspection (tests / ablations)
    # ------------------------------------------------------------------

    def ret_occupancy(self, core: int) -> int:
        return len(self._ret[core])

    def current_epoch(self, core: int) -> int:
        return self._epoch[core]
