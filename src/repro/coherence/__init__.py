"""Cache hierarchy: private L1s, MESI directory, 2D-mesh NoC."""

from repro.coherence.l1cache import CacheLine, L1Cache, MESIState
from repro.coherence.directory import (
    AccessResult,
    CoherenceFabric,
    Downgrade,
    Eviction,
)
from repro.coherence.noc import MeshNoC

__all__ = [
    "CacheLine",
    "L1Cache",
    "MESIState",
    "AccessResult",
    "CoherenceFabric",
    "Downgrade",
    "Eviction",
    "MeshNoC",
]
