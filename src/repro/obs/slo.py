"""Service-level objectives over request spans: latency, throughput, RTO.

Everything here is *post hoc*: the execution loops record one boundary
clock per request (:mod:`repro.obs.spans`); this module reconstructs
full request records from them and computes the service story —

* **request latency, coordination-omission free.** The simulator runs
  clients closed-loop (request ``i+1`` starts when ``i`` finishes),
  which keeps schedules bit-identical whether or not spans are on. The
  *open-loop* latency is reconstructed by replaying the measured
  service times against the spec's deterministic arrival process
  (:func:`repro.workloads.kvservice.arrival_times`): a request that
  arrives while its client is still busy queues virtually —
  ``vstart = max(arrival, previous_finish)`` — so a burst piles
  queueing delay onto every request it delays, exactly the effect
  coordinated omission hides.
* **durability lag.** A request is *durable* once the store values it
  (and everything before it) produced are in NVM. Judging that by
  persist *issue* times would credit lazy mechanisms with zero lag —
  LRP deliberately issues the covering persists long after the request
  completed — so durability is resolved through store *event ids*
  instead: each span records the global memory-event count at the
  request boundary (the request's event frontier), each persist record
  names the youngest store event whose value it wrote per word, and
  :func:`durable_frontier` answers "by when had every persisted store
  with an event id below this frontier drained". Stores coalesced away
  before any persist (overwritten in cache) are treated as superseded
  by the store that did persist. The lag ``durable - completion`` is
  added to the open-loop latency for the durable percentiles — the
  LRP-vs-eager differentiator.
* **exact streaming percentiles.** :class:`LatencyReservoir` keeps a
  value -> count map (cycles are small ints), so its nearest-rank
  quantiles are *exact* and the selftest reconciles them against
  sorting the stored per-request records — no approximation to trust.
* **RTO metering.** Crash the finished run at sampled persist-log
  prefixes (:func:`repro.core.recovery.crash_points`), validate null
  recovery, and meter cycles-to-recovered-state as an image scan plus
  structure validation charge, alongside the requests that had
  completed but not yet persisted (lost on an un-synced crash).
"""

from __future__ import annotations

import bisect
import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram

#: Recovery scan cost: cycles per word of the crash image (a recovery
#: process must at least read the durable heap once).
RTO_SCAN_CYCLES_PER_WORD = 4

#: Fixed recovery overhead (process restart, root discovery).
RTO_BASE_CYCLES = 1000

#: Chrome-trace process id for the request-span track (core/stall/
#: engine/nvm tracks use 1-4, timeline counters 5).
REQUEST_PID = 6

#: The percentiles every report carries.
SLO_QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


@dataclasses.dataclass
class RequestRecord:
    """One reconstructed request span."""

    thread_id: int
    index: int
    #: Simulated (closed-loop) clocks from the span boundaries.
    dispatch: int
    completion: int
    #: Cycle at which every persist issued by ``completion`` drained.
    durable: int
    #: Virtual open-loop clocks from the arrival replay.
    arrival: int
    vstart: int

    @property
    def service(self) -> int:
        return self.completion - self.dispatch

    @property
    def latency(self) -> int:
        """Open-loop latency: virtual finish minus arrival."""
        return self.vstart + self.service - self.arrival

    @property
    def durable_lag(self) -> int:
        return self.durable - self.completion

    @property
    def durable_latency(self) -> int:
        return self.latency + self.durable_lag


# ----------------------------------------------------------------------
# Exact streaming percentiles
# ----------------------------------------------------------------------

class LatencyReservoir:
    """Exact streaming quantiles over integer cycle latencies.

    A value -> count map: O(1) per observation, mergeable across
    threads and runs, and — because nothing is dropped — its
    nearest-rank quantiles equal those of the fully stored sample
    (pinned by the obs selftest against the per-request records).
    """

    __slots__ = ("counts", "total")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.total = 0

    def observe(self, value: int) -> None:
        self.counts[value] = self.counts.get(value, 0) + 1
        self.total += 1

    def merge(self, other: "LatencyReservoir") -> None:
        for value, count in other.counts.items():
            self.counts[value] = self.counts.get(value, 0) + count
        self.total += other.total

    def quantile(self, q: float) -> int:
        """Exact nearest-rank quantile (the ceil(q*n)-th smallest)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {q!r}")
        if self.total == 0:
            return 0
        rank = max(1, math.ceil(round(q * self.total, 9)))
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= rank:
                return value
        raise AssertionError("rank exceeded reservoir population")

    @property
    def mean(self) -> float:
        if self.total == 0:
            return 0.0
        return sum(v * c for v, c in self.counts.items()) / self.total

    @property
    def max(self) -> int:
        return max(self.counts) if self.counts else 0

    def to_dict(self) -> Dict[str, object]:
        return {"counts": {str(v): c
                           for v, c in sorted(self.counts.items())},
                "total": self.total}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LatencyReservoir":
        reservoir = cls()
        for value, count in data.get("counts", {}).items():  # type: ignore
            reservoir.counts[int(value)] = int(count)
        reservoir.total = int(data.get("total", 0))  # type: ignore
        return reservoir


def exact_quantile(values: Sequence[int], q: float) -> int:
    """Nearest-rank quantile by sorting — the reconciliation oracle."""
    if not values:
        return 0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile q must be in [0, 1], got {q!r}")
    ordered = sorted(values)
    rank = max(1, math.ceil(round(q * len(ordered), 9)))
    return ordered[rank - 1]


# ----------------------------------------------------------------------
# Record reconstruction
# ----------------------------------------------------------------------

def durable_frontier(persist_log) -> Tuple[List[int], List[int]]:
    """``(event_ids, frontier)`` arrays for durability lookups.

    Built from the youngest-store event id each persist record carries
    per word. For one word, the persist that makes a store durable is
    the *first completing* persist carrying a store at least as young
    (an older value never re-establishes durability; a younger one
    supersedes it) — a suffix-min of ``complete_time`` over the word's
    records in event order. Across words, "everything below event id
    ``E`` is durable" is the max of those per-store durable times — a
    prefix max over the merged event order. The result:
    ``frontier[bisect_left(event_ids, E) - 1]`` is the cycle by which
    every persisted store with event id ``< E`` had drained.
    """
    by_word: Dict[int, List[Tuple[int, int]]] = {}
    for record in persist_log:
        complete = record.complete_time
        for addr, (_value, event) in record.words:
            by_word.setdefault(addr, []).append((event, complete))
    entries: List[Tuple[int, int]] = []
    for pairs in by_word.values():
        pairs.sort()
        durable_time = 0
        for event, complete in reversed(pairs):
            durable_time = (complete if durable_time == 0
                            else min(durable_time, complete))
            entries.append((event, durable_time))
    entries.sort()
    event_ids: List[int] = []
    frontier: List[int] = []
    running = 0
    for event, durable_time in entries:
        running = max(running, durable_time)
        event_ids.append(event)
        frontier.append(running)
    return event_ids, frontier


def durable_at(event_ids: List[int], frontier: List[int],
               completion: int, event_mark: int) -> int:
    """Cycle at which a request with this span is durable.

    ``event_mark`` is the request's event frontier (the global event
    count recorded at its boundary op); all the request's stores have
    smaller event ids.
    """
    position = bisect.bisect_left(event_ids, event_mark)
    if position == 0:
        return completion
    return max(completion, frontier[position - 1])


def build_records(spec, config, spans,
                  persist_log=()) -> List[RequestRecord]:
    """Reconstruct every request span from a run's SpanTracker.

    Each thread's lane must hold exactly ``spec.requests_per_thread``
    boundary clocks — a short lane means the run finished without
    spans enabled.
    """
    from repro.workloads.kvservice import arrival_times

    compute = config.compute_cycles_per_op
    event_ids, frontier = durable_frontier(persist_log)
    records: List[RequestRecord] = []
    for thread_id, lane in enumerate(spans.boundaries):
        if len(lane) != spec.requests_per_thread:
            raise ValueError(
                f"thread {thread_id} recorded {len(lane)} request "
                f"boundaries, spec expects {spec.requests_per_thread} "
                f"— was the run executed with spans enabled?")
        marks = spans.event_marks[thread_id]
        arrivals = arrival_times(spec, thread_id)
        vfinish = 0
        previous_end = 0
        for index, boundary in enumerate(lane):
            dispatch = previous_end
            completion = boundary
            arrival = arrivals[index]
            vstart = max(arrival, vfinish)
            vfinish = vstart + (completion - dispatch)
            records.append(RequestRecord(
                thread_id=thread_id, index=index,
                dispatch=dispatch, completion=completion,
                durable=durable_at(event_ids, frontier, completion,
                                   marks[index]),
                arrival=arrival, vstart=vstart))
            # The boundary op itself costs 1 + compute cycles; the
            # next request dispatches right after it.
            previous_end = boundary + 1 + compute
    return records


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------

def slo_summary(records: Sequence[RequestRecord],
                makespan: int) -> Dict[str, object]:
    """The flat SLO dict (BENCH_kv.json / fig_kv rows).

    Metric names deliberately match the history classifier's SLO
    markers: ``p50``/``p99``/``p999`` gate as latency (lower-better,
    tolerance), ``throughput`` as quality (higher-better).
    """
    latencies = LatencyReservoir()
    durables = LatencyReservoir()
    for record in records:
        latencies.observe(record.latency)
        durables.observe(record.durable_latency)
    summary: Dict[str, object] = {
        "requests": len(records),
        "makespan": makespan,
        "throughput_rpkc": round(len(records) / makespan * 1000.0, 4)
        if makespan else 0.0,
        "latency": {name: latencies.quantile(q)
                    for name, q in SLO_QUANTILES},
        "durable_latency": {name: durables.quantile(q)
                            for name, q in SLO_QUANTILES},
    }
    summary["latency"]["mean"] = round(latencies.mean, 2)
    summary["latency"]["max"] = latencies.max
    summary["durable_latency"]["max_lag"] = max(
        (r.durable_lag for r in records), default=0)
    return summary


def rto_summary(result, num_points: int = 8,
                seed: int = 0) -> Dict[str, object]:
    """Crash-RTO metering over sampled persist-log prefixes.

    Per crash point: does null recovery succeed, how many cycles does
    the recovery scan cost, and how many requests had completed but
    were not yet durable (lost work on an un-synced crash). Requests
    completed/lost need spans; without them pass records=().
    """
    from repro.core.recovery import crash_points

    log = result.nvm.persist_log()
    records = getattr(result, "_slo_records", ())
    completions = sorted(r.completion for r in records)
    durables = sorted(r.durable for r in records)
    points = crash_points(len(log), num_points, seed)
    rtos: List[int] = []
    lost: List[int] = []
    recovered = 0
    for prefix in points:
        crash_cycle = log[prefix - 1].complete_time if prefix else 0
        image = result.nvm.image_after_prefix(prefix)
        report = result.structure.validate_image(image)
        if report.ok:
            recovered += 1
        rtos.append(RTO_BASE_CYCLES
                    + RTO_SCAN_CYCLES_PER_WORD * len(image))
        if completions:
            completed = bisect.bisect_right(completions, crash_cycle)
            durable = bisect.bisect_right(durables, crash_cycle)
            lost.append(completed - durable)
    summary: Dict[str, object] = {
        "attempts": len(points),
        "recovered": recovered,
        "recovered_fraction": round(recovered / len(points), 4)
        if points else 0.0,
        "rto": {
            "mean_cycles": round(sum(rtos) / len(rtos), 1) if rtos else 0,
            "max_cycles": max(rtos) if rtos else 0,
        },
    }
    if lost:
        summary["lost_requests"] = {
            "mean": round(sum(lost) / len(lost), 2),
            "max": max(lost),
        }
    return summary


def service_report(result, spans,
                   num_crash_points: Optional[int] = None,
                   crash_seed: int = 0) -> Dict[str, object]:
    """The full per-run SLO payload (worker-side entry point).

    ``result`` is a finished :class:`SimulationResult` of a
    :class:`KVServiceSpec` run, ``spans`` its observer's SpanTracker.
    """
    records = build_records(result.spec, result.config, spans,
                            persist_log=result.nvm.persist_log())
    payload = slo_summary(records, result.makespan)
    if num_crash_points is not None:
        result._slo_records = records
        try:
            payload["recovery"] = rto_summary(result, num_crash_points,
                                              crash_seed)
        finally:
            del result._slo_records
    return payload


# ----------------------------------------------------------------------
# Windowed series (sparklines) and exports
# ----------------------------------------------------------------------

def completion_series(records: Sequence[RequestRecord],
                      interval: int) -> List[int]:
    """Requests completed per ``interval``-cycle window."""
    if interval <= 0:
        raise ValueError("interval must be positive")
    if not records:
        return []
    last = max(r.completion for r in records)
    series = [0] * (last // interval + 1)
    for record in records:
        series[record.completion // interval] += 1
    return series


def latency_p99_series(records: Sequence[RequestRecord],
                       interval: int) -> List[float]:
    """Windowed p99 open-loop latency (Histogram-interpolated).

    Uses :meth:`Histogram.quantile` — bucketed interpolation is plenty
    for a sparkline, and it exercises the same histogram machinery
    every other consumer uses.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    if not records:
        return []
    last = max(r.completion for r in records)
    histograms = [Histogram() for _ in range(last // interval + 1)]
    for record in records:
        histograms[record.completion // interval].observe(record.latency)
    return [h.quantile(0.99) if h.count else 0.0 for h in histograms]


def write_slo_csv(records: Sequence[RequestRecord], handle) -> int:
    """Per-request CSV (one row per request); returns the row count."""
    import csv

    writer = csv.writer(handle)
    writer.writerow(["thread", "index", "arrival", "dispatch",
                     "completion", "durable", "service", "latency",
                     "durable_latency"])
    ordered = sorted(records, key=lambda r: (r.thread_id, r.index))
    for r in ordered:
        writer.writerow([r.thread_id, r.index, r.arrival, r.dispatch,
                         r.completion, r.durable, r.service, r.latency,
                         r.durable_latency])
    return len(ordered)


def chrome_request_events(records: Sequence[RequestRecord]
                          ) -> List[Dict[str, object]]:
    """Request spans as Chrome trace events (ph="X", own process).

    Mergeable with the core-op trace: requests live under their own
    pid so the trace viewer shows a ``requests`` process with one
    client track per thread, timestamps monotone per track.
    """
    events: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": REQUEST_PID, "tid": 0,
        "args": {"name": "requests"},
    }]
    threads = sorted({r.thread_id for r in records})
    for tid in threads:
        events.append({"name": "thread_name", "ph": "M",
                       "pid": REQUEST_PID, "tid": tid,
                       "args": {"name": f"client{tid}"}})
    for r in sorted(records, key=lambda r: (r.thread_id, r.dispatch)):
        events.append({
            "name": f"req{r.index}", "cat": "request", "ph": "X",
            "ts": r.dispatch, "dur": max(r.service, 1),
            "pid": REQUEST_PID, "tid": r.thread_id,
            "args": {"latency": r.latency,
                     "durable_latency": r.durable_latency,
                     "arrival": r.arrival},
        })
    return events


def merged_reservoirs(dicts: Iterable[Dict[str, object]]
                      ) -> LatencyReservoir:
    """Merge serialized reservoirs (sweep-level aggregation)."""
    result = LatencyReservoir()
    for data in dicts:
        result.merge(LatencyReservoir.from_dict(data))
    return result
