"""Request spans: per-request boundary clocks for service workloads.

The KV-service client generator (:mod:`repro.workloads.kvservice`)
terminates every request with a one-cycle ``work`` op whose ``site``
is the module constant :data:`REQUEST_BOUNDARY`. Both execution loops
— the reference heap loop and the batch engine — test that marker by
*identity* (``op.site is REQUEST_BOUNDARY``), a single pointer compare
inside the already-guarded telemetry branch, and append two integers
to the thread's lanes in a :class:`SpanTracker`: the op's pre-advance
clock and the global memory-event count at that moment.

Those two integers per request reconstruct the full span: the boundary
op always costs ``1 + compute_cycles_per_op``, so request ``i`` on a
thread with boundary clocks ``b`` was dispatched at
``b[i-1] + 1 + compute`` (request 0 at the thread's start clock) and
completed at ``b[i]``. The event count is the request's *event
frontier* — every store the thread executed for this request has a
smaller event id — which is what lets the SLO layer compute when the
request's effects became durable even under lazy mechanisms that issue
the covering persists long after the request completed (the persist
log records the youngest store event per persisted word). Arrival
times and the durable point are reconstructed *post hoc* by
:mod:`repro.obs.slo` — the hot path never computes them, which is what
keeps makespans bit-identical with span tracking on (pinned by the obs
selftest) and the batch engine engaged (``spans`` is invisible to
:func:`repro.core.fastsim.check`).

Spans are opt-in (``Observer(spans=True)``) and the tracker is a
FastObs-style flat table: two plain per-thread ``list.append`` calls
per *request* (not per op) in the loop, everything else derived at
read time.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Site marker of a request-terminating op. Workloads must reference
#: the constant itself (never a copy of the string): the execution
#: loops compare by identity, so only ops yielded with this exact
#: object close a request span.
REQUEST_BOUNDARY = "kv.request.boundary"


class SpanTracker:
    """Per-thread request-boundary records, written by the schedulers.

    ``boundaries[tid][i]`` is the pre-advance clock of thread ``tid``'s
    ``i``-th request-boundary op — i.e. the simulated cycle at which
    request ``i`` finished its structure operation and (for PUTs) its
    value serialization, just before the boundary op's own
    ``1 + compute`` cycles are charged. ``event_marks[tid][i]`` is the
    global memory-event count at the same moment (the request's event
    frontier). Both loops record them at exactly the same execution
    point, so the lanes are bit-identical between the reference loop
    and the batch engine (pinned by tests/test_kvservice.py).
    """

    __slots__ = ("boundaries", "event_marks")

    def __init__(self) -> None:
        self.boundaries: List[List[int]] = []
        self.event_marks: List[List[int]] = []

    def lanes(self, num_threads: int
              ) -> Tuple[List[List[int]], List[List[int]]]:
        """The per-thread ``(boundaries, event_marks)`` lanes, grown to
        ``num_threads`` entries.

        Called once per run before the execution loop starts; the loop
        then appends by index without further checks.
        """
        while len(self.boundaries) < num_threads:
            self.boundaries.append([])
            self.event_marks.append([])
        return self.boundaries, self.event_marks

    def request_count(self) -> int:
        return sum(len(lane) for lane in self.boundaries)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON payload (rides ``RunSummary.obs["spans"]``)."""
        return {
            "boundaries": {str(tid): list(lane)
                           for tid, lane in enumerate(self.boundaries)
                           if lane},
            "event_marks": {str(tid): list(lane)
                            for tid, lane in enumerate(self.event_marks)
                            if lane},
            "requests": self.request_count(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SpanTracker":
        tracker = cls()
        lanes: Dict[str, List[int]] = data.get("boundaries", {})  # type: ignore
        marks: Dict[str, List[int]] = data.get("event_marks", {})  # type: ignore
        if lanes:
            num_threads = max(int(tid) for tid in lanes) + 1
            tracker.lanes(num_threads)
            for tid, lane in lanes.items():
                tracker.boundaries[int(tid)] = [int(b) for b in lane]
            for tid, lane in marks.items():
                tracker.event_marks[int(tid)] = [int(m) for m in lane]
        return tracker
