"""Metrics registry: named counters and histograms.

The registry is deliberately primitive — a flat namespace of integer
counters plus fixed power-of-two-bucket histograms — because its values
must (a) serialize losslessly into a :class:`~repro.exp.runner.RunSummary`
(plain dicts of ints survive pickling between worker processes and the
on-disk result cache), and (b) merge across runs for sweep-level
aggregation without any schema negotiation.

Naming convention: dotted paths, most-general first
(``persist.lines``, ``stall.inter-thread``, ``lrp.engine_runs``).
Per-core counters append a ``.c<id>`` leaf
(``sched.compute_cycles.c3``) so the attribution report can recover
the per-core split with a prefix scan.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional


class Histogram:
    """Streaming histogram with power-of-two buckets.

    Bucket ``k`` counts observations ``v`` with
    ``2**(k-1) < v <= 2**k`` (bucket 0 counts ``v <= 1``); negative
    values are clamped into bucket 0, and ``clamped`` counts how often
    that happened — a silently-clamping histogram would hide sign bugs
    in instrumentation. Alongside the buckets the exact count / sum /
    min / max are tracked, so means are not quantized.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "clamped")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.buckets: Dict[int, int] = {}
        self.clamped = 0

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value < 0:
            self.clamped += 1
        bucket = max(0, int(value) - 1).bit_length() if value > 1 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the power-of-two buckets.

        Uses linear interpolation inside the target bucket, with the
        bucket bounds clamped to the exact observed ``min``/``max`` so
        single-bucket histograms (and the extremes ``q=0``/``q=1``)
        come out exact. Clamped negatives live in bucket 0, whose
        lower bound is the true (possibly negative) ``min``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        if q == 0.0:
            return float(self.min)
        if q == 1.0:
            return float(self.max)
        # Nearest-rank target: the smallest rank r with r >= q * count
        # (rounded to absorb float noise like 0.99 * 100 -> 99.0000...01).
        rank = max(1, math.ceil(round(q * self.count, 9)))
        cumulative = 0
        for bucket, population in sorted(self.buckets.items()):
            if cumulative + population < rank:
                cumulative += population
                continue
            if bucket == 0:
                lo, hi = float(self.min), 1.0
            else:
                lo, hi = float(2 ** (bucket - 1)), float(2 ** bucket)
            lo = max(lo, float(self.min))
            hi = min(hi, float(self.max))
            if hi < lo:
                hi = lo
            fraction = (rank - cumulative) / population
            return lo + fraction * (hi - lo)
        return float(self.max)

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
            "clamped": self.clamped,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        hist = cls()
        hist.count = int(data["count"])          # type: ignore[arg-type]
        hist.total = int(data["sum"])            # type: ignore[arg-type]
        hist.min = data["min"]                   # type: ignore[assignment]
        hist.max = data["max"]                   # type: ignore[assignment]
        hist.buckets = {int(k): int(v)
                        for k, v in data["buckets"].items()}  # type: ignore
        # Absent in exports from before the field existed.
        hist.clamped = int(data.get("clamped", 0))  # type: ignore[arg-type]
        return hist

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.clamped += other.clamped
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for bucket, count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + count


class MetricsRegistry:
    """A flat namespace of counters and histograms for one run."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: int) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- reading -------------------------------------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """All counters whose name starts with ``prefix``."""
        return {name: value for name, value in self.counters.items()
                if name.startswith(prefix)}

    # -- (de)serialization and merging ---------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {name: hist.to_dict()
                           for name, hist in sorted(self.histograms.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MetricsRegistry":
        registry = cls()
        registry.counters = dict(data.get("counters", {}))  # type: ignore
        registry.histograms = {
            name: Histogram.from_dict(hist)
            for name, hist in data.get("histograms", {}).items()  # type: ignore
        }
        return registry

    def merge(self, other: "MetricsRegistry") -> None:
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(hist)


def merged_registries(dicts: Iterable[Dict[str, object]]) -> MetricsRegistry:
    """Merge serialized registries (e.g. from many runs of a sweep)."""
    result = MetricsRegistry()
    for data in dicts:
        result.merge(MetricsRegistry.from_dict(data))
    return result


def top_counters(registry: MetricsRegistry, prefix: str,
                 limit: int = 5) -> List[str]:
    """The largest counters under a prefix, rendered ``name=value``."""
    items = sorted(registry.counters_with_prefix(prefix).items(),
                   key=lambda kv: (-kv[1], kv[0]))[:limit]
    return [f"{name}={value}" for name, value in items]
