"""Worker pool: shard-affine draining, work stealing, lease recovery.

A worker is a loop over :meth:`WorkQueue.claim` — own shard first,
then the longest pending shard — executing each claimed job through
the exact :func:`repro.exp.runner.execute_job` path every figure
already uses. The completion discipline is what makes campaigns
resumable with **zero re-execution**:

1. check the campaign cache (read-through to ``$REPRO_CACHE_SHARED``)
   — a hit is journaled as ``cached`` and never simulated;
2. on a miss, simulate, then ``cache.put`` **before** the results
   journal append **before** the ``done`` rename. A SIGKILL between
   any two steps leaves either (a) nothing (clean re-run), (b) a
   cache entry (resume -> cache hit, no re-run), or (c) cache entry
   + journal line (resume -> cache hit; the duplicate journal line is
   collapsed by digest, and determinism makes both lines identical).

The coordinator (:func:`run_campaign`) spawns N worker processes,
sweeps the queue for leases whose workers died (its own children are
checked through the process handles, everything else through pid
probes), and returns when every ticket is terminal. Killing a worker
-- or the whole coordinator — therefore never loses work: the next
``run``/``resume`` repairs the queue and continues.

:class:`ServiceRunner` adapts a campaign directory to the
:class:`~repro.exp.runner.ExperimentRunner` interface (``run(jobs)``
-> summaries in submission order), which is all
``repro.bench.figures --service DIR`` needs to execute its grid as a
crash-resumable campaign.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.exp import heartbeat
from repro.exp.runner import Job, RunSummary, execute_job
from repro.exp.progress import NullProgress
from repro.exp.service.campaign import (
    Campaign,
    CampaignStatus,
    fingerprint,
    open_campaign,
    open_or_create,
)
from repro.exp.service.queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    _write_json,
    default_pid_alive,
)


@dataclasses.dataclass
class WorkerStats:
    """What one worker did over its lifetime."""

    worker: str = ""
    executed: int = 0
    cache_hits: int = 0
    stolen: int = 0
    failures: int = 0
    recovered_leases: int = 0

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def _record(ticket, summary: RunSummary, worker: str,
            cached: bool) -> Dict[str, object]:
    return {
        "digest": ticket.digest,
        "seq": ticket.seq,
        "worker": worker,
        "cached": cached,
        "at": time.time(),
        "fingerprint": fingerprint(summary),
    }


def worker_loop(root: str, worker_id: int, *,
                poll: float = 0.05,
                campaign: Optional[Campaign] = None) -> WorkerStats:
    """Drain the campaign's queue until every ticket is terminal.

    Runnable in-process (tests, ``--workers 0``) or as the body of a
    spawned worker process. Idle workers sweep for recoverable leases
    (a sibling may have died) between polls, so even a lone survivor
    finishes the whole campaign.
    """
    campaign = campaign or open_campaign(root)
    queue = campaign.queue
    cache = campaign.cache()
    worker = f"w{worker_id}"
    stats = WorkerStats(worker=worker)
    own_heartbeat = heartbeat.job_writer(f"svc-{worker}")
    if own_heartbeat is not None:
        own_heartbeat.update("setup")
    jobs_done = 0
    while True:
        ticket = queue.claim(worker, preferred_shard=worker_id)
        if ticket is None:
            status = campaign.status()
            if status.finished:
                break
            recovery = queue.recover()
            stats.recovered_leases += recovery.requeued
            if recovery.requeued == 0:
                time.sleep(poll)
            continue
        if ticket.stolen:
            stats.stolen += 1
        job = campaign.load_job(ticket.digest)
        key = job.key()
        summary = cache.get(key)
        cached = summary is not None
        if cached:
            stats.cache_hits += 1
            # Satellite: a job skipped via the cache still finished —
            # flush a terminal heartbeat so `repro.exp --watch` never
            # renders it as running (e.g. a stale file left by the
            # killed run this resume is recovering from).
            job_heartbeat = heartbeat.job_writer(job.label())
            if job_heartbeat is not None:
                job_heartbeat.update("done", cached=True,
                                     makespan=summary.makespan)
        else:
            try:
                summary = execute_job(job)
            except Exception as exc:
                stats.failures += 1
                queue.fail(ticket, repr(exc))
                continue
            # Publish BEFORE journal/done: once any later step is
            # visible, the cache entry exists, so a crash can never
            # lead to a second execution of this digest.
            cache.put(key, summary)
            stats.executed += 1
        campaign.append_result(_record(ticket, summary, worker, cached))
        queue.complete(ticket, worker, cached)
        jobs_done += 1
        if own_heartbeat is not None:
            own_heartbeat.update("running", jobs_done=jobs_done,
                                 execs=stats.executed)
    cache.flush_stats()
    if own_heartbeat is not None:
        own_heartbeat.update("done", jobs_done=jobs_done,
                             execs=stats.executed)
    _write_stats(root, stats)
    return stats


def _stats_dir(root: str) -> str:
    return os.path.join(root, "worker-stats")


def _write_stats(root: str, stats: WorkerStats) -> None:
    try:
        directory = _stats_dir(root)
        os.makedirs(directory, exist_ok=True)
        _write_json(os.path.join(directory, f"{stats.worker}.json"),
                    stats.as_dict())
    except OSError:
        pass


def read_worker_stats(root: str) -> List[Dict[str, object]]:
    """Per-worker statistics written at worker exit (best effort)."""
    stats: List[Dict[str, object]] = []
    directory = _stats_dir(root)
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return stats
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(directory, name)) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(data, dict):
            stats.append(data)
    return stats


def _worker_entry(root: str, worker_id: int, poll: float) -> None:
    worker_loop(root, worker_id, poll=poll)


@dataclasses.dataclass
class RunReport:
    """Outcome of one :func:`run_campaign` invocation."""

    status: CampaignStatus
    recovered_leases: int
    elapsed_seconds: float
    workers: int
    worker_stats: List[Dict[str, object]]

    @property
    def ok(self) -> bool:
        return self.status.complete


def run_campaign(root: str, workers: int = 1, *,
                 poll: float = 0.2,
                 use_heartbeats: bool = True,
                 on_status: Optional[Callable[[CampaignStatus], None]]
                 = None) -> RunReport:
    """Run (or resume) a campaign to completion.

    Resume *is* run: the pre-flight repairs any mid-submit crash
    (missing tickets), re-queues leases of dead workers, and lets the
    cache/journal skip everything already finished. ``workers=0``
    drains in-process (deterministic single-threaded mode, used by
    the selftest baseline); ``workers>=1`` spawns that many worker
    processes and supervises their leases.
    """
    campaign = open_campaign(root)
    campaign.ensure_tickets()
    started = time.time()
    recovery = campaign.queue.recover()
    recovered = recovery.requeued + recovery.exhausted
    env_was_unset = heartbeat.ENV_DIR not in os.environ
    if use_heartbeats and env_was_unset:
        # Scoped to this run: workers inherit the value at fork time,
        # and the finally below restores the parent's environment.
        os.environ[heartbeat.ENV_DIR] = campaign.heartbeat_dir
    try:
        if workers <= 0:
            stats = worker_loop(root, 0, poll=poll, campaign=campaign)
            recovered += stats.recovered_leases
            status = campaign.status()
            if on_status is not None:
                on_status(status)
            return RunReport(status=status, recovered_leases=recovered,
                             elapsed_seconds=time.time() - started,
                             workers=0,
                             worker_stats=[stats.as_dict()])

        processes = [
            multiprocessing.Process(target=_worker_entry,
                                    args=(root, index, poll),
                                    daemon=True)
            for index in range(workers)
        ]
        for process in processes:
            process.start()
        by_pid = {process.pid: process for process in processes}

        def _pid_alive(pid: object) -> bool:
            process = by_pid.get(pid)
            if process is not None:
                # Children must be checked through the handle: a
                # SIGKILL'd child stays a zombie (kill(pid, 0) still
                # succeeds) until is_alive() reaps it.
                return process.is_alive()
            return default_pid_alive(pid)

        try:
            while True:
                status = campaign.status()
                if on_status is not None:
                    on_status(status)
                if status.finished:
                    break
                sweep = campaign.queue.recover(pid_alive=_pid_alive)
                recovered += sweep.requeued + sweep.exhausted
                if not any(process.is_alive() for process in processes):
                    sweep = campaign.queue.recover(pid_alive=_pid_alive)
                    recovered += sweep.requeued + sweep.exhausted
                    status = campaign.status()
                    if on_status is not None:
                        on_status(status)
                    break  # every worker died; report what we have
                time.sleep(poll)
        finally:
            for process in processes:
                process.join(timeout=5.0)
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
    finally:
        if use_heartbeats and env_was_unset:
            os.environ.pop(heartbeat.ENV_DIR, None)

    status = campaign.status()
    return RunReport(status=status, recovered_leases=recovered,
                     elapsed_seconds=time.time() - started,
                     workers=workers,
                     worker_stats=read_worker_stats(root))


class ServiceRunner:
    """An :class:`~repro.exp.runner.ExperimentRunner`-shaped facade
    over a campaign directory.

    ``run(jobs)`` submits the batch (digest-idempotent), drives the
    worker pool to completion, and returns summaries in submission
    order from the campaign cache — so ``repro.bench.figures
    --service DIR`` gets crash-resumable sweeps without changing a
    line of figure logic. ``cache_hits``/``cache_misses`` mirror the
    runner's bookkeeping (journal-skips and cache read-throughs count
    as hits), keeping the figures' cold/warm timing labels honest.
    """

    def __init__(self, root: str, workers: int = 1, *,
                 num_shards: Optional[int] = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 poll: float = 0.2,
                 progress: Optional[NullProgress] = None) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.root = root
        self.workers = workers
        self.num_shards = num_shards or max(1, workers)
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.poll = poll
        self.progress = progress or NullProgress()
        self.cache = None  # set on first run (campaign-local cache)
        self.cache_hits = 0
        self.cache_misses = 0
        self.campaign: Optional[Campaign] = None

    def run(self, jobs: Sequence[Job], label: str = ""
            ) -> List[RunSummary]:
        jobs = list(jobs)
        if not jobs:
            return []
        campaign = open_or_create(
            self.root, jobs, num_shards=self.num_shards,
            lease_ttl=self.lease_ttl, max_attempts=self.max_attempts)
        self.campaign = campaign
        self.cache = campaign.cache()
        already = set(campaign.results_by_digest())
        self.progress.start(len(jobs), label)
        report = run_campaign(self.root, workers=self.workers,
                              poll=self.poll)
        if not report.ok:
            failures = campaign.queue.failed_tickets()
            detail = "; ".join(
                f"{digest[:12]}...: {payload.get('error', '?')}"
                for digest, payload in sorted(failures.items())[:3])
            raise RuntimeError(
                f"campaign did not complete: {report.status.failed} "
                f"failed, {report.status.pending} pending, "
                f"{report.status.leased} leased"
                + (f" ({detail})" if detail else ""))
        records = campaign.results_by_digest()
        reader = campaign.cache()
        summaries: List[RunSummary] = []
        for job in jobs:
            digest = job.key()
            summary = reader.get(digest)
            if summary is None:
                raise RuntimeError(
                    f"campaign cache lost entry {digest[:12]}... — "
                    "was the cache directory pruned mid-run?")
            summaries.append(summary)
            record = records.get(digest, {})
            hit = digest in already or bool(record.get("cached"))
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            self.progress.job_done(job.label(), cached=hit)
        self.progress.finish()
        return summaries
