"""The five log-free data structures of the paper's evaluation."""

from repro.lfds.base import (
    KEY_MAX,
    KEY_MIN,
    NULL,
    LogFreeStructure,
    RecoveryReport,
    field,
    is_marked,
    mark,
    unmark,
)
from repro.lfds.linkedlist import LinkedList
from repro.lfds.hashmap import HashMap
from repro.lfds.bst import BinarySearchTree
from repro.lfds.nmbst import NMTree
from repro.lfds.skiplist import SkipList
from repro.lfds.queue import MichaelScottQueue

STRUCTURES = {
    cls.name: cls
    for cls in (LinkedList, HashMap, BinarySearchTree, NMTree, SkipList,
                MichaelScottQueue)
}

#: Workload order used throughout the paper's figures. ``bstree`` is
#: the Natarajan-Mittal external tree (SynchroBench's BST);
#: ``bstree_tomb`` is a simpler tombstone-delete variant kept for
#: ablations and extra correctness coverage.
WORKLOAD_NAMES = ["linkedlist", "hashmap", "bstree", "skiplist", "queue"]


def structure_by_name(name: str):
    """Look up an LFD class by its workload name."""
    try:
        return STRUCTURES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}"
        ) from None


__all__ = [
    "KEY_MAX",
    "KEY_MIN",
    "NULL",
    "LogFreeStructure",
    "RecoveryReport",
    "field",
    "is_marked",
    "mark",
    "unmark",
    "LinkedList",
    "HashMap",
    "BinarySearchTree",
    "SkipList",
    "MichaelScottQueue",
    "STRUCTURES",
    "WORKLOAD_NAMES",
    "structure_by_name",
]
