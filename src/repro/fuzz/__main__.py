"""``python -m repro.fuzz`` — persistency-fuzzing campaigns.

Three modes:

* **campaign** (default): one coverage-guided campaign against a
  workload x mechanism. Exit code enforces the Figure-1 contract —
  an RP-enforcing mechanism exits 0 only on a clean campaign (any
  counterexample is a mechanism bug, reported loudly with its repro
  file); ARP/NOP exit 0 only when at least one minimized
  counterexample was found (otherwise the fuzzer lost its teeth).
* ``--replay FILE``: re-derive a saved counterexample's verdict; exit
  0 iff the recorded violation reproduces.
* ``--selftest``: the end-to-end contract demonstration — an ARP and a
  NOP campaign on the hashmap must find and shrink counterexamples
  (strictly smaller than the raw findings, replayable from their repro
  files, bit-identical across a re-run), while SB/BB/LRP campaigns
  must come back clean. Writes campaign throughput (execs/sec,
  coverage features) to ``--bench-out`` (default BENCH_fuzz.json).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import List, Optional, Sequence

from repro.fuzz.engine import CampaignConfig, CampaignResult, run_campaign
from repro.fuzz.reprofile import replay_repro


def _print_campaign(result: CampaignResult) -> None:
    report = result.report()
    print(json.dumps(report, indent=2, sort_keys=True))
    for ce in result.counterexamples:
        where = ce.get("repro_path", "(not written; pass --out DIR)")
        print(f"counterexample: kind={ce['kind']} "
              f"nudges={ce['nudges']} prefix={ce['prefix']} -> {where}")
    if result.enforces_rp and not result.clean:
        print(f"FATAL: {result.config.mechanism} claims Release "
              f"Persistency but {len(result.candidates)} crash "
              "point(s) failed null recovery", file=sys.stderr)


def _campaign_main(args) -> int:
    config = CampaignConfig(
        workload=args.workload, mechanism=args.mechanism,
        seed=args.seed, budget=args.budget, jobs=args.jobs,
        num_threads=args.threads, initial_size=args.size,
        ops_per_thread=args.ops, crash_samples=args.crash_samples,
        continuation_checks=args.continuation_checks,
        max_counterexamples=args.max_counterexamples,
        corpus_dir=args.corpus, out_dir=args.out,
        verbose=not args.quiet)
    result = run_campaign(config)
    _print_campaign(result)
    return 0 if result.contract_ok else 1


def _replay_main(path: str) -> int:
    outcome = replay_repro(path)
    print(json.dumps(outcome, indent=2, sort_keys=True))
    status = "reproduced" if outcome["ok"] else "DID NOT reproduce"
    print(f"replay of {path}: {status}")
    return 0 if outcome["ok"] else 1


def _fingerprint(result: CampaignResult) -> dict:
    """The deterministic essence of a campaign (for the identity pin)."""
    return {
        "coverage": result.coverage.to_list(),
        "corpus": result.corpus.digests(),
        "counterexamples": [
            (list(ce["mutation"].nudges), ce["prefix"],
             ce["problems"][:1])
            for ce in result.counterexamples
        ],
    }


def run_selftest(jobs: int, bench_out: str, out_dir: Optional[str],
                 verbose: bool) -> dict:
    """The end-to-end contract + determinism demonstration."""
    campaigns: List[dict] = []
    checks: List[tuple] = []

    def base(mechanism: str, budget: int, seed: int = 1) -> CampaignConfig:
        return CampaignConfig(
            workload="hashmap", mechanism=mechanism, seed=seed,
            budget=budget, jobs=jobs, verbose=verbose)

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
        repro_dir = out_dir or os.path.join(tmp, "repros")

        # Weak mechanisms: must find and shrink counterexamples.
        weak_results = {}
        for mechanism, budget in (("arp", 24), ("nop", 12)):
            config = CampaignConfig(
                **{**base(mechanism, budget).__dict__,
                   "out_dir": repro_dir,
                   "corpus_dir": os.path.join(tmp, f"corpus-{mechanism}")})
            result = run_campaign(config)
            weak_results[mechanism] = result
            campaigns.append(result.report())
            checks.append((f"{mechanism}_found_counterexample",
                           bool(result.counterexamples)))
            shrunk = [ce for ce in result.counterexamples
                      if ce.get("shrunk")]
            checks.append((f"{mechanism}_shrunk_strictly_smaller",
                           any(ce["strictly_smaller"] for ce in shrunk)))
            checks.append((f"{mechanism}_cut_checker_confirms",
                           any(ce["verdict"].get("cut_violations", 0) > 0
                               for ce in shrunk)))

        # Replay: every written ARP repro must reproduce its verdict.
        arp = weak_results["arp"]
        replays = [replay_repro(ce["repro_path"])
                   for ce in arp.counterexamples
                   if "repro_path" in ce]
        checks.append(("repro_files_replay",
                       bool(replays) and all(r["ok"] for r in replays)))

        # Determinism: the identical ARP campaign, re-run (and through
        # a different corpus dir), must be bit-identical.
        rerun = run_campaign(CampaignConfig(
            **{**base("arp", 24).__dict__,
               "corpus_dir": os.path.join(tmp, "corpus-arp-rerun")}))
        checks.append(("deterministic_rerun",
                       _fingerprint(arp) == _fingerprint(rerun)))

        # Enforcing mechanisms: must come back clean.
        for mechanism in ("sb", "bb", "lrp"):
            result = run_campaign(base(mechanism, 8))
            campaigns.append(result.report())
            checks.append((f"{mechanism}_clean", result.clean))

    ok = all(passed for _name, passed in checks)
    report = {
        "campaigns": campaigns,
        "checks": {name: passed for name, passed in checks},
        "total_executions": sum(c["executions"] for c in campaigns),
        "total_seconds": round(sum(c["seconds"] for c in campaigns), 3),
        "ok": ok,
    }
    if bench_out:
        with open(bench_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Coverage-guided persistency fuzzing: schedule + "
                    "crash-point exploration with counterexample "
                    "shrinking.")
    parser.add_argument("--selftest", action="store_true",
                        help="run the end-to-end contract demonstration")
    parser.add_argument("--replay", metavar="FILE", default=None,
                        help="replay a saved counterexample file")
    parser.add_argument("--workload", default="hashmap",
                        help="LFD under test (default: %(default)s)")
    parser.add_argument("--mechanism", default="arp",
                        help="persistency mechanism (default: %(default)s)")
    parser.add_argument("--budget", type=int, default=48, metavar="N",
                        help="total executions (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=1, metavar="S",
                        help="campaign seed (default: %(default)s)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default: serial; "
                             "never changes results)")
    parser.add_argument("--threads", type=int, default=4,
                        help="workload threads (default: %(default)s)")
    parser.add_argument("--size", type=int, default=64,
                        help="initial structure size (default: %(default)s)")
    parser.add_argument("--ops", type=int, default=8,
                        help="ops per thread (default: %(default)s)")
    parser.add_argument("--crash-samples", type=int, default=16,
                        help="crash prefixes per execution "
                             "(default: %(default)s)")
    parser.add_argument("--continuation-checks", type=int, default=0,
                        help="recover-and-continue replays per "
                             "execution (default: off)")
    parser.add_argument("--max-counterexamples", type=int, default=2,
                        help="findings to shrink (default: %(default)s)")
    parser.add_argument("--corpus", metavar="DIR", default=None,
                        help="persist the corpus + coverage map here")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="write counterexample repro files here")
    parser.add_argument("--bench-out", metavar="FILE",
                        default="BENCH_fuzz.json",
                        help="selftest throughput JSON "
                             "(default: %(default)s)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the progress meter")
    args = parser.parse_args(argv)

    if args.replay:
        return _replay_main(args.replay)
    if args.selftest:
        report = run_selftest(args.jobs, args.bench_out, args.out,
                              verbose=not args.quiet)
        print(json.dumps(report, indent=2, sort_keys=True))
        print(f"\nselftest {'PASSED' if report['ok'] else 'FAILED'}: "
              f"wrote {args.bench_out}")
        return 0 if report["ok"] else 1
    return _campaign_main(args)


if __name__ == "__main__":
    sys.exit(main())
