"""The ``skiplist`` workload: a lock-free skip list.

Follows the standard lock-free skip list design (Fraser/Herlihy-Shavit,
as used by SynchroBench's skip lists): the level-0 list is the source
of truth and its insert/mark CASes are the linearization points; upper
levels are a probabilistic index maintained with best-effort CASes and
helped unlinking in ``find``.

One reproduction-friendly twist: a node's tower height is derived
deterministically from its key (a hash-based geometric distribution)
instead of an RNG, so all mechanisms and thread counts build an
identical index shape for a given key sequence — removing a noise
source from the Figure 5/7/8 comparisons without changing the access
pattern.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.consistency.events import MemOrder
from repro.core.thread import cas, load, store
from repro.lfds.base import (
    KEY_MIN,
    LogFreeStructure,
    NULL,
    OpGen,
    RecoveryReport,
    Word,
    alloc_header_write,
    field,
    free_header_write,
    header_addr,
    is_marked,
    mark,
    unmark,
)
from repro.memory.address import WORD_BYTES, HeapAllocator

# Node layout: [key, value, level, next_0 .. next_{level-1}]
KEY, VALUE, LEVEL = 0, 1, 2
HEADER_WORDS = 3
# Byte offsets inlined in the traversal/build hot paths:
# field(node, KEY) == node, next-pointer for ``level`` is
# node + _NEXT_BASE + 8 * level.
_KEY_OFF = KEY * 8
_NEXT_BASE = HEADER_WORDS * 8


def _mix(key: int) -> int:
    """Deterministic 64-bit hash (splitmix64 finalizer)."""
    h = (key * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 30
    h = (h * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 27
    h = (h * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return h ^ (h >> 31)


class SkipList(LogFreeStructure):
    """Lock-free skip list with key-deterministic tower heights."""

    name = "skiplist"

    def __init__(self, allocator: HeapAllocator, max_level: int = 14,
                 max_nodes: int = 1 << 22) -> None:
        super().__init__(allocator)
        self.max_level = max_level
        self._max_nodes = max_nodes
        # Head tower: full-height sentinel with key KEY_MIN.
        self.head = allocator.alloc(HEADER_WORDS + max_level,
                                    line_align=True)

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------

    def _next_addr(self, node: int, level: int) -> int:
        return field(node, HEADER_WORDS + level)

    def level_for(self, key: int) -> int:
        """Tower height for ``key`` (geometric, p=1/2, deterministic)."""
        bits = _mix(key)
        level = 1
        while bits & 1 and level < self.max_level:
            level += 1
            bits >>= 1
        return level

    def head_initial_memory(self) -> Dict[int, Word]:
        """Head tower contents for an empty skip list."""
        memory: Dict[int, Word] = {
            field(self.head, KEY): KEY_MIN,
            field(self.head, VALUE): 0,
            field(self.head, LEVEL): self.max_level,
        }
        for level in range(self.max_level):
            memory[self._next_addr(self.head, level)] = NULL
        return memory

    # ------------------------------------------------------------------
    # Traversal with helping
    # ------------------------------------------------------------------

    def find(self, key: int) -> OpGen:
        """Per-level predecessors/successors of ``key``, unlinking
        marked nodes encountered along the way."""
        while True:
            retry = False
            preds: List[int] = [self.head] * self.max_level
            succs: List[int] = [NULL] * self.max_level
            pred = self.head
            for level in range(self.max_level - 1, -1, -1):
                next_off = _NEXT_BASE + (level << 3)
                raw = yield load(pred + next_off, MemOrder.ACQUIRE)
                curr = unmark(raw) if raw is not None else NULL
                while True:
                    if curr == NULL:
                        break
                    raw_next = yield load(curr + next_off,
                                          MemOrder.ACQUIRE)
                    if is_marked(raw_next):
                        ok, _ = yield cas(pred + next_off,
                                          curr, unmark(raw_next),
                                          MemOrder.RELEASE)
                        if not ok:
                            retry = True
                            break
                        curr = unmark(raw_next)
                        continue
                    curr_key = yield load(curr + _KEY_OFF)
                    if curr_key < key:
                        pred = curr
                        curr = (unmark(raw_next)
                                if raw_next is not None else NULL)
                    else:
                        break
                if retry:
                    break
                preds[level] = pred
                succs[level] = curr
            if not retry:
                return preds, succs

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def insert(self, key: int, value: int, tid=None) -> OpGen:
        height = self.level_for(key)
        while True:
            preds, succs = yield from self.find(key)
            if succs[0] != NULL:
                found_key = yield load(field(succs[0], KEY))
                if found_key == key:
                    return False
            node = self._alloc_node(HEADER_WORDS + height, tid)
            yield alloc_header_write(node, HEADER_WORDS + height)
            yield store(field(node, KEY), key)
            yield store(field(node, VALUE), value)
            yield store(field(node, LEVEL), height)
            for level in range(height):
                yield store(self._next_addr(node, level), succs[level])
            # Level-0 link: the linearization point.
            ok, _ = yield cas(self._next_addr(preds[0], 0), succs[0],
                              node, MemOrder.RELEASE)
            if not ok:
                continue
            yield from self._link_upper_levels(node, height, preds, succs,
                                               key)
            return True

    def _link_upper_levels(self, node: int, height: int,
                           preds: List[int], succs: List[int],
                           key: int) -> OpGen:
        """Best-effort index linking above level 0."""
        for level in range(1, height):
            attempts = 0
            while attempts < 3:
                succ = succs[level]
                raw_own = yield load(self._next_addr(node, level),
                                     MemOrder.ACQUIRE)
                if is_marked(raw_own):
                    return None   # node concurrently deleted: stop
                if raw_own != succ:
                    ok, _ = yield cas(self._next_addr(node, level),
                                      raw_own, succ, MemOrder.RELEASE)
                    if not ok:
                        attempts += 1
                        continue
                ok, _ = yield cas(self._next_addr(preds[level], level),
                                  succ, node, MemOrder.RELEASE)
                if ok:
                    break
                attempts += 1
                preds, succs = yield from self.find(key)
                if succs[0] != node:
                    return None   # node deleted meanwhile: stop linking
        return None

    def delete(self, key: int) -> OpGen:
        while True:
            _preds, succs = yield from self.find(key)
            node = succs[0]
            if node == NULL:
                return False
            node_key = yield load(field(node, KEY))
            if node_key != key:
                return False
            height = yield load(field(node, LEVEL))
            # Mark the index levels top-down (best effort).
            for level in range(height - 1, 0, -1):
                while True:
                    raw = yield load(self._next_addr(node, level),
                                     MemOrder.ACQUIRE)
                    if is_marked(raw):
                        break
                    ok, _ = yield cas(self._next_addr(node, level), raw,
                                      mark(raw), MemOrder.RELEASE)
                    if ok:
                        break
            # Level-0 mark: the linearization point.
            while True:
                raw = yield load(self._next_addr(node, 0),
                                 MemOrder.ACQUIRE)
                if is_marked(raw):
                    return False  # a concurrent delete won
                ok, _ = yield cas(self._next_addr(node, 0), raw,
                                  mark(raw), MemOrder.RELEASE)
                if ok:
                    yield from self.find(key)  # help the physical unlink
                    # Reclaim the tower (malloc-metadata store).
                    yield free_header_write(node)
                    return True

    def contains(self, key: int) -> OpGen:
        """Traverse the index without helping (read-only)."""
        pred = self.head
        for level in range(self.max_level - 1, -1, -1):
            next_off = _NEXT_BASE + (level << 3)
            raw = yield load(pred + next_off, MemOrder.ACQUIRE)
            curr = unmark(raw) if raw is not None else NULL
            while curr != NULL:
                raw_next = yield load(curr + next_off,
                                      MemOrder.ACQUIRE)
                curr_key = yield load(curr + _KEY_OFF)
                if curr_key < key:
                    pred = curr
                    curr = unmark(raw_next) if raw_next is not None else NULL
                    continue
                if curr_key == key and level == 0:
                    return not is_marked(raw_next)
                break
        return False

    # ------------------------------------------------------------------
    # Direct-memory build
    # ------------------------------------------------------------------

    def build_initial(self, keys: Iterable[int],
                      memory: Dict[int, Word]) -> None:
        memory.update(self.head_initial_memory())
        sorted_keys = sorted(set(keys))
        nodes = []
        alloc = self.allocator.alloc
        level_for = self.level_for
        # field()/header_addr()/_next_addr() inlined: the build runs
        # once per node and dominates setup at paper scales.
        for key in sorted_keys:
            height = level_for(key)
            node = alloc(HEADER_WORDS + height + 1, line_align=True) + 8
            memory[node - 8] = HEADER_WORDS + height
            memory[node] = key
            memory[node + 8] = key + 1
            memory[node + 16] = height
            nodes.append((node, height))
        last_at_level = [self.head] * self.max_level
        for node, height in nodes:
            for level in range(height):
                off = _NEXT_BASE + (level << 3)
                memory[last_at_level[level] + off] = node
                last_at_level[level] = node
        setdefault = memory.setdefault
        for node, height in nodes:
            for level in range(height):
                setdefault(node + _NEXT_BASE + (level << 3), NULL)

    # ------------------------------------------------------------------
    # Recovery validation
    # ------------------------------------------------------------------

    def validate_image(self, image: Dict[int, Word]) -> RecoveryReport:
        problems: List[str] = []
        live: Set[int] = set()
        count = 0
        for level in range(self.max_level):
            prev_key = KEY_MIN
            raw = image.get(self._next_addr(self.head, level))
            if raw is None:
                problems.append(f"head tower level {level} not in NVM")
                continue
            curr = unmark(raw)
            steps = 0
            while curr != NULL:
                steps += 1
                if steps > self._max_nodes:
                    problems.append(f"level {level} chain exceeds bound")
                    break
                key = image.get(field(curr, KEY))
                value = image.get(field(curr, VALUE))
                height = image.get(field(curr, LEVEL))
                if key is None or value is None or height is None:
                    problems.append(
                        f"node {curr:#x} linked at level {level} but its "
                        "fields never persisted (inconsistent cut)")
                    break
                raw_next = image.get(self._next_addr(curr, level))
                if raw_next is None:
                    problems.append(
                        f"node {curr:#x} level-{level} link never "
                        "persisted despite the node being linked")
                    break
                if key <= prev_key:
                    problems.append(
                        f"level {level} ordering violated at {curr:#x}")
                if level == 0:
                    count += 1
                    if not is_marked(raw_next):
                        live.add(key)
                prev_key = key
                curr = unmark(raw_next)
        return RecoveryReport(structure=self.name, ok=not problems,
                              problems=problems, reachable_nodes=count,
                              live_keys=live)

    def collect_keys(self, memory: Dict[int, Word]) -> Set[int]:
        return self.validate_image(memory).live_keys or set()
