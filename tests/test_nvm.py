"""Unit and property tests for the NVM controller and persist log."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import MachineConfig, NVMMode
from repro.memory.nvm import NVMController


def _config(**kwargs):
    defaults = dict(num_memory_controllers=2, nvm_cached_occupancy=16)
    defaults.update(kwargs)
    return MachineConfig(**defaults)


def _words(addr, value, event):
    return {addr: (value, event)}


class TestPersistTiming:
    def test_unloaded_latency_cached(self):
        nvm = NVMController(_config())
        record = nvm.issue_persist(0x0, _words(0x0, 1, 0), now=100)
        assert record.complete_time == 100 + 120

    def test_unloaded_latency_uncached(self):
        nvm = NVMController(_config(nvm_mode=NVMMode.UNCACHED))
        record = nvm.issue_persist(0x0, _words(0x0, 1, 0), now=100)
        assert record.complete_time == 100 + 350

    def test_channel_occupancy_serializes_same_channel(self):
        nvm = NVMController(_config(num_memory_controllers=1))
        first = nvm.issue_persist(0x0, _words(0x0, 1, 0), now=0)
        second = nvm.issue_persist(0x40, _words(0x40, 2, 1), now=0)
        assert second.complete_time == first.complete_time + 16

    def test_different_channels_parallel(self):
        nvm = NVMController(_config(num_memory_controllers=2))
        first = nvm.issue_persist(0x0, _words(0x0, 1, 0), now=0)
        second = nvm.issue_persist(0x40, _words(0x40, 2, 1), now=0)
        assert first.complete_time == second.complete_time == 120

    def test_channel_for_interleaves(self):
        nvm = NVMController(_config(num_memory_controllers=2))
        assert nvm.channel_for(0x0) != nvm.channel_for(0x40)
        assert nvm.channel_for(0x0) == nvm.channel_for(0x80)

    def test_after_defers_issue(self):
        nvm = NVMController(_config())
        record = nvm.issue_persist(0x0, _words(0x0, 1, 0), now=0,
                                   after=500)
        assert record.issue_time == 500
        assert record.complete_time == 620

    def test_ordered_after_pipelines(self):
        nvm = NVMController(_config(num_memory_controllers=2))
        first = nvm.issue_persist(0x0, _words(0x0, 1, 0), now=0)
        second = nvm.issue_persist(0x40, _words(0x40, 2, 1), now=0,
                                   ordered_after=first)
        # Issued immediately, but ack constrained behind first + slot.
        assert second.issue_time == 0
        assert second.complete_time == first.complete_time + 16

    def test_ordered_after_no_constraint_when_late(self):
        nvm = NVMController(_config(num_memory_controllers=2))
        first = nvm.issue_persist(0x0, _words(0x0, 1, 0), now=0)
        second = nvm.issue_persist(0x40, _words(0x40, 2, 1), now=1000,
                                   ordered_after=first)
        assert second.complete_time == 1120

    def test_same_line_persists_complete_in_issue_order(self):
        nvm = NVMController(_config())
        first = nvm.issue_persist(0x0, _words(0x0, 1, 0), now=0)
        second = nvm.issue_persist(0x0, _words(0x0, 2, 1), now=0)
        assert second.complete_time > first.complete_time


class TestPersistLog:
    def test_log_in_durability_order(self):
        nvm = NVMController(_config(num_memory_controllers=2))
        slow = nvm.issue_persist(0x0, _words(0x0, 1, 0), now=0,
                                 after=1000)
        fast = nvm.issue_persist(0x40, _words(0x40, 2, 1), now=0)
        log = nvm.persist_log()
        assert [r.issue_seq for r in log] == [fast.issue_seq,
                                              slow.issue_seq]

    def test_image_after_prefix(self):
        nvm = NVMController(_config(num_memory_controllers=1))
        nvm.issue_persist(0x0, _words(0x0, 1, 0), now=0)
        nvm.issue_persist(0x0, _words(0x0, 2, 1), now=500)
        assert nvm.image_after_prefix(0) == {}
        assert nvm.image_after_prefix(1) == {0x0: 1}
        assert nvm.image_after_prefix(2) == {0x0: 2}

    def test_image_prefix_bounds(self):
        nvm = NVMController(_config())
        with pytest.raises(ValueError):
            nvm.image_after_prefix(1)
        with pytest.raises(ValueError):
            nvm.image_after_prefix(-1)

    def test_baseline_included(self):
        nvm = NVMController(_config())
        nvm.set_baseline_image({0x8: 42}, {0x8: 7})
        assert nvm.image_after_prefix(0) == {0x8: 42}
        assert nvm.durable_events_after_prefix(0) == {0x8: 7}

    def test_baseline_overwritten_by_persists(self):
        nvm = NVMController(_config())
        nvm.set_baseline_image({0x0: 42})
        nvm.issue_persist(0x0, _words(0x0, 99, 3), now=0)
        assert nvm.final_image() == {0x0: 99}

    def test_image_at_time(self):
        nvm = NVMController(_config(num_memory_controllers=2))
        nvm.issue_persist(0x0, _words(0x0, 1, 0), now=0)      # ack 120
        nvm.issue_persist(0x40, _words(0x40, 2, 1), now=300)  # ack 420
        assert nvm.image_at_time(0) == {}
        assert nvm.image_at_time(120) == {0x0: 1}
        assert nvm.image_at_time(1000) == {0x0: 1, 0x40: 2}

    def test_reset_log(self):
        nvm = NVMController(_config())
        nvm.issue_persist(0x0, _words(0x0, 1, 0), now=0)
        nvm.reset_log()
        assert nvm.persist_log() == []

    def test_record_accessors(self):
        nvm = NVMController(_config())
        record = nvm.issue_persist(
            0x0, {0x0: (5, 11), 0x8: (6, 12)}, now=0)
        assert record.word_values() == {0x0: 5, 0x8: 6}
        assert record.word_events() == {0x0: 11, 0x8: 12}


class TestPersistProperties:
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 200)),
                    min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_completion_never_precedes_issue(self, requests):
        nvm = NVMController(_config())
        now = 0
        for line, delay in requests:
            now += delay
            record = nvm.issue_persist(line * 64,
                                       _words(line * 64, 1, 0), now)
            assert record.complete_time >= record.issue_time + 120

    @given(st.lists(st.integers(0, 3), min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_same_line_durability_order_matches_issue_order(self, lines):
        nvm = NVMController(_config(num_memory_controllers=2))
        for seq, line in enumerate(lines):
            nvm.issue_persist(line * 64, _words(line * 64, seq, seq),
                              now=0)
        last_seen = {}
        for record in nvm.persist_log():
            if record.line_addr in last_seen:
                assert record.issue_seq > last_seen[record.line_addr]
            last_seen[record.line_addr] = record.issue_seq

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_final_image_is_last_value_per_word(self, lines):
        nvm = NVMController(_config())
        expected = {}
        for seq, line in enumerate(lines):
            addr = line * 64
            nvm.issue_persist(addr, _words(addr, seq, seq), now=0)
            expected[addr] = seq
        assert nvm.final_image() == expected
