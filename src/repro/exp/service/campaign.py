"""Campaign directories: job journal, results journal, aggregate.

A campaign is a directory owned by the service::

    <root>/meta.json        submission order + queue parameters
    <root>/jobs/<digest>.json   encoded job spec, one per unique digest
    <root>/queue/...        the sharded ticket store (queue.py)
    <root>/results.jsonl    append-only journal of completed jobs
    <root>/cache/           campaign-local content-addressed results
    <root>/heartbeats/      live per-job/worker status for --watch

Jobs are keyed by their existing content-address digest
(:meth:`repro.exp.runner.Job.key`), so the campaign shares identity
with the result cache: a job that is in the campaign cache (or the
``$REPRO_CACHE_SHARED`` directory) is *never* executed again — the
worker read-throughs the summary and journals it as ``cached``.

The results journal is the campaign's incremental output: every
completed job appends one JSON line (locked, single write) that
``repro.bench.history --live`` and the watch renderer display while
the sweep runs. :meth:`Campaign.aggregate` distills the journal into
the deterministic byte string the resume guarantee is pinned on —
fingerprints only (makespans, persist-log digests, stats), ordered by
submission order, deduplicated by digest, with every nondeterministic
field (worker id, wall-clock, cache disposition) excluded. An
interrupted campaign resumed to completion therefore aggregates to
*byte-identical* output, regardless of which workers ran what when.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.exp.cache import ResultCache, shared_cache_dir
from repro.exp.runner import Job, RunSummary
from repro.exp.service.codec import decode_job, encode_job
from repro.exp.service.queue import (
    DEFAULT_BACKOFF,
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    WorkQueue,
    _write_json,
)

try:  # POSIX file locking for the shared results journal.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

META_VERSION = 1


def fingerprint(summary: RunSummary) -> Dict[str, object]:
    """The deterministic distillation of one run for the aggregate.

    Everything here is a pure function of (spec, config, mechanism) —
    the simulator's determinism contract — so two executions of the
    same digest always fingerprint identically.
    """
    return {
        "workload": summary.spec.structure,
        "mechanism": summary.mechanism,
        "num_threads": summary.spec.num_threads,
        "seed": summary.spec.seed,
        "makespan": summary.makespan,
        "persists": summary.persist_count,
        "log_digest": summary.persist_log_digest,
        "stats": summary.stats.summary(),
        "mechanism_counters": dict(summary.mechanism_counters),
        "outcomes": dict(summary.outcome_counts),
        "crash_attempts": summary.crash_attempts,
        "crash_failures": summary.crash_failures,
    }


@dataclasses.dataclass
class CampaignStatus:
    """One snapshot of a campaign's progress."""

    name: str
    total: int
    pending: int
    leased: int
    done: int
    failed: int
    journaled: int
    pending_per_shard: List[int]

    @property
    def finished(self) -> bool:
        return self.done + self.failed >= self.total

    @property
    def complete(self) -> bool:
        return self.done >= self.total

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class Campaign:
    """One on-disk campaign (open an existing one via
    :func:`open_campaign`, create via :func:`create_campaign`)."""

    def __init__(self, root: str, meta: Dict[str, object]) -> None:
        self.root = os.path.abspath(root)
        self.meta = meta
        self.queue = WorkQueue(
            self.root,
            num_shards=int(meta["num_shards"]),
            lease_ttl=float(meta["lease_ttl"]),
            max_attempts=int(meta["max_attempts"]),
            backoff=float(meta.get("backoff", DEFAULT_BACKOFF)))

    # -- paths ----------------------------------------------------------

    @property
    def meta_path(self) -> str:
        return os.path.join(self.root, "meta.json")

    @property
    def jobs_dir(self) -> str:
        return os.path.join(self.root, "jobs")

    @property
    def results_path(self) -> str:
        return os.path.join(self.root, "results.jsonl")

    @property
    def heartbeat_dir(self) -> str:
        return os.path.join(self.root, "heartbeats")

    @property
    def name(self) -> str:
        return str(self.meta.get("name", os.path.basename(self.root)))

    @property
    def order(self) -> List[str]:
        return list(self.meta["order"])

    @property
    def unique(self) -> List[str]:
        return list(self.meta["unique"])

    def cache(self) -> ResultCache:
        """The campaign-local result store (read-through to the
        ``$REPRO_CACHE_SHARED`` directory when set)."""
        return ResultCache(os.path.join(self.root, "cache"),
                           shared=shared_cache_dir())

    # -- submission -----------------------------------------------------

    def _write_meta(self) -> None:
        _write_json(self.meta_path, self.meta)

    def extend(self, jobs: Sequence[Job]) -> List[str]:
        """Append jobs to the campaign; returns the *new* digests.

        Idempotent per digest: submitting a job the campaign already
        tracks only appends to the ordering (so a figure that reuses
        a run sees it twice in the aggregate) without a second ticket.
        The write order — job spec, then meta, then ticket — keeps
        every crash window repairable by :meth:`ensure_tickets`.
        """
        order = list(self.meta["order"])
        unique = list(self.meta["unique"])
        known = set(unique)
        new_digests: List[str] = []
        encoded: List[tuple] = []
        for job in jobs:
            digest = job.key()
            encoded.append((digest, job))
            order.append(digest)
            if digest not in known:
                known.add(digest)
                unique.append(digest)
                new_digests.append(digest)
        os.makedirs(self.jobs_dir, exist_ok=True)
        for digest, job in encoded:
            path = os.path.join(self.jobs_dir, f"{digest}.json")
            if not os.path.exists(path):
                _write_json(path, encode_job(job))
        self.meta["order"] = order
        self.meta["unique"] = unique
        self._write_meta()
        seq_of = {digest: seq for seq, digest in enumerate(unique)}
        for digest in new_digests:
            self.queue.add(seq_of[digest], digest)
        return new_digests

    def ensure_tickets(self) -> int:
        """Re-materialize tickets lost to a mid-submit crash."""
        present = set()
        counts_root = self.queue.root
        for state in ("leased", "requeue"):
            for name in self.queue._list(
                    os.path.join(counts_root, state)):
                split = self.queue._split_lease(name)
                parsed = (self.queue._parse(split[0])
                          if split is not None else None)
                if parsed is not None:
                    present.add(parsed[1])
        for state in ("done", "failed"):
            for name in self.queue._list(
                    os.path.join(counts_root, state)):
                parsed = self.queue._parse(name)
                if parsed is not None:
                    present.add(parsed[1])
        for shard in range(self.queue.num_shards):
            for name in self.queue._list(self.queue._shard_dir(shard)):
                parsed = self.queue._parse(name)
                if parsed is not None:
                    present.add(parsed[1])
        added = 0
        for seq, digest in enumerate(self.unique):
            if digest not in present:
                self.queue.add(seq, digest)
                added += 1
        return added

    # -- job access -----------------------------------------------------

    def load_job(self, digest: str) -> Job:
        path = os.path.join(self.jobs_dir, f"{digest}.json")
        with open(path) as handle:
            return decode_job(json.load(handle))

    # -- results journal ------------------------------------------------

    def append_result(self, record: Dict[str, object]) -> None:
        """Locked single-write append of one JSON line."""
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        fd = os.open(self.results_path,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            os.write(fd, data)
        finally:
            os.close(fd)

    def read_results(self) -> List[Dict[str, object]]:
        """Journal records in append order (torn lines skipped)."""
        records: List[Dict[str, object]] = []
        try:
            with open(self.results_path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn final line of a killed run
                    if isinstance(record, dict):
                        records.append(record)
        except OSError:
            pass
        return records

    def results_by_digest(self) -> Dict[str, Dict[str, object]]:
        """First journal record per digest (duplicates carry identical
        fingerprints by determinism, so first-wins is arbitrary-safe)."""
        by_digest: Dict[str, Dict[str, object]] = {}
        for record in self.read_results():
            digest = record.get("digest")
            if isinstance(digest, str) and digest not in by_digest:
                by_digest[digest] = record
        return by_digest

    # -- aggregate / status ---------------------------------------------

    def aggregate(self) -> bytes:
        """Canonical bytes of the full campaign's results.

        Deterministic by construction: fingerprints only, in
        submission order, one entry per ``order`` slot. Raises while
        any job is still unfinished or failed — a partial aggregate
        can never masquerade as the real one.
        """
        by_digest = self.results_by_digest()
        missing = [digest for digest in self.unique
                   if digest not in by_digest]
        if missing:
            raise RuntimeError(
                f"campaign incomplete: {len(missing)} job(s) without "
                f"a journaled result (first: {missing[0][:12]}...)")
        payload = {
            "campaign": self.name,
            "jobs": [
                {"digest": digest,
                 **by_digest[digest]["fingerprint"]}
                for digest in self.order
            ],
        }
        text = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))
        return text.encode("utf-8") + b"\n"

    def status(self) -> CampaignStatus:
        counts = self.queue.counts()
        return CampaignStatus(
            name=self.name,
            total=len(self.unique),
            pending=int(counts["pending"]),
            leased=int(counts["leased"]),
            done=int(counts["done"]),
            failed=int(counts["failed"]),
            journaled=len(self.results_by_digest()),
            pending_per_shard=list(counts["pending_per_shard"]),
        )


def create_campaign(root: str, jobs: Iterable[Job], *,
                    name: Optional[str] = None,
                    num_shards: int = 4,
                    lease_ttl: float = DEFAULT_LEASE_TTL,
                    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                    backoff: float = DEFAULT_BACKOFF) -> Campaign:
    """Create a fresh campaign directory and enqueue ``jobs``."""
    root = os.path.abspath(root)
    meta_path = os.path.join(root, "meta.json")
    if os.path.exists(meta_path):
        raise FileExistsError(
            f"campaign already exists at {root} — use open_campaign/"
            "resume, or pick a fresh directory")
    os.makedirs(root, exist_ok=True)
    meta: Dict[str, object] = {
        "version": META_VERSION,
        "name": name or os.path.basename(root) or "campaign",
        "created_at": time.time(),
        "num_shards": int(num_shards),
        "lease_ttl": float(lease_ttl),
        "max_attempts": int(max_attempts),
        "backoff": float(backoff),
        "order": [],
        "unique": [],
    }
    campaign = Campaign(root, meta)
    campaign.queue.ensure_dirs()
    os.makedirs(campaign.heartbeat_dir, exist_ok=True)
    campaign._write_meta()
    campaign.extend(list(jobs))
    return campaign


def open_campaign(root: str) -> Campaign:
    """Open an existing campaign (raises FileNotFoundError otherwise)."""
    root = os.path.abspath(root)
    meta_path = os.path.join(root, "meta.json")
    with open(meta_path) as handle:
        meta = json.load(handle)
    version = meta.get("version")
    if version != META_VERSION:
        raise ValueError(f"unsupported campaign meta version {version!r}")
    campaign = Campaign(root, meta)
    campaign.queue.ensure_dirs()
    return campaign


def open_or_create(root: str, jobs: Sequence[Job],
                   **create_kwargs) -> Campaign:
    """Open ``root`` and extend it with any new jobs, or create it.

    Extension is digest-idempotent: resubmitting a grid the campaign
    already tracks adds nothing, so an interrupted ``--service``
    figure run can simply be re-launched against the same directory.
    """
    if os.path.exists(os.path.join(root, "meta.json")):
        campaign = open_campaign(root)
        known = set(campaign.unique)
        fresh = [job for job in jobs if job.key() not in known]
        if fresh:
            campaign.extend(fresh)
        return campaign
    return create_campaign(root, jobs, **create_kwargs)
