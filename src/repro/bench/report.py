"""Plain-text rendering of benchmark results (the paper's rows/series)."""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width table with a title, suitable for terminal output."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells))
        if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).ljust(widths[i])
                           for i, h in enumerate(headers)))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(row))))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_series(title: str, x_label: str, x_values: Sequence[object],
                  series: Dict[str, Sequence[float]]) -> str:
    """A line-per-series rendering of a sweep (Figure 8 style)."""
    headers = [x_label] + [str(x) for x in x_values]
    rows: List[List[object]] = []
    for name, values in series.items():
        rows.append([name] + [f"{v:.1f}" for v in values])
    return render_table(title, headers, rows)
