"""``python -m repro.exp`` — runner self-test and benchmark emitter.

``--selftest`` runs a reduced figure-5-style suite three ways and
writes ``BENCH_runner.json``:

1. serially in-process (the pre-runner execution model),
2. through a process pool (``--jobs N``, default: all cores),
3. twice against a fresh result cache (cold, then warm).

It asserts that the parallel summaries are bit-identical to the serial
ones (makespans, stats and persist-log digests) and that the warm
cache pass is all hits — then records the wall-clock of each mode.

``--watch DIR`` renders the worker heartbeats a sweep writes when run
with ``REPRO_HEARTBEAT_DIR=DIR`` (see :mod:`repro.exp.heartbeat`),
refreshing in place until every job reaches a terminal state. Stale
heartbeats degrade to a STALE marker plus one warning line.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import tempfile
import time
from typing import List, Optional, Sequence

from repro.bench.configs import SCALED_CONFIG, bench_config
from repro.exp import heartbeat
from repro.exp.cache import (ResultCache, execute_prune, plan_prune,
                             read_stats_since_marker, write_stats_marker)
from repro.exp.progress import ProgressReporter, WatchRenderer
from repro.exp.runner import ExperimentRunner, Job, RunSummary
from repro.workloads.harness import WorkloadSpec

#: Reduced-size suite: every LFD x every Figure 5 mechanism, small
#: enough that the self-test finishes in seconds even single-core.
SELFTEST_WORKLOADS = ("linkedlist", "hashmap", "bstree", "skiplist",
                      "queue")
SELFTEST_MECHANISMS = ("nop", "sb", "bb", "lrp")


def selftest_jobs(seed: int = 1) -> List[Job]:
    config = bench_config(SCALED_CONFIG)
    return [
        Job(spec=WorkloadSpec(structure=workload, num_threads=8,
                              initial_size=512, ops_per_thread=16,
                              seed=seed),
            mechanism=mech, config=config)
        for workload in SELFTEST_WORKLOADS
        for mech in SELFTEST_MECHANISMS
    ]


def _fingerprint(summaries: Sequence[RunSummary]) -> List[dict]:
    return [
        {
            "workload": s.spec.structure,
            "mechanism": s.mechanism,
            "makespan": s.makespan,
            "persists": s.persist_count,
            "log_digest": s.persist_log_digest,
            "stats": s.stats.summary(),
        }
        for s in summaries
    ]


def _timed_run(runner: ExperimentRunner, jobs: Sequence[Job],
               label: str) -> tuple:
    start = time.perf_counter()
    summaries = runner.run(jobs, label=label)
    return summaries, time.perf_counter() - start


def run_selftest(workers: int, output: str, verbose: bool = True,
                 obs: bool = False,
                 trace_out: Optional[str] = None,
                 provenance_out: Optional[str] = None,
                 seed: int = 1) -> dict:
    jobs = selftest_jobs(seed)
    progress = ProgressReporter() if verbose else None

    serial = ExperimentRunner(jobs=1, progress=progress)
    serial_summaries, serial_seconds = _timed_run(serial, jobs, "serial")

    parallel = ExperimentRunner(jobs=workers, progress=progress)
    parallel_summaries, parallel_seconds = _timed_run(parallel, jobs,
                                                      f"x{workers}")

    identical = (_fingerprint(serial_summaries)
                 == _fingerprint(parallel_summaries))

    with tempfile.TemporaryDirectory(prefix="repro-exp-cache-") as tmp:
        cache = ResultCache(tmp)
        cold = ExperimentRunner(jobs=workers, cache=cache,
                                progress=progress)
        cold_summaries, cold_seconds = _timed_run(cold, jobs, "cold")
        warm = ExperimentRunner(jobs=workers, cache=cache,
                                progress=progress)
        warm_summaries, warm_seconds = _timed_run(warm, jobs, "warm")
        hit_rate = warm.cache_hits / max(1, warm.cache_hits
                                         + warm.cache_misses)
        cache_identical = (_fingerprint(cold_summaries)
                           == _fingerprint(warm_summaries)
                           == _fingerprint(serial_summaries))

    obs_report = None
    if obs or trace_out or provenance_out:
        from repro.obs.report import attribute_summary
        from repro.obs.trace import dump_summary_traces

        obs_jobs = [dataclasses.replace(
                        job, collect_obs=True,
                        collect_trace=bool(trace_out),
                        collect_provenance=bool(provenance_out))
                    for job in jobs]
        observed = ExperimentRunner(jobs=workers, progress=progress)
        obs_summaries, obs_seconds = _timed_run(observed, obs_jobs, "obs")
        obs_identical = (_fingerprint(obs_summaries)
                         == _fingerprint(serial_summaries))
        reconciled = all(
            attribute_summary(s).persist_stall_total
            == s.stats.persist_stall_cycles
            for s in obs_summaries)
        obs_report = {
            "seconds": round(obs_seconds, 3),
            "identical_results": obs_identical,
            "persist_stalls_reconciled": reconciled,
        }
        if trace_out:
            obs_report["traces_written"] = len(
                dump_summary_traces(obs_summaries, trace_out))
            obs_report["trace_dir"] = trace_out
        if provenance_out:
            from repro.obs.diff import dump_summary_provenance

            obs_report["captures_written"] = len(
                dump_summary_provenance(obs_summaries, provenance_out))
            obs_report["provenance_dir"] = provenance_out

    report = {
        "suite": {
            "jobs": len(jobs),
            "workloads": list(SELFTEST_WORKLOADS),
            "mechanisms": list(SELFTEST_MECHANISMS),
            "spec": dataclasses.asdict(jobs[0].spec),
        },
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup_parallel_over_serial": round(
            serial_seconds / parallel_seconds, 3)
        if parallel_seconds else None,
        "identical_results": identical,
        "cache": {
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "hit_rate": round(hit_rate, 3),
            "speedup_warm_over_cold": round(cold_seconds / warm_seconds, 3)
            if warm_seconds else None,
            "identical_results": cache_identical,
        },
    }
    if obs_report is not None:
        report["obs"] = obs_report
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def run_watch(directory: str, ttl: float, refresh: float,
              once: bool = False, renderer: Optional[WatchRenderer] = None,
              ) -> int:
    """Render heartbeats live until every job is terminal.

    Returns 0 on a clean finish, 1 when the final view contains stale
    (presumed dead) workers. ``once`` renders a single frame — the
    scriptable / testable mode.

    A directory with no heartbeats at all (missing, or never populated
    because the sweep was started without ``REPRO_HEARTBEAT_DIR``) is
    diagnosed immediately with exit 1 instead of rendering an empty
    block forever.
    """
    renderer = renderer or WatchRenderer()
    first_read = True
    while True:
        entries = heartbeat.read_heartbeats(directory)
        if first_read and not entries:
            print(f"watch: no heartbeats in {directory!r} — start the "
                  f"sweep with {heartbeat.ENV_DIR}={directory} first",
                  file=sys.stderr)
            return 1
        first_read = False
        lines, stale = heartbeat.render_watch(
            entries, now=time.time(), ttl=ttl, directory=directory)
        renderer.render_block(lines)
        if once:
            return 1 if stale else 0
        if heartbeat.all_terminal(entries):
            return 0
        if stale and all(
                heartbeat.is_stale(e, time.time(), ttl)
                or e.get("state") in heartbeat.TERMINAL_STATES
                or e.get("state") == "unreadable"
                for e in entries):
            # Nothing is alive any more: stop rather than spin forever.
            return 1
        time.sleep(refresh)


def _parse_duration(text: str) -> float:
    """``"7d"`` / ``"12h"`` / ``"30m"`` / ``"90s"`` / plain seconds."""
    text = text.strip().lower()
    scale = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    if text and text[-1] in scale:
        return float(text[:-1]) * scale[text[-1]]
    return float(text)


def _parse_size(text: str) -> int:
    """``"500M"`` / ``"2G"`` / ``"64K"`` / plain bytes."""
    text = text.strip().upper()
    scale = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    if text and text[-1] in scale:
        return int(float(text[:-1]) * scale[text[-1]])
    return int(text)


def run_cache_command(argv: Sequence[str]) -> int:
    """``python -m repro.exp cache {stats,prune}`` — cache hygiene.

    ``stats`` prints entry count, total bytes and the hit rate
    accumulated since the previous ``stats`` call (runners append
    their per-batch counters to a sidecar; printing resets the
    window). ``prune`` plans deletions by age and/or size budget —
    dry-run by default, ``--apply`` to actually unlink.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp cache",
        description="Result-cache statistics and hygiene.")
    sub = parser.add_subparsers(dest="action")

    stats = sub.add_parser(
        "stats", help="entries, bytes, hit rate since last stats")
    stats.add_argument("--dir", default=None, metavar="DIR",
                       help="cache directory (default: "
                            "$REPRO_EXP_CACHE_DIR or ~/.cache/repro-exp)")
    stats.add_argument("--keep-window", action="store_true",
                       help="do not reset the since-last-stats window")

    prune = sub.add_parser(
        "prune", help="delete old entries (dry-run unless --apply)")
    prune.add_argument("--dir", default=None, metavar="DIR",
                       help="cache directory (default: "
                            "$REPRO_EXP_CACHE_DIR or ~/.cache/repro-exp)")
    prune.add_argument("--older-than", default=None, metavar="AGE",
                       help="drop entries older than AGE "
                            "(e.g. 7d, 12h, 900s)")
    prune.add_argument("--max-bytes", default=None, metavar="SIZE",
                       help="evict oldest-first down to SIZE "
                            "(e.g. 500M, 2G)")
    prune.add_argument("--apply", action="store_true",
                       help="actually delete (default is a dry run)")

    args = parser.parse_args(list(argv))
    if not args.action:
        parser.print_help()
        return 2
    cache = ResultCache(args.dir) if args.dir else ResultCache()

    if args.action == "stats":
        window = read_stats_since_marker(cache.stats_path)
        payload = {
            "dir": str(cache.root),
            "entries": cache.entry_count(),
            "bytes": cache.total_bytes(),
            "since_last_stats": window,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        if not args.keep_window:
            write_stats_marker(cache.stats_path)
        return 0

    if args.older_than is None and args.max_bytes is None:
        print("prune: nothing to do — give --older-than and/or "
              "--max-bytes", file=sys.stderr)
        return 2
    victims = plan_prune(
        cache,
        older_than_seconds=(_parse_duration(args.older_than)
                            if args.older_than is not None else None),
        max_bytes=(_parse_size(args.max_bytes)
                   if args.max_bytes is not None else None))
    total = sum(size for _path, size in victims)
    if not args.apply:
        print(f"prune (dry run): would delete {len(victims)} "
              f"entr{'y' if len(victims) == 1 else 'ies'} "
              f"({total} bytes) from {cache.root} — rerun with "
              "--apply to delete")
        return 0
    removed, freed = execute_prune(victims)
    print(f"prune: deleted {removed} "
          f"entr{'y' if removed == 1 else 'ies'} ({freed} bytes) "
          f"from {cache.root}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] == "cache":
        # Subcommand-style dispatch ahead of the flag parser, so the
        # hygiene CLI can grow options without colliding with the
        # selftest/watch flags.
        return run_cache_command(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp",
        description="Parallel experiment-runner utilities. "
                    "(See also: python -m repro.exp cache --help, "
                    "python -m repro.exp.service --help.)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the serial-vs-parallel-vs-cached "
                             "equivalence and timing suite")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: all CPU cores)")
    parser.add_argument("--seed", type=int, default=1, metavar="S",
                        help="workload seed threaded into every "
                             "WorkloadSpec of the suite "
                             "(default: %(default)s)")
    parser.add_argument("--output", default="BENCH_runner.json",
                        help="where to write the benchmark JSON "
                             "(default: %(default)s)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the progress meter")
    parser.add_argument("--obs", action="store_true",
                        help="additionally run an obs-instrumented pass "
                             "and verify it is bit-identical and its "
                             "stall metrics reconcile")
    parser.add_argument("--trace-out", default=None, metavar="DIR",
                        help="write one Chrome trace-event JSON per "
                             "job into DIR (implies --obs)")
    parser.add_argument("--provenance-out", default=None, metavar="DIR",
                        help="write one persist-provenance capture per "
                             "job into DIR, for 'repro.obs flame' / "
                             "'repro.obs diff' (implies --obs)")
    parser.add_argument("--watch", default=None, metavar="DIR",
                        help="live-render the worker heartbeats a sweep "
                             "writes with REPRO_HEARTBEAT_DIR=DIR; "
                             "refreshes until every job finishes")
    parser.add_argument("--watch-once", action="store_true",
                        help="with --watch: render one frame and exit "
                             "(exit 1 when stale heartbeats are shown)")
    parser.add_argument("--watch-ttl", type=float,
                        default=heartbeat.DEFAULT_TTL, metavar="SEC",
                        help="seconds without an update before a running "
                             "heartbeat counts as stale "
                             "(default: %(default)s)")
    parser.add_argument("--watch-refresh", type=float, default=1.0,
                        metavar="SEC",
                        help="refresh period for --watch "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    if args.watch:
        return run_watch(args.watch, ttl=args.watch_ttl,
                         refresh=args.watch_refresh, once=args.watch_once)

    if not args.selftest:
        parser.print_help()
        return 2

    workers = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    report = run_selftest(workers, args.output, verbose=not args.quiet,
                          obs=args.obs, trace_out=args.trace_out,
                          provenance_out=args.provenance_out,
                          seed=args.seed)
    ok = (report["identical_results"]
          and report["cache"]["identical_results"]
          and report["cache"]["hit_rate"] == 1.0)
    if "obs" in report:
        ok = (ok and report["obs"]["identical_results"]
              and report["obs"]["persist_stalls_reconciled"])
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nselftest {'PASSED' if ok else 'FAILED'}: "
          f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
