"""Tests for the parallel experiment runner and result cache.

The load-bearing property is determinism: fanning jobs out across
processes must produce bit-identical summaries (makespans, stats,
persist-log digests) to serial in-process execution, and cache keys
must be stable across processes so a cache written by one run is hit
by the next.
"""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.bench.configs import SCALED_CONFIG, bench_config
from repro.bench.figures import run_figure5
from repro.exp.cache import ResultCache, code_version, stable_digest
from repro.exp.runner import (
    ExperimentRunner,
    Job,
    execute_job,
    summarize,
)
from repro.core.simulator import simulate, simulate_all_mechanisms
from repro.workloads.harness import WorkloadSpec

CONFIG = bench_config(SCALED_CONFIG)


def small_jobs(workloads=("queue", "linkedlist"),
               mechanisms=("nop", "sb", "bb", "lrp")):
    """A reduced Figure 5 slice: every mechanism on two LFDs."""
    return [
        Job(spec=WorkloadSpec(structure=workload, num_threads=4,
                              initial_size=64, ops_per_thread=8, seed=3),
            mechanism=mech, config=CONFIG)
        for workload in workloads
        for mech in mechanisms
    ]


def fingerprints(summaries):
    return [(s.spec.structure, s.mechanism, s.makespan,
             s.persist_count, s.persist_log_digest, s.stats.summary())
            for s in summaries]


class TestSerialParallelEquivalence:
    def test_parallel_matches_serial(self):
        """Same jobs, 1 vs 2 worker processes: identical summaries."""
        jobs = small_jobs()
        serial = ExperimentRunner(jobs=1).run(jobs)
        parallel = ExperimentRunner(jobs=2).run(jobs)
        assert fingerprints(serial) == fingerprints(parallel)

    def test_summary_matches_direct_simulation(self):
        """A runner summary equals summarizing simulate() directly."""
        job = small_jobs()[3]
        via_runner = ExperimentRunner(jobs=1).run([job])[0]
        direct = summarize(simulate(job.spec, job.mechanism, job.config))
        assert via_runner.makespan == direct.makespan
        assert via_runner.persist_log_digest == direct.persist_log_digest
        assert via_runner.stats.summary() == direct.stats.summary()

    def test_record_trace_off_keeps_makespan(self):
        """Disabling trace retention never changes timing."""
        spec = WorkloadSpec(structure="hashmap", num_threads=4,
                            initial_size=64, ops_per_thread=8, seed=7)
        with_trace = simulate(
            spec, "lrp",
            dataclasses.replace(SCALED_CONFIG, record_trace=True))
        without = simulate(
            spec, "lrp",
            dataclasses.replace(SCALED_CONFIG, record_trace=False))
        assert with_trace.makespan == without.makespan
        assert (summarize(with_trace).persist_log_digest
                == summarize(without).persist_log_digest)
        assert len(with_trace.trace.events) == len(without.trace)
        with pytest.raises(RuntimeError):
            _ = without.trace.events

    def test_results_in_submission_order(self):
        jobs = small_jobs()
        results = ExperimentRunner(jobs=2).run(jobs)
        assert [(r.spec.structure, r.mechanism) for r in results] \
            == [(j.spec.structure, j.mechanism) for j in jobs]

    def test_figure5_through_explicit_runners(self):
        """Fig 5 at reduced size: serial and parallel runners agree."""
        kwargs = dict(scale="quick", num_threads=2, workloads=["queue"])
        serial = run_figure5(runner=ExperimentRunner(jobs=1), **kwargs)
        parallel = run_figure5(runner=ExperimentRunner(jobs=2), **kwargs)
        for mech in serial.mechanisms:
            assert serial.normalized("queue", mech) \
                == parallel.normalized("queue", mech)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        jobs = small_jobs(workloads=("queue",))
        cache = ResultCache(tmp_path)
        first = ExperimentRunner(jobs=1, cache=cache)
        cold = first.run(jobs)
        assert first.cache_hits == 0
        assert first.cache_misses == len(jobs)

        second = ExperimentRunner(jobs=1, cache=cache)
        warm = second.run(jobs)
        assert second.cache_hits == len(jobs)
        assert second.cache_misses == 0
        assert fingerprints(cold) == fingerprints(warm)

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = small_jobs(workloads=("queue",), mechanisms=("lrp",))[0]
        ExperimentRunner(jobs=1, cache=cache).run([job])

        changed = Job(spec=job.spec, mechanism=job.mechanism,
                      config=dataclasses.replace(job.config,
                                                 ret_entries=8,
                                                 ret_watermark=6))
        runner = ExperimentRunner(jobs=1, cache=cache)
        runner.run([changed])
        assert runner.cache_hits == 0
        assert runner.cache_misses == 1

    def test_spec_and_mechanism_in_key(self):
        job = small_jobs()[0]
        other_mech = Job(spec=job.spec, mechanism="lrp", config=job.config)
        other_spec = Job(spec=dataclasses.replace(job.spec, seed=99),
                         mechanism=job.mechanism, config=job.config)
        assert len({job.key(), other_mech.key(), other_spec.key()}) == 3

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = small_jobs(workloads=("queue",), mechanisms=("nop",))[0]
        cache.put(job.key(), execute_job(job))
        # Truncate the entry on disk.
        [path] = list(tmp_path.rglob("*.pkl"))
        path.write_bytes(b"not a pickle")
        assert cache.get(job.key()) is None

    def test_crash_campaign_counts_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = Job(spec=WorkloadSpec(structure="queue", num_threads=2,
                                    initial_size=32, ops_per_thread=6,
                                    seed=0),
                  mechanism="lrp", config=CONFIG,
                  crash_points=8, crash_seed=0)
        runner = ExperimentRunner(jobs=1, cache=cache)
        [summary] = runner.run([job])
        assert summary.crash_attempts and summary.crash_attempts > 0
        assert summary.crash_failures == 0
        [warm] = ExperimentRunner(jobs=1, cache=cache).run([job])
        assert warm.crash_attempts == summary.crash_attempts


class TestKeyStability:
    def test_stable_digest_is_not_hash_randomized(self):
        digest = stable_digest({"b": 2, "a": [1, (2, 3)]})
        assert digest == stable_digest({"a": [1, [2, 3]], "b": 2})

    def test_key_stable_across_processes(self):
        """The same Job hashes to the same key in a fresh interpreter
        (cache entries written by one run are hits for the next)."""
        job = small_jobs(workloads=("queue",), mechanisms=("lrp",))[0]
        program = (
            "import json, sys\n"
            "from repro.bench.configs import SCALED_CONFIG, bench_config\n"
            "from repro.exp.runner import Job\n"
            "from repro.exp.cache import code_version\n"
            "from repro.workloads.harness import WorkloadSpec\n"
            "job = Job(spec=WorkloadSpec(structure='queue', num_threads=4,"
            " initial_size=64, ops_per_thread=8, seed=3),"
            " mechanism='lrp', config=bench_config(SCALED_CONFIG))\n"
            "print(json.dumps({'key': job.key(),"
            " 'code': code_version()}))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", program], capture_output=True,
            text=True, check=True, env=dict(os.environ),
        ).stdout
        remote = json.loads(out)
        assert remote["code"] == code_version()
        assert remote["key"] == job.key()


class TestSatelliteFixes:
    def test_selftest_seed_threads_into_specs(self):
        from repro.exp.__main__ import selftest_jobs

        default = selftest_jobs()
        seeded = selftest_jobs(seed=42)
        assert {job.spec.seed for job in default} == {1}
        assert {job.spec.seed for job in seeded} == {42}
        assert len(default) == len(seeded)

    def test_cli_exposes_seed_flag(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.exp", "--help"],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": "src"}, cwd=".",
        ).stdout
        assert "--seed" in out

    def test_simulate_all_mechanisms_accepts_any_sequence(self):
        spec = WorkloadSpec(structure="queue", num_threads=2,
                            initial_size=16, ops_per_thread=4, seed=0)
        as_list = simulate_all_mechanisms(spec, ["nop", "lrp"])
        as_tuple = simulate_all_mechanisms(spec, ("nop", "lrp"))
        assert set(as_list) == set(as_tuple) == {"nop", "lrp"}
        assert as_list["lrp"].makespan == as_tuple["lrp"].makespan
