"""Cross-run benchmark history: deltas vs baseline, regression gate.

The repo's self-benchmarks emit ``BENCH_*.json`` snapshots —
``python -m repro.exp --selftest`` writes ``BENCH_runner.json`` and
``python -m repro.bench.figures --timings-out`` writes
``BENCH_figures.json``. This module turns those snapshots into a
regression dashboard:

* each snapshot is flattened into dotted scalar metrics
  (``cache.warm_seconds``, ``figures.fig5.seconds``,
  ``figures.fig5.makespan.hashmap.lrp``, ...);
* every metric is classified by *kind*, which decides the direction
  and the noise threshold that separates drift from regression:

  - **timing** (``*_seconds``/``*.seconds``) — lower is better, noisy
    (wall-clock on shared CI), so gated with a generous relative
    threshold;
  - **quality** (``speedup*``, ``*hit_rate``, ``*throughput*``) —
    higher is better, same noise allowance;
  - **latency** (``p50``/``p99``/``p999``/``rto``/``latency`` names
    from the KV-service SLO layer) — lower is better with the timing
    tolerance, but a distinct kind so SLO percentiles are never
    cross-gated against wall-clock timing names;
  - **contract** (booleans like ``identical_results``) — must stay
    true; any flip to false is a regression regardless of thresholds;
  - **exact** (other numerics, e.g. deterministic makespans) — any
    increase is a regression, any decrease an improvement (the
    simulator is deterministic, so these carry no noise);
  - **info** (``suite.*``, ``cpu_count``, ``workers``, ...) — shown
    but never gated.

* the comparison against the stored baselines
  (``benchmarks/baselines/BENCH_*.json``) renders as a markdown
  dashboard (``make bench-report``) and the CLI exits nonzero when
  any metric regressed — the CI hook for performance history.
"""

from __future__ import annotations

import dataclasses
import glob
import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Scalar = Union[int, float, bool, str]

#: Default directory of committed baseline snapshots.
BASELINE_DIR = os.path.join("benchmarks", "baselines")

#: Relative change tolerated on noisy (wall-clock / throughput)
#: metrics before it counts as a regression. Generous on purpose:
#: shared CI machines easily jitter tens of percent.
NOISE_THRESHOLD = 0.5

#: Metric-name fragments that mark a metric as informational only.
#: ``cache_hits``/``cache_misses`` ride along with the figure wall
#: times purely to explain *why* a timing is named ``cold_seconds``
#: vs ``warm_seconds`` — the name split is what keeps the gate
#: comparing like against like (a cold baseline metric simply goes
#: "removed", never gated against a warm current, and vice versa).
#: The model-checker snapshot (BENCH_mc.json) rides along the same
#: dashboard: its exploration counters (interleavings, schedules
#: explored, sleep-set prunes, backtrack points, reduction ratio) are
#: structural state-space sizes, not performance — informational, and
#: never cross-gated against timing metrics.
INFO_MARKERS = ("suite.", "spec.", "cpu_count", "workers", "jobs",
                "mechanisms", "workloads", "scale", "cached",
                "cache_hits", "cache_misses", "derived_from",
                "interleavings", "schedules_explored", "states_visited",
                "sleep_blocked", "backtrack_points", "reduction",
                "num_ops", "num_threads",
                # Telemetry overhead percentages (BENCH_obsfast.json)
                # are wall-clock-derived ratios: informational context
                # for the gated seconds metrics, not gated themselves.
                "overhead",
                # Job-service selftest context (BENCH_svc.json): where
                # the SIGKILL happened to land, how many leases the
                # recovery swept up, how much stealing balanced the
                # shards — scheduling happenstance, never gated. The
                # gated service metrics are ``identical_aggregate``
                # (contract) and ``reexecutions`` (exact zero).
                "recovered", "steals", "killed_after", "killed_worker",
                "done_at_kill", "published_entries",
                # The shared-cache warm start is gated by its exact
                # zero-execution count; its few-ms wall time would
                # flake any percentage tolerance.
                "warm_seconds")

#: Simulated-cycle service-level metrics from the KV-service SLO layer
#: (BENCH_kv.json): request latency percentiles and recovery-time
#: objectives. Lower is better and they gate with the same generous
#: tolerance as timing metrics — but under their own kind, so a
#: latency-percentile name can never be confused with (or cross-gated
#: against) a wall-clock ``*_seconds`` timing name.
LATENCY_MARKERS = ("p50", "p90", "p99", "p999", "rto", "latency")


def flatten(data: object, prefix: str = "") -> Dict[str, Scalar]:
    """Flatten nested dicts/lists into dotted scalar metrics."""
    flat: Dict[str, Scalar] = {}
    if isinstance(data, dict):
        for key in sorted(data):
            name = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten(data[key], name))
    elif isinstance(data, (list, tuple)):
        # Lists in snapshots are enumerations (workload names etc.);
        # record them as one informational string.
        flat[prefix] = ",".join(str(item) for item in data)
    elif isinstance(data, (bool, int, float, str)):
        flat[prefix] = data
    elif data is None:
        pass
    else:
        flat[prefix] = str(data)
    return flat


def classify(name: str, value: Scalar) -> str:
    """Metric kind: ``timing``/``quality``/``latency``/``contract``/
    ``exact``/``info``."""
    lowered = name.lower()
    if any(marker in lowered for marker in INFO_MARKERS):
        return "info"
    if isinstance(value, bool):
        return "contract"
    if isinstance(value, str):
        return "info"
    # Wall-clock names win first, so a hypothetical
    # ``latency_probe_seconds`` still gates as timing — SLO names never
    # capture a timing metric and vice versa.
    if "seconds" in lowered:
        return "timing"
    if "throughput" in lowered:
        return "quality"
    if any(marker in lowered for marker in LATENCY_MARKERS):
        return "latency"
    if "speedup" in lowered or "hit_rate" in lowered:
        return "quality"
    return "exact"


@dataclasses.dataclass
class Delta:
    """One metric compared across baseline and current snapshots."""

    metric: str
    kind: str
    baseline: Optional[Scalar]
    current: Optional[Scalar]
    #: "ok" / "improved" / "regressed" / "new" / "removed" / "info"
    status: str
    #: Relative change for numeric kinds (None when not comparable).
    change: Optional[float] = None

    def describe_change(self) -> str:
        if self.change is None:
            return "-"
        return f"{self.change * 100:+.1f}%"


def _relative_change(baseline: float, current: float) -> float:
    if baseline == 0:
        return 0.0 if current == 0 else float("inf")
    return (current - baseline) / abs(baseline)


def compare_metric(name: str, kind: str,
                   baseline: Optional[Scalar],
                   current: Optional[Scalar],
                   threshold: float) -> Delta:
    """Judge one metric; the heart of the regression gate."""
    if baseline is None:
        return Delta(name, kind, None, current, "new")
    if current is None:
        return Delta(name, kind, baseline, None, "removed")
    if kind == "info":
        return Delta(name, kind, baseline, current, "info")
    if kind == "contract":
        if bool(current) == bool(baseline):
            status = "ok"
        elif current:  # False -> True: a promise newly kept
            status = "improved"
        else:
            status = "regressed"
        return Delta(name, kind, baseline, current, status)

    base = float(baseline)   # type: ignore[arg-type]
    cur = float(current)     # type: ignore[arg-type]
    change = _relative_change(base, cur)
    if kind == "quality":
        change = -change     # higher is better -> invert the sign
    if kind == "exact":
        if change > 0:
            status = "regressed"
        elif change < 0:
            status = "improved"
        else:
            status = "ok"
    else:
        if change > threshold:
            status = "regressed"
        elif change < -threshold:
            status = "improved"
        else:
            status = "ok"
    return Delta(name, kind, baseline, current, status,
                 change=_relative_change(base, cur))


@dataclasses.dataclass
class SnapshotComparison:
    """All metric deltas of one ``BENCH_*.json`` snapshot."""

    name: str
    deltas: List[Delta]
    baseline_missing: bool = False

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "regressed"]

    @property
    def improvements(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "improved"]


def compare_snapshot(name: str, baseline: Optional[Dict[str, object]],
                     current: Dict[str, object],
                     threshold: float = NOISE_THRESHOLD
                     ) -> SnapshotComparison:
    """Compare a snapshot against its baseline, metric by metric."""
    flat_current = flatten(current)
    flat_baseline = flatten(baseline) if baseline is not None else {}
    deltas = []
    for metric in sorted(set(flat_baseline) | set(flat_current)):
        value = flat_current.get(metric, flat_baseline.get(metric))
        kind = classify(metric, value)
        deltas.append(compare_metric(
            metric, kind, flat_baseline.get(metric),
            flat_current.get(metric), threshold))
    return SnapshotComparison(name=name, deltas=deltas,
                              baseline_missing=baseline is None)


# ----------------------------------------------------------------------
# Snapshot discovery / baseline storage
# ----------------------------------------------------------------------

def discover_snapshots(root: str = ".") -> List[str]:
    """``BENCH_*.json`` files in ``root`` (the self-benchmark outputs)."""
    return sorted(glob.glob(os.path.join(root, "BENCH_*.json")))


def load_json(path: str) -> Dict[str, object]:
    with open(path) as handle:
        return json.load(handle)


def baseline_path(snapshot_path: str,
                  baseline_dir: str = BASELINE_DIR) -> str:
    return os.path.join(baseline_dir, os.path.basename(snapshot_path))


def update_baselines(snapshot_paths: Sequence[str],
                     baseline_dir: str = BASELINE_DIR) -> List[str]:
    """Copy the current snapshots over the stored baselines."""
    os.makedirs(baseline_dir, exist_ok=True)
    written = []
    for path in snapshot_paths:
        destination = baseline_path(path, baseline_dir)
        with open(destination, "w") as handle:
            json.dump(load_json(path), handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append(destination)
    return written


def compare_all(snapshot_paths: Sequence[str],
                baseline_dir: str = BASELINE_DIR,
                threshold: float = NOISE_THRESHOLD
                ) -> List[SnapshotComparison]:
    comparisons = []
    for path in snapshot_paths:
        base_path = baseline_path(path, baseline_dir)
        baseline = load_json(base_path) if os.path.exists(base_path) \
            else None
        comparisons.append(compare_snapshot(
            os.path.basename(path), baseline, load_json(path),
            threshold))
    return comparisons


# ----------------------------------------------------------------------
# The markdown dashboard
# ----------------------------------------------------------------------

_STATUS_BADGE = {
    "ok": "ok",
    "info": "·",
    "new": "new",
    "removed": "removed",
    "improved": "**improved**",
    "regressed": "**REGRESSED**",
}


def _format_value(value: Optional[Scalar]) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_dashboard(comparisons: Iterable[SnapshotComparison],
                     threshold: float = NOISE_THRESHOLD) -> str:
    """Markdown dashboard over every snapshot comparison."""
    comparisons = list(comparisons)
    total_regressions = sum(len(c.regressions) for c in comparisons)
    total_improvements = sum(len(c.improvements) for c in comparisons)
    lines = ["# Benchmark regression dashboard", ""]
    if not comparisons:
        lines.append("No `BENCH_*.json` snapshots found — run "
                     "`make bench` / `python -m repro.exp --selftest` "
                     "first.")
        return "\n".join(lines)
    verdict = ("**REGRESSIONS DETECTED**" if total_regressions
               else "no regressions")
    lines.append(f"Verdict: {verdict} "
                 f"({total_regressions} regressed, "
                 f"{total_improvements} improved; noise threshold "
                 f"±{threshold * 100:.0f}% on timing/quality metrics, "
                 f"exact on deterministic ones).")
    for comparison in comparisons:
        lines.extend(["", f"## {comparison.name}", ""])
        if comparison.baseline_missing:
            lines.extend([
                "No stored baseline — all metrics reported as `new`. "
                "Accept with `python -m repro.bench.history "
                "--update-baseline`.", ""])
        lines.append("| metric | kind | baseline | current | change "
                     "| status |")
        lines.append("|---|---|---:|---:|---:|---|")
        for delta in comparison.deltas:
            lines.append(
                f"| `{delta.metric}` | {delta.kind} "
                f"| {_format_value(delta.baseline)} "
                f"| {_format_value(delta.current)} "
                f"| {delta.describe_change()} "
                f"| {_STATUS_BADGE[delta.status]} |")
        if comparison.regressions:
            lines.extend(["", "Regressed:"])
            for delta in comparison.regressions:
                lines.append(
                    f"- `{delta.metric}` "
                    f"{_format_value(delta.baseline)} -> "
                    f"{_format_value(delta.current)} "
                    f"({delta.describe_change()})")
    lines.append("")
    return "\n".join(lines)


def render_live_section(directory: str) -> str:
    """Markdown section of in-flight sweep jobs from heartbeat files.

    The incremental feed for ``make bench-report``: a sweep launched
    with ``REPRO_HEARTBEAT_DIR`` set drops per-job status JSON into
    ``directory``; this folds the same one-line-per-job view the
    ``--watch`` renderer shows into the dashboard. A missing or empty
    directory yields an explanatory stub rather than an error, so the
    section is safe to request unconditionally.

    Pointing ``--live`` at a **campaign directory** (it contains a
    ``meta.json``) upgrades the section: queue progress per state and
    shard, the tail of the incremental results journal, and the
    campaign's own heartbeats.
    """
    import time

    from repro.exp import heartbeat

    if os.path.exists(os.path.join(directory, "meta.json")):
        return _render_campaign_section(directory)

    lines = ["", "## Live sweep", ""]
    entries = heartbeat.read_heartbeats(directory)
    if not entries:
        lines.append(f"No heartbeat files in `{directory}/` — launch a "
                     f"sweep with `REPRO_HEARTBEAT_DIR={directory}` to "
                     f"feed this section.")
    else:
        watch_lines, stale = heartbeat.render_watch(entries, time.time())
        lines.append("```")
        lines.extend(watch_lines)
        lines.append("```")
        if stale:
            lines.append(f"({stale} job(s) STALE — heartbeats stopped "
                         f"without a terminal status)")
    lines.append("")
    return "\n".join(lines)


def _render_campaign_section(directory: str) -> str:
    """The ``--live`` section for a job-service campaign directory."""
    import time

    from repro.exp import heartbeat
    from repro.exp.service.campaign import open_campaign

    lines = ["", "## Live campaign", ""]
    try:
        campaign = open_campaign(directory)
        status = campaign.status()
    except (OSError, ValueError, KeyError) as exc:
        lines.append(f"Unreadable campaign at `{directory}/`: {exc}")
        lines.append("")
        return "\n".join(lines)
    shards = "/".join(str(count)
                      for count in status.pending_per_shard)
    lines.append(f"`{status.name}`: **{status.done}/{status.total}** "
                 f"done, {status.leased} running, {status.pending} "
                 f"pending (per shard: {shards}), "
                 f"{status.failed} failed, {status.journaled} "
                 f"journaled")
    records = campaign.read_results()
    if records:
        lines.append("")
        lines.append("Latest journaled results:")
        lines.append("```")
        for record in records[-8:]:
            fp = record.get("fingerprint") or {}
            suffix = "  (cached)" if record.get("cached") else ""
            lines.append(
                f"  {fp.get('workload', '?')}/"
                f"{fp.get('mechanism', '?')}"
                f"/t{fp.get('num_threads', '?')}  "
                f"makespan={fp.get('makespan', '?')}{suffix}")
        lines.append("```")
    entries = heartbeat.read_heartbeats(campaign.heartbeat_dir)
    if entries:
        watch_lines, stale = heartbeat.render_watch(
            entries, time.time(), directory=campaign.heartbeat_dir)
        lines.append("")
        lines.append("```")
        lines.extend(watch_lines)
        lines.append("```")
        if stale:
            lines.append(f"({stale} job(s) STALE — heartbeats stopped "
                         f"without a terminal status)")
    lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.history",
        description="Compare BENCH_*.json snapshots against stored "
                    "baselines; exit 1 on regression.")
    parser.add_argument("--snapshots", nargs="*", metavar="FILE",
                        help="snapshot files (default: ./BENCH_*.json)")
    parser.add_argument("--baseline-dir", default=BASELINE_DIR)
    parser.add_argument("--threshold", type=float,
                        default=NOISE_THRESHOLD,
                        help="relative noise threshold for "
                             "timing/quality metrics "
                             "(default: %(default)s)")
    parser.add_argument("--output", metavar="FILE",
                        help="write the markdown dashboard here "
                             "(default: stdout)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept the current snapshots as the new "
                             "baselines")
    parser.add_argument("--live", metavar="DIR",
                        help="append a live-jobs section from the "
                             "heartbeat files in DIR (written by "
                             "REPRO_HEARTBEAT_DIR-enabled sweeps), or "
                             "— when DIR is a job-service campaign — "
                             "its queue progress and results-journal "
                             "tail; silently skipped when DIR is "
                             "absent")
    args = parser.parse_args(argv)

    snapshots = (list(args.snapshots) if args.snapshots
                 else discover_snapshots())
    missing = [path for path in snapshots if not os.path.exists(path)]
    if missing:
        print(f"error: snapshot not found: {', '.join(missing)}",
              file=sys.stderr)
        return 1
    if not snapshots:
        print("error: no BENCH_*.json snapshots found — run "
              "'make bench' or 'python -m repro.exp --selftest' first",
              file=sys.stderr)
        return 1

    if args.update_baseline:
        written = update_baselines(snapshots, args.baseline_dir)
        for path in written:
            print(f"baseline updated: {path}")
        return 0

    comparisons = compare_all(snapshots, args.baseline_dir,
                              args.threshold)
    dashboard = render_dashboard(comparisons, args.threshold)
    if args.live:
        dashboard += render_live_section(args.live)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(dashboard)
        print(f"wrote dashboard to {args.output}")
    else:
        print(dashboard)
    regressions = sum(len(c.regressions) for c in comparisons)
    if regressions:
        print(f"FAILED: {regressions} metric(s) regressed vs baseline",
              file=sys.stderr)
        return 1
    print("no regressions vs baseline")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
