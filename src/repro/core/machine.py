"""The simulated machine: cores + L1s + directory + NVM + persistency.

:meth:`Machine.execute` carries one memory operation of one hardware
thread through the full stack:

1. the coherence fabric obtains the line in the needed state (possibly
   evicting a victim locally and downgrading a remote owner);
2. the persistency mechanism's hooks run for each coherence side
   effect and for the operation itself, issuing NVM persists and
   returning stall cycles;
3. the architectural effect is recorded in the global trace.

The returned latency is what the scheduler adds to the thread's clock.
"""

from __future__ import annotations

from typing import Optional, Tuple, Type, Union

from repro.coherence.directory import CoherenceFabric
from repro.coherence.l1cache import (
    CODE_TO_STATE,
    EXCLUSIVE,
    EXCLUSIVE_CODE,
    INVALID,
    MODIFIED,
    MODIFIED_CODE,
    SHARED,
    SHARED_CODE,
    CacheLine,
    MESIState,
)
from repro.common.params import MachineConfig
from repro.common.stats import CoreStats
from repro.consistency.events import MemOrder, MemoryEvent, Trace
from repro.core.thread import Op, OpKind
from repro.memory.address import line_address
from repro.memory.nvm import NVMController
from repro.obs import Observer
from repro.persistency import PersistencyMechanism, mechanism_by_name

Word = Optional[int]

# Hot-path aliases (enum member access is a metaclass lookup).
_WORK = OpKind.WORK
_READ = OpKind.READ
_WRITE = OpKind.WRITE
_CAS = OpKind.CAS
_ACQUIRE = MemOrder.ACQUIRE
_RELEASE = MemOrder.RELEASE
_ACQ_REL = MemOrder.ACQ_REL


class Machine:
    """One simulated multicore with a pluggable persistency mechanism."""

    def __init__(self, config: MachineConfig,
                 mechanism: Union[str, Type[PersistencyMechanism]] = "nop",
                 observer: Optional[Observer] = None,
                 ) -> None:
        self.config = config
        self.obs = observer
        self.fabric = CoherenceFabric(config, obs=observer)
        self.nvm = NVMController(config)
        self.trace = Trace(record=config.record_trace)
        self.stats = [CoreStats(core_id=i) for i in range(config.num_cores)]
        if isinstance(mechanism, str):
            mechanism = mechanism_by_name(mechanism)
        self.mechanism: PersistencyMechanism = mechanism(
            config, self.nvm, self.fabric, self.stats, obs=observer)
        self.boundary_event = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, core: int, op: Op, now: int) -> Tuple[object, int]:
        """Run ``op`` for hardware thread ``core`` at time ``now``.

        Returns ``(result, latency)`` where result is the load value,
        ``(success, old)`` for a CAS, the old value for an XCHG, or
        None for stores/work.
        """
        kind = op.kind
        if kind is _WORK:
            return None, op.cycles

        obs = self.obs
        if obs is not None and obs.provenance is not None:
            # Narrate the op's site: the scheduler executes one memory
            # op at a time machine-wide, so every store/persist/stall
            # the mechanism reports until the next op belongs to it
            # (downgrade stalls hit the requester — this core).
            obs.provenance.begin_op(op.site)
        stats = self.stats[core]
        line_addr = line_address(op.addr, self.config.line_bytes)
        exclusive = kind is not _READ
        access = self.fabric.access(core, line_addr, exclusive=exclusive,
                                    now=now)
        latency = access.latency
        if access.l1_hit:
            stats.l1_hits += 1
        else:
            stats.l1_misses += 1

        # Coherence side effects -> persistency hooks.
        if access.downgrade is not None:
            dg = access.downgrade
            self.stats[dg.owner].downgrades_received += 1
            if dg.was_modified and not dg.had_pending:
                # A data writeback of an already-persisted line: counts
                # toward the writeback total (Figure 6's denominator)
                # but can never be on the critical path.
                self.stats[dg.owner].writebacks_total += 1
            if obs is not None:
                obs.count("coh.downgrades")
                if dg.had_pending:
                    obs.count("coh.downgrades_dirty")
                obs.tick("coh.downgrades", now + latency)
                obs.instant(f"core{core}", f"downgrade c{dg.owner}",
                            now + latency, cat="coherence")
            latency += self.mechanism.on_downgrade(
                dg.owner, dg.line, dg.to_state, core, now + latency)
            if dg.line.has_pending:
                raise AssertionError(
                    f"{self.mechanism.name}: downgraded line "
                    f"{dg.line.addr:#x} still holds unpersisted words")
        if access.eviction is not None:
            ev = access.eviction
            stats.evictions += 1
            if ev.was_modified and not ev.had_pending:
                stats.writebacks_total += 1
            if obs is not None:
                obs.count("coh.evictions")
                if ev.had_pending:
                    obs.count("coh.evictions_dirty")
                obs.tick("coh.evictions", now + latency)
                obs.instant(f"core{core}", "evict", now + latency,
                            cat="coherence")
            latency += self.mechanism.on_evict(core, ev.line, now + latency)
            if ev.line.has_pending:
                raise AssertionError(
                    f"{self.mechanism.name}: evicted line "
                    f"{ev.line.addr:#x} still holds unpersisted words")
        stats.invalidations_received += access.invalidated_sharers
        if obs is not None and access.invalidated_sharers:
            obs.count("coh.invalidations", access.invalidated_sharers)

        # The operation itself.
        if kind is _READ:
            result, latency = self._do_read(core, op, now, latency)
        elif kind is _WRITE:
            result, latency = self._do_write(core, op, access.line, now,
                                             latency)
        else:
            result, latency = self._do_rmw(core, op, access.line, now,
                                           latency)
        return result, latency

    def coherence_access(self, core: int, line_addr: int, now: int,
                         exclusive: bool) -> Tuple[object, int]:
        """Coherence access plus persistency side-effect hooks.

        The batch engine's slow-op path: exactly the fabric/hook prefix
        of :meth:`execute` — same stats, same hook order, same
        assertions, and (when an Observer is attached, as it is on
        fast-path telemetry runs) the same ``coh.*`` narration.
        Returns the requester's now-valid line and the accumulated
        latency; the caller applies the operation itself
        (:meth:`_do_read` & friends or the batch engine's inline
        equivalents).
        """
        obs = self.obs
        stats = self.stats[core]
        access = self.fabric.access(core, line_addr, exclusive=exclusive,
                                    now=now)
        latency = access.latency
        if access.l1_hit:
            stats.l1_hits += 1
        else:
            stats.l1_misses += 1
        if access.downgrade is not None:
            dg = access.downgrade
            self.stats[dg.owner].downgrades_received += 1
            if dg.was_modified and not dg.had_pending:
                self.stats[dg.owner].writebacks_total += 1
            if obs is not None:
                obs.count("coh.downgrades")
                if dg.had_pending:
                    obs.count("coh.downgrades_dirty")
                obs.tick("coh.downgrades", now + latency)
                obs.instant(f"core{core}", f"downgrade c{dg.owner}",
                            now + latency, cat="coherence")
            latency += self.mechanism.on_downgrade(
                dg.owner, dg.line, dg.to_state, core, now + latency)
            if dg.line.has_pending:
                raise AssertionError(
                    f"{self.mechanism.name}: downgraded line "
                    f"{dg.line.addr:#x} still holds unpersisted words")
        if access.eviction is not None:
            ev = access.eviction
            stats.evictions += 1
            if ev.was_modified and not ev.had_pending:
                stats.writebacks_total += 1
            if obs is not None:
                obs.count("coh.evictions")
                if ev.had_pending:
                    obs.count("coh.evictions_dirty")
                obs.tick("coh.evictions", now + latency)
                obs.instant(f"core{core}", "evict", now + latency,
                            cat="coherence")
            latency += self.mechanism.on_evict(core, ev.line, now + latency)
            if ev.line.has_pending:
                raise AssertionError(
                    f"{self.mechanism.name}: evicted line "
                    f"{ev.line.addr:#x} still holds unpersisted words")
        stats.invalidations_received += access.invalidated_sharers
        if obs is not None and access.invalidated_sharers:
            obs.count("coh.invalidations", access.invalidated_sharers)
        return access.line, latency

    def make_fast_path(self, fastobs=None):
        """Build the fused miss/upgrade handlers for the batch engine.

        Returns ``(fast_miss, fast_upgrade)`` closures with every piece
        of fabric state pre-bound (all the referenced containers are
        identity-stable for the machine's lifetime).

        ``fast_miss`` is one flat function equivalent to
        :meth:`CoherenceFabric.access` (miss case) plus the side-effect
        hook block of :meth:`coherence_access`: same transition order,
        same latency arithmetic, same hook times — minus the per-layer
        calls and the AccessResult/Eviction/Downgrade records nobody
        reads on this path. ``fast_upgrade`` mirrors
        :meth:`CoherenceFabric._upgrade` (an upgrade never demotes an
        owner or evicts a victim, so only the invalidation count
        reaches stats). Both are pinned against the reference path by
        the fast-vs-reference equivalence tests.

        With ``fastobs`` (a :class:`repro.obs.fastobs.FastObs`) the
        closures also bump its flat coherence slots, replicating the
        observed layered path emission-for-emission:
        ``dir.misses``/``dir.upgrades`` and block-wait accounting,
        post-fill set occupancy, per-event hop counts (which accrue
        only between distinct tiles, mirroring :meth:`MeshNoC.latency`)
        and the ``coh.*`` counts with their timeline ticks at the
        layered path's exact timestamps (downgrades before the
        mechanism's downgrade stall, evictions after it). The
        fixed-ratio streams — ``noc.msgs`` (3 per miss + 1 per
        forwarding downgrade, 2 per upgrade + 1 per invalidating
        upgrade) and ``l1.fills`` (1 per miss) — are derived from those
        tallies at :meth:`FastObs.flush` instead of being counted per
        event.
        """
        fabric = self.fabric
        stats_list = self.stats
        mechanism = self.mechanism
        lids = fabric._lids
        lids_index = lids.index
        owner_arr = fabric._owner      # grown in place: alias stays valid
        sharers = fabric._sharers
        blocked = fabric._blocked_until
        lat = fabric._lat
        l1s = fabric.l1s
        invalidate_mask = fabric._invalidate_mask
        n = fabric._ncores
        home_shift = fabric._home_shift
        l1_hit_cycles = fabric._l1_hit
        llc_hit = fabric._llc_hit
        new_line = CacheLine.__new__
        intern_line = fabric._intern
        # Per-core container tables (identity-stable), so the miss path
        # pays one list index instead of an attribute chain per access.
        sets_by_core = [l1._sets for l1 in l1s]
        lru_by_core = [l1.lru for l1 in l1s]
        codes_by_core = [l1.state_codes for l1 in l1s]
        lines_by_core = [l1.lines for l1 in l1s]
        assoc = l1s[0]._assoc

        if fastobs is not None:
            from repro.obs import fastobs as _fo

            fo_coh = fastobs.coh
            fo_occ = fastobs.occupancy
            fo_bw = fastobs.block_wait
            fo_interval = fastobs.interval
            fo_tl_dg = fastobs.tl_downgrades
            fo_tl_ev = fastobs.tl_evictions
            hop = fabric.noc.hop_distance
            hops_tab = [hop(a, b)
                        for a in range(n) for b in range(n)]
            # Folded per-event hop totals: a plain (unforwarded) miss
            # crosses requester->home twice plus home->requester once;
            # an upgrade crosses requester->home twice. One table
            # lookup then replaces two lookups and two adds on the
            # hottest path.
            hops_miss3 = [2 * hop(a, b) + hop(b, a)
                          for a in range(n) for b in range(n)]
            hops_pair2 = [2 * hop(a, b)
                          for a in range(n) for b in range(n)]
            S_MISS = _fo.SLOT_DIR_MISSES
            S_UPG = _fo.SLOT_DIR_UPGRADES
            S_BW = _fo.SLOT_DIR_BLOCK_WAIT_CYCLES
            S_HOPS = _fo.SLOT_NOC_HOPS
            S_DG = _fo.SLOT_COH_DOWNGRADES
            S_DGD = _fo.SLOT_COH_DOWNGRADES_DIRTY
            S_EV = _fo.SLOT_COH_EVICTIONS
            S_EVD = _fo.SLOT_COH_EVICTIONS_DIRTY
            S_INV = _fo.SLOT_COH_INVALIDATIONS
            S_UPG_INV = _fo.SLOT_AUX_UPGRADE_INV
        else:
            fo_coh = None

        def fast_miss(core, line_addr, now, exclusive, set_index):
            stats = stats_list[core]
            stats.l1_misses += 1
            try:
                lid = lids_index[line_addr]
            except KeyError:
                # First touch only: every later miss takes the hit path.
                lid = lids.intern(line_addr)
                owner_arr.append(-1)
                sharers.append(0)
            home = (line_addr >> home_shift) % n
            req_home = lat[core * n + home]
            if blocked:
                block_wait = (blocked.get(line_addr, 0)
                              - (now + l1_hit_cycles + req_home))
                if block_wait < 0:
                    block_wait = 0
            else:
                block_wait = 0
            latency = l1_hit_cycles + req_home + llc_hit + block_wait
            if fo_coh is not None:
                # Message and fill counts are derived at flush from the
                # event tallies (3 msgs + 1 fill per miss, +1 msg per
                # forwarding downgrade); only hop distances — which
                # depend on the actual core/home/owner placement — and
                # the rarer tallies are accumulated per event here.
                fo_coh[S_MISS] += 1
                if block_wait:
                    fo_coh[S_BW] += block_wait
                    fo_bw[block_wait] = fo_bw.get(block_wait, 0) + 1

            # Remote owner: demote. Transitions happen now; the
            # mechanism hooks run after the full coherence latency is
            # known, exactly as the layered path does.
            dg_owner = -1
            owner = owner_arr[lid]
            if owner >= 0 and owner != core:
                # Set geometry is config-wide, so the requester's
                # set_index locates the line in the owner's L1 too.
                oset = sets_by_core[owner][set_index]
                oslot = oset.get(line_addr)
                if oslot is None:
                    raise AssertionError(
                        f"directory names core {owner} owner of "
                        f"{line_addr:#x} but the line is not resident")
                ocodes = codes_by_core[owner]
                owner_line = lines_by_core[owner][oslot]
                dg_had_pending = bool(owner_line.pending_words)
                dg_was_modified = ocodes[oslot] == MODIFIED_CODE
                latency += (lat[home * n + owner] + l1_hit_cycles
                            + lat[owner * n + core])
                if exclusive:
                    dg_to_state = INVALID
                    del oset[line_addr]
                    owner_line._detach()
                else:
                    dg_to_state = SHARED
                    ocodes[oslot] = SHARED_CODE
                    sharers[lid] |= 1 << owner
                owner_arr[lid] = -1
                dg_owner = owner
                if fo_coh is not None:
                    # Doubled requester->home leg plus the forwarding
                    # legs home->owner and owner->core.
                    d = (hops_pair2[core * n + home]
                         + hops_tab[home * n + owner]
                         + hops_tab[owner * n + core])
                    if d:
                        fo_coh[S_HOPS] += d
            else:
                latency += lat[home * n + core]
                if fo_coh is not None:
                    d = hops_miss3[core * n + home]
                    if d:
                        fo_coh[S_HOPS] += d

            invalidated = 0
            if exclusive:
                mask = sharers[lid]
                if mask:
                    invalidated = invalidate_mask(mask, core, line_addr)
                    sharers[lid] = 0

            # Victim eviction, fused (victim and fill share the set).
            cache_set = sets_by_core[core][set_index]
            lru_list = lru_by_core[core]
            codes = codes_by_core[core]
            lines = lines_by_core[core]
            victim = None
            if len(cache_set) >= assoc:
                vslot = min(cache_set.values(), key=lru_list.__getitem__)
                victim = lines[vslot]
                vaddr = victim.addr
                try:
                    vlid = lids_index[vaddr]
                except KeyError:
                    # Unreachable in practice (a resident line was
                    # interned when it was filled); kept for parity
                    # with the layered path's unconditional intern.
                    vlid = intern_line(vaddr)
                if owner_arr[vlid] == core:
                    owner_arr[vlid] = -1
                sharers[vlid] &= ~(1 << core)
                del cache_set[vaddr]
                # Inline _detach: capture final table state on the view.
                victim._state = CODE_TO_STATE[codes[vslot]]
                victim._lru_tick = lru_list[vslot]
                codes[vslot] = 0
                lines[vslot] = None
                victim._cache = None
                victim._slot = -1

            if exclusive:
                new_state = MODIFIED
                new_code = MODIFIED_CODE
                owner_arr[lid] = core
            elif not sharers[lid] and owner_arr[lid] < 0:
                new_state = EXCLUSIVE
                new_code = EXCLUSIVE_CODE
                owner_arr[lid] = core
            else:
                new_state = SHARED
                new_code = SHARED_CODE
                sharers[lid] |= 1 << core

            # Inline fill: the victim's slot is the free one when we
            # just evicted; otherwise scan the non-full set.
            if victim is not None:
                slot = vslot
            else:
                slot = set_index * assoc
                while codes[slot]:
                    slot += 1
            l1 = l1s[core]
            line = new_line(CacheLine)
            line.addr = line_addr
            line.pending_words = {}
            line.min_epoch = None
            line.release_bit = False
            line._state = new_state
            line._lru_tick = 0
            line._cache = l1
            line._slot = slot
            codes[slot] = new_code
            lines[slot] = line
            cache_set[line_addr] = slot
            tick = l1._tick + 1
            l1._tick = tick
            lru_list[slot] = tick
            if fo_coh is not None:
                # Layered L1.fill: post-insert set occupancy (the fill
                # count itself is one-per-miss, derived at flush).
                fo_occ[len(cache_set)] += 1

            # Side-effect hooks, in the layered path's order.
            if dg_owner >= 0:
                ostats = stats_list[dg_owner]
                ostats.downgrades_received += 1
                if dg_was_modified and not dg_had_pending:
                    ostats.writebacks_total += 1
                if fo_coh is not None:
                    # Narrated before the mechanism's downgrade stall
                    # grows latency, exactly like Machine.execute.
                    fo_coh[S_DG] += 1
                    if dg_had_pending:
                        fo_coh[S_DGD] += 1
                    if fo_interval:
                        w = (now + latency) // fo_interval
                        fo_tl_dg[w] = fo_tl_dg.get(w, 0) + 1
                latency += mechanism.on_downgrade(
                    dg_owner, owner_line, dg_to_state, core, now + latency)
                if owner_line.pending_words:
                    raise AssertionError(
                        f"{mechanism.name}: downgraded line "
                        f"{owner_line.addr:#x} still holds unpersisted "
                        f"words")
            if victim is not None:
                stats.evictions += 1
                ev_had_pending = bool(victim.pending_words)
                if victim._state is MODIFIED and not ev_had_pending:
                    stats.writebacks_total += 1
                if fo_coh is not None:
                    # Narrated after any downgrade stall, before the
                    # eviction's own: the layered path's timestamp.
                    fo_coh[S_EV] += 1
                    if ev_had_pending:
                        fo_coh[S_EVD] += 1
                    if fo_interval:
                        w = (now + latency) // fo_interval
                        fo_tl_ev[w] = fo_tl_ev.get(w, 0) + 1
                latency += mechanism.on_evict(core, victim, now + latency)
                if victim.pending_words:
                    raise AssertionError(
                        f"{mechanism.name}: evicted line "
                        f"{victim.addr:#x} still holds unpersisted words")
            if invalidated:
                stats.invalidations_received += invalidated
                if fo_coh is not None:
                    fo_coh[S_INV] += invalidated
            return line, latency

        def fast_upgrade(core, line, now):
            stats = stats_list[core]
            stats.l1_misses += 1
            line_addr = line.addr
            lid = lids_index.get(line_addr)
            if lid is None:
                lid = lids.intern(line_addr)
                owner_arr.append(-1)
                sharers.append(0)
            home = (line_addr >> home_shift) % n
            req_home = lat[core * n + home]
            if blocked:
                block_wait = (blocked.get(line_addr, 0)
                              - (now + l1_hit_cycles + req_home))
                if block_wait < 0:
                    block_wait = 0
            else:
                block_wait = 0
            mask = sharers[lid]
            invalidated = (invalidate_mask(mask, core, line_addr)
                           if mask else 0)
            sharers[lid] = 0
            owner_arr[lid] = core
            codes_by_core[core][line._slot] = MODIFIED_CODE
            latency = (l1_hit_cycles + 2 * req_home + llc_hit
                       + block_wait)
            if fo_coh is not None:
                # Observed _upgrade: two messages (arrival probe plus
                # one doubled-value noc.latency call), derived at flush
                # from the upgrade count; hops accrue here.
                d = hops_pair2[core * n + home]
                if d:
                    fo_coh[S_HOPS] += d
                fo_coh[S_UPG] += 1
                if block_wait:
                    fo_coh[S_BW] += block_wait
                    fo_bw[block_wait] = fo_bw.get(block_wait, 0) + 1
            if invalidated:
                latency += lat[home * n + core]  # inv/ack, overlapped
                stats.invalidations_received += invalidated
                if fo_coh is not None:
                    fo_coh[S_UPG_INV] += 1
                    d = hops_tab[home * n + core]
                    if d:
                        fo_coh[S_HOPS] += d
                    fo_coh[S_INV] += invalidated
            return latency

        return fast_miss, fast_upgrade

    def _do_read(self, core: int, op: Op, now: int,
                 latency: int) -> Tuple[Word, int]:
        stats = self.stats[core]
        stats.reads += 1
        order = op.order
        event = self.trace.record_read(core, op.addr, order)
        # A READ is always a read effect: is_acquire reduces to the
        # ordering annotation.
        if order is _ACQUIRE or order is _ACQ_REL:
            stats.acquires += 1
            latency += self.mechanism.on_acquire(
                core, event, now + latency,
                sync_source=self._sync_source(event))
        return event.read_value, latency

    def _do_write(self, core: int, op: Op, line, now: int,
                  latency: int) -> Tuple[None, int]:
        stats = self.stats[core]
        stats.writes += 1
        order = op.order
        event = self.trace.record_write(core, op.addr, op.value, order)
        # A WRITE is always a write effect: is_release reduces to the
        # ordering annotation.
        if order is _RELEASE or order is _ACQ_REL:
            stats.releases += 1
            latency += self.mechanism.on_release(core, line, event,
                                                 now + latency)
        else:
            latency += self.mechanism.on_write(core, line, event,
                                               now + latency)
        return None, latency

    def _do_rmw(self, core: int, op: Op, line, now: int,
                latency: int) -> Tuple[object, int]:
        stats = self.stats[core]
        stats.rmws += 1
        if op.kind is _CAS:
            event = self.trace.record_rmw(core, op.addr, op.expected,
                                          op.value, op.order)
            result: object = (event.success, event.read_value)
        else:  # XCHG
            event = self.trace.record_unconditional_rmw(
                core, op.addr, op.value, op.order)
            result = event.read_value
        # An RMW is always a read effect; its write effect is gated on
        # success — so the properties reduce to the annotation checks.
        order = op.order
        if order is _ACQUIRE or order is _ACQ_REL:
            stats.acquires += 1
            latency += self.mechanism.on_acquire(
                core, event, now + latency,
                sync_source=self._sync_source(event))
        if event.success:
            if order is _RELEASE or order is _ACQ_REL:
                stats.releases += 1
            latency += self.mechanism.on_rmw(core, line, event,
                                             now + latency)
        return result, latency

    def _sync_source(self, event: MemoryEvent) -> Optional[int]:
        """Core whose release this acquire reads from, if any."""
        if event.source_release and event.source_thread != event.thread_id:
            return event.source_thread
        return None

    # ------------------------------------------------------------------
    # Phase management
    # ------------------------------------------------------------------

    def install_initial_state(self, words, *, share: bool = False) -> None:
        """Install pre-built durable state (the pre-populated LFD).

        Used instead of executing the setup phase op-by-op: the words
        become both architectural memory and the NVM baseline image, as
        if a quiesced checkpoint had been taken (Section 6.1: "the data
        structure size refers to the initial number of nodes ... before
        statistics are collected").
        """
        if len(self.trace):
            raise ValueError("install initial state before executing ops")
        self.trace.initialize(words, share=share)
        self.nvm.set_baseline_image(words, share=share)
        self.boundary_event = 0

    def checkpoint(self, now: int) -> None:
        """Drain all buffers and make the current state the baseline."""
        if self.obs is not None and self.obs.provenance is not None:
            self.obs.provenance.begin_op("(drain)")
        stall = self.mechanism.drain(now)
        if self.obs is not None:
            self.obs.span("run", "checkpoint-drain", now, stall,
                          cat="drain")
        self.nvm.set_baseline_image(self.trace.memory_snapshot(),
                                    self.trace.last_writer_snapshot())
        self.nvm.reset_log()  # measured phase starts a fresh log
        self.boundary_event = len(self.trace)

    def finish(self, now: int) -> int:
        """End of run: drain everything so all writes become durable."""
        if self.obs is not None and self.obs.provenance is not None:
            self.obs.provenance.begin_op("(drain)")
        stall = self.mechanism.drain(now)
        if self.obs is not None:
            self.obs.span("run", "final-drain", now, stall, cat="drain")
        return stall
