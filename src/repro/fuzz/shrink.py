"""Counterexample shrinking: minimize (schedule mutation, crash prefix).

A raw finding from a campaign is a mutated schedule plus one sampled
crash prefix whose NVM image fails null recovery. Most of that is
noise: typically only a few (often zero) of the nudges matter, and the
*first* failing prefix is far earlier than the sampled one. The
shrinker reduces the pair until it is **locally minimal**:

* dropping any single remaining nudge makes every crash prefix of the
  re-run recover (greedy delta-debugging over the nudge set, restarted
  after every successful removal);
* the reported prefix is the smallest failing prefix of the final
  mutation's run — by construction no shorter prefix fails.

Each probe re-simulates the workload (deterministic, so probes are
pure), making shrinking O(nudges^2 + 1) simulations — small, because
mutations are capped at 8 nudges.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

from repro.core.simulator import SimulationResult
from repro.fuzz.mutation import ScheduleMutation

#: Runs the workload under a mutation (the engine binds spec/config).
RunFn = Callable[[ScheduleMutation], SimulationResult]


@dataclasses.dataclass
class ShrunkCounterexample:
    """A locally minimal failing (mutation, prefix) pair."""

    mutation: ScheduleMutation
    prefix: int
    problems: List[str]
    #: Sizes of the raw finding this was shrunk from.
    original_nudges: int = 0
    original_prefix: int = 0
    probes: int = 0

    @property
    def strictly_smaller(self) -> bool:
        """Strictly smaller than the raw finding in both dimensions
        that had slack (fewer nudges if there were any, shorter prefix
        if the first failure precedes the sampled one)."""
        no_worse = (len(self.mutation) <= self.original_nudges
                    and self.prefix <= self.original_prefix)
        return no_worse and (len(self.mutation) < self.original_nudges
                             or self.prefix < self.original_prefix)


def first_failing_prefix(result: SimulationResult
                         ) -> Optional[Tuple[int, List[str]]]:
    """Smallest crash prefix whose image fails structural validation."""
    log_len = len(result.nvm.persist_log())
    for prefix in range(log_len + 1):
        report = result.structure.validate_image(
            result.nvm.image_after_prefix(prefix))
        if not report.ok:
            return prefix, [str(p) for p in report.problems[:3]]
    return None


def shrink_counterexample(mutation: ScheduleMutation,
                          sampled_prefix: int,
                          run: RunFn) -> Optional[ShrunkCounterexample]:
    """Shrink a raw finding to a locally minimal counterexample.

    Returns None if the finding does not reproduce (the re-run of the
    unmodified mutation has no failing prefix) — a non-deterministic
    oracle would be a bug, and the engine treats it loudly as one.
    """
    probes = 1
    failure = first_failing_prefix(run(mutation))
    if failure is None:
        return None
    current = mutation
    prefix, problems = failure
    changed = True
    while changed and len(current):
        changed = False
        for drop in range(len(current.nudges)):
            trial = ScheduleMutation(current.nudges[:drop]
                                     + current.nudges[drop + 1:])
            probes += 1
            failure = first_failing_prefix(run(trial))
            if failure is not None:
                current = trial
                prefix, problems = failure
                changed = True
                break
    return ShrunkCounterexample(
        mutation=current, prefix=prefix, problems=problems,
        original_nudges=len(mutation), original_prefix=sampled_prefix,
        probes=probes)
