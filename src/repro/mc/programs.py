"""Canned litmus programs for the model checker.

Each program is small enough for exhaustive exploration but chosen to
exercise a distinct synchronization shape: the paper's Figure 1
release-CAS insert, message passing through one and two relay hops,
a one-to-many release broadcast, and a three-hop chain at the size
where brute-force enumeration (277 200 interleavings) stops being
practical and DPOR is the only way to cover every trace.

Design constraint: no two threads issue *plain* writes to the same
word. Cross-thread same-word traffic goes through CAS (at most one of
the competing writes performs), so every program is data-race-free at
word granularity in the way the RP crash-state semantics expects —
exactly the discipline the paper's log-free data structures follow.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.consistency.events import MemOrder
from repro.consistency.litmus import LitmusOp, Program, \
    count_interleavings, figure1_initial_memory, figure1_insert, read, write

Word = Optional[int]


@dataclasses.dataclass(frozen=True)
class LitmusProgram:
    """A named litmus program plus its initial memory.

    ``brute_force_ok`` marks programs small enough that enumerating
    every interleaving (for the DPOR equivalence pins) stays cheap;
    larger programs are explored by DPOR only.
    """

    name: str
    description: str
    threads: Tuple[Tuple[LitmusOp, ...], ...]
    init: Tuple[Tuple[int, Word], ...] = ()
    brute_force_ok: bool = True

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def num_ops(self) -> int:
        return sum(len(ops) for ops in self.threads)

    @property
    def interleavings(self) -> int:
        return count_interleavings(self.threads)

    def program(self) -> Program:
        """The thread lists in the shape ``run_interleaving`` expects."""
        return [list(ops) for ops in self.threads]

    def initial_memory(self) -> Dict[int, Word]:
        return dict(self.init)


def _freeze(threads: List[List[LitmusOp]]) -> Tuple[Tuple[LitmusOp, ...], ...]:
    return tuple(tuple(ops) for ops in threads)


def _figure1() -> LitmusProgram:
    return LitmusProgram(
        name="figure1_insert",
        description="Paper Figure 1: release-CAS list insert, "
                    "T1 inserts after T0's published node",
        threads=_freeze(figure1_insert()),
        init=tuple(sorted(figure1_initial_memory().items())),
    )


def _mp3_chain() -> LitmusProgram:
    data0, flag0, data1, flag1 = 0x10, 0x20, 0x30, 0x40
    threads = [
        [write(data0, 1), write(flag0, 1, MemOrder.RELEASE)],
        [read(flag0, MemOrder.ACQUIRE), write(data1, 2),
         write(flag1, 1, MemOrder.RELEASE)],
        [read(flag1, MemOrder.ACQUIRE), read(data1), read(data0)],
    ]
    return LitmusProgram(
        name="mp3_chain",
        description="Message passing relayed through a middle thread "
                    "(3 threads, 8 ops)",
        threads=_freeze(threads),
    )


def _wrc3_cas() -> LitmusProgram:
    x, lock_a, y, lock_b, z = 0x10, 0x20, 0x30, 0x40, 0x50
    threads = [
        [write(x, 1), LitmusOp("cas", lock_a, value=1, expected=0,
                               order=MemOrder.RELEASE)],
        [read(lock_a, MemOrder.ACQUIRE), write(y, 1),
         LitmusOp("cas", lock_b, value=1, expected=0,
                  order=MemOrder.RELEASE)],
        [read(lock_b, MemOrder.ACQUIRE), write(z, 1)],
    ]
    return LitmusProgram(
        name="wrc3_cas",
        description="Write-to-read causality through two release-CAS "
                    "hops (3 threads, 7 ops)",
        threads=_freeze(threads),
        init=((lock_a, 0), (lock_b, 0)),
    )


def _bcast4() -> LitmusProgram:
    payload, flag = 0x10, 0x20
    sinks = (0x30, 0x40, 0x50)
    threads = [[write(payload, 1), write(flag, 1, MemOrder.RELEASE)]]
    for i, sink in enumerate(sinks):
        threads.append([read(flag, MemOrder.ACQUIRE), write(sink, i + 1)])
    return LitmusProgram(
        name="bcast4",
        description="One release broadcast observed by three readers "
                    "(4 threads, 8 ops, 2520 interleavings, 8 traces)",
        threads=_freeze(threads),
    )


def _chain4() -> LitmusProgram:
    d0, f0, d1, f1, d2, f2 = 0x10, 0x20, 0x30, 0x40, 0x50, 0x60
    threads = [
        [write(d0, 1), write(f0, 1, MemOrder.RELEASE)],
        [read(f0, MemOrder.ACQUIRE), write(d1, 2),
         write(f1, 1, MemOrder.RELEASE)],
        [read(f1, MemOrder.ACQUIRE), write(d2, 3),
         write(f2, 1, MemOrder.RELEASE)],
        [read(f2, MemOrder.ACQUIRE), read(d2), read(d1), read(d0)],
    ]
    return LitmusProgram(
        name="chain4",
        description="Three-hop release chain (4 threads, 12 ops, "
                    "277200 interleavings — DPOR-only scope)",
        threads=_freeze(threads),
        brute_force_ok=False,
    )


#: All canned programs, by name.
PROGRAMS: Dict[str, LitmusProgram] = {
    prog.name: prog
    for prog in (_figure1(), _mp3_chain(), _wrc3_cas(), _bcast4(),
                 _chain4())
}

#: The brute-forceable suite: every selftest equivalence pin
#: (DPOR classes == enumerated classes, verdicts bit-identical)
#: runs over exactly these.
SUITE: Tuple[str, ...] = tuple(
    name for name, prog in PROGRAMS.items() if prog.brute_force_ok)


def get_program(name: str) -> LitmusProgram:
    """Look up a canned program by name."""
    try:
        return PROGRAMS[name]
    except KeyError:
        raise ValueError(
            f"unknown litmus program {name!r}; choose from "
            f"{sorted(PROGRAMS)}") from None
