"""The ``linkedlist`` workload: a Harris lock-free sorted list.

This is the paper's read-heaviest workload — every operation traverses
half the list on average, so persistency stalls are amortized over long
acquire-load chains (Section 6.4 explains why its LRP-vs-BB gap is the
smallest of the five LFDs).
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.lfds.base import (
    LogFreeStructure,
    OpGen,
    RecoveryReport,
    Word,
)
from repro.lfds.harris import HarrisListOps
from repro.memory.address import HeapAllocator


class LinkedList(LogFreeStructure):
    """Sorted lock-free linked list (Harris, DISC'01)."""

    name = "linkedlist"

    def __init__(self, allocator: HeapAllocator,
                 max_nodes: int = 1 << 22) -> None:
        super().__init__(allocator)
        self._ops = HarrisListOps(allocator)
        self.head_ptr = allocator.alloc(1, line_align=True)
        self._max_nodes = max_nodes

    def insert(self, key: int, value: int, tid=None) -> OpGen:
        return self._ops.insert(self.head_ptr, key, value,
                                allocator=self._allocator_for(tid))

    def delete(self, key: int) -> OpGen:
        return self._ops.delete(self.head_ptr, key)

    def contains(self, key: int) -> OpGen:
        return self._ops.contains(self.head_ptr, key)

    def build_initial(self, keys: Iterable[int],
                      memory: Dict[int, Word]) -> None:
        self._ops.build_chain(self.head_ptr, keys, memory,
                              value_of=lambda k: k + 1)

    def validate_image(self, image: Dict[int, Word]) -> RecoveryReport:
        problems, count, live = self._ops.walk(image, self.head_ptr,
                                               self._max_nodes)
        return RecoveryReport(structure=self.name, ok=not problems,
                              problems=problems, reachable_nodes=count,
                              live_keys=live)

    def collect_keys(self, memory: Dict[int, Word]) -> Set[int]:
        _problems, _count, live = self._ops.walk(memory, self.head_ptr,
                                                 self._max_nodes)
        return live
