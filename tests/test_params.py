"""Unit tests for repro.common.params (Table 1 configuration)."""

import dataclasses
import math

import pytest

from repro.common.params import DEFAULT_CONFIG, MachineConfig, NVMMode


class TestDefaults:
    def test_table1_processor(self):
        assert DEFAULT_CONFIG.num_cores == 64

    def test_table1_l1(self):
        assert DEFAULT_CONFIG.l1_size_bytes == 32 * 1024
        assert DEFAULT_CONFIG.l1_assoc == 8
        assert DEFAULT_CONFIG.l1_hit_cycles == 2
        assert DEFAULT_CONFIG.line_bytes == 64

    def test_table1_llc(self):
        assert DEFAULT_CONFIG.llc_hit_cycles == 30

    def test_table1_nvm_latencies(self):
        assert DEFAULT_CONFIG.nvm_cached_cycles == 120
        assert DEFAULT_CONFIG.nvm_uncached_cycles == 350

    def test_table1_ret(self):
        assert DEFAULT_CONFIG.ret_entries == 32

    def test_default_mode_is_cached(self):
        assert DEFAULT_CONFIG.nvm_mode is NVMMode.CACHED


class TestDerived:
    def test_l1_num_sets(self):
        # 32KB / (64B * 8-way) = 64 sets
        assert DEFAULT_CONFIG.l1_num_sets == 64

    def test_line_offset_bits(self):
        assert DEFAULT_CONFIG.line_offset_bits == 6

    def test_persist_cycles_cached(self):
        assert DEFAULT_CONFIG.nvm_persist_cycles == 120

    def test_persist_cycles_uncached(self):
        config = dataclasses.replace(DEFAULT_CONFIG,
                                     nvm_mode=NVMMode.UNCACHED)
        assert config.nvm_persist_cycles == 350

    def test_occupancy_tracks_mode(self):
        cached = DEFAULT_CONFIG
        uncached = dataclasses.replace(cached, nvm_mode=NVMMode.UNCACHED)
        assert cached.nvm_occupancy_cycles == cached.nvm_cached_occupancy
        assert (uncached.nvm_occupancy_cycles
                == cached.nvm_uncached_occupancy)

    def test_epoch_limit(self):
        assert DEFAULT_CONFIG.epoch_limit == 256

    def test_mesh_dim_covers_cores(self):
        assert DEFAULT_CONFIG.mesh_dim ** 2 >= DEFAULT_CONFIG.num_cores

    def test_mesh_dim_small_machine(self):
        config = MachineConfig(num_cores=5)
        assert config.mesh_dim == 3

    def test_mesh_dim_single_core(self):
        assert MachineConfig(num_cores=1).mesh_dim == 1


class TestValidation:
    def test_rejects_non_power_of_two_lines(self):
        with pytest.raises(ValueError):
            MachineConfig(line_bytes=48)

    def test_rejects_indivisible_l1(self):
        with pytest.raises(ValueError):
            MachineConfig(l1_size_bytes=1000)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            MachineConfig(num_cores=0)

    def test_rejects_bad_watermark(self):
        with pytest.raises(ValueError):
            MachineConfig(ret_entries=8, ret_watermark=9)
        with pytest.raises(ValueError):
            MachineConfig(ret_watermark=0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.num_cores = 1


class TestDescribe:
    def test_describe_mentions_table1_facts(self):
        text = DEFAULT_CONFIG.describe()
        assert "64-core" in text
        assert "32KB" in text
        assert "MESI" in text
        assert "120 cycles" in text
        assert "350 cycles" in text
        assert "32 Entries" in text

    def test_describe_is_multiline(self):
        assert len(DEFAULT_CONFIG.describe().splitlines()) >= 7
