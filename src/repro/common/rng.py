"""Deterministic random-number helpers.

Every stochastic choice in the simulator and workloads draws from a
:class:`random.Random` seeded from a single run seed, so that a given
(config, workload, seed) triple replays identically — a requirement for
both the property-based tests and the crash-recovery experiments.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def make_rng(seed: int, *streams: object) -> random.Random:
    """Create an independent RNG derived from ``seed`` and a stream tag.

    Different ``streams`` tags (e.g. ``("keys", thread_id)``) yield
    decorrelated generators from the same master seed. The derivation
    is stable across processes (no reliance on randomized ``hash()``),
    so every run replays identically for a given seed.
    """
    tag = repr((seed, *streams)).encode()
    digest = hashlib.sha256(tag).digest()
    return random.Random(int.from_bytes(digest[:8], "little"))


def weighted_choice(rng: random.Random, items: Sequence[T],
                    weights: Sequence[float]) -> T:
    """Pick one of ``items`` with the given relative ``weights``."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if point < acc:
            return item
    return items[-1]
