"""Persistency models and their microarchitectural mechanisms.

The mechanisms are the paper's comparison points (Section 6.2):

* :class:`NOPMechanism` — volatile execution, no guarantees;
* :class:`SBMechanism` — strict full persist barriers enforcing RP;
* :class:`BBMechanism` — state-of-the-art buffered full barriers
  enforcing RP;
* :class:`LRPMechanism` — the paper's lazy one-sided barriers (RP);
* :class:`ARPMechanism` — acquire-release persistency (too weak for
  LFD recovery; included for the Figure 1 demonstration).
"""

from repro.persistency.base import PersistencyMechanism
from repro.persistency.nop import NOPMechanism
from repro.persistency.sb import SBMechanism
from repro.persistency.bb import BBMechanism
from repro.persistency.lrp import LRPMechanism
from repro.persistency.arp import ARPMechanism
from repro.persistency.buffered import DPOMechanism, HOPSMechanism
from repro.persistency.checker import RPChecker, Violation
from repro.persistency import rp_model

MECHANISMS = {
    mech.name: mech
    for mech in (NOPMechanism, SBMechanism, BBMechanism, LRPMechanism,
                 ARPMechanism, DPOMechanism, HOPSMechanism)
}


def mechanism_by_name(name: str):
    """Look up a mechanism class by its short name (e.g. ``"lrp"``)."""
    try:
        return MECHANISMS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown mechanism {name!r}; choose from "
            f"{sorted(MECHANISMS)}") from None


__all__ = [
    "PersistencyMechanism",
    "NOPMechanism",
    "SBMechanism",
    "BBMechanism",
    "LRPMechanism",
    "ARPMechanism",
    "DPOMechanism",
    "HOPSMechanism",
    "RPChecker",
    "Violation",
    "rp_model",
    "MECHANISMS",
    "mechanism_by_name",
]
