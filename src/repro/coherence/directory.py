"""Directory-based MESI coherence fabric (Table 1: directory MESI).

The fabric owns the per-line directory state (single M/E owner or a set
of S sharers), the banked-LLC/home-tile timing, and the coherence
transitions triggered by core accesses. It is *behavioral*: transitions
are applied atomically per access, with additive latency composed from
the Table 1 parameters — but the events the persistency mechanisms hook
(evictions, downgrades, invalidations of dirty lines, blocked lines at
the directory) are modeled individually, because they are exactly what
differentiates SB/BB/LRP.

Persistency interplay (who calls whom):

* The :class:`~repro.core.machine.Machine` performs an access through
  :meth:`CoherenceFabric.access`, which returns the coherence latency
  plus the list of side effects (victim eviction in the requester's L1,
  downgrade/invalidation of a remote owner's dirty line).
* The machine then invokes the active persistency mechanism's hooks for
  each side effect; the hooks issue NVM persists and return extra stall
  cycles charged to the requester.
* Mechanisms may *block* a line at the directory until a persist ack
  (LRP invariant I4); subsequent accesses to that line wait it out.

Storage layout: line addresses are interned to dense line ids
(:class:`~repro.common.tables.LineIdMap`); per-line owner state lives
in a flat ``array('i')`` (-1 = no owner) and the sharer set in a list
of per-line core bitmasks (Python ints, so core counts above the word
size still work). :class:`_DirEntry` remains as a view over those
tables for tests and diagnostics.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Set

from repro.coherence.l1cache import (
    EXCLUSIVE,
    INVALID,
    MODIFIED,
    SHARED,
    CacheLine,
    L1Cache,
    MESIState,
)
from repro.coherence.noc import MeshNoC
from repro.common.params import MachineConfig
from repro.common.tables import LineIdMap
from repro.obs import Observer

# The three result records below are plain __slots__ classes rather
# than dataclasses: one is allocated per miss/eviction/downgrade, and
# skipping the per-instance __dict__ is measurable at bench scale.


class Downgrade:
    """A remote owner's line was demoted on behalf of the requester."""

    __slots__ = ("owner", "line", "to_state", "had_pending", "was_modified")

    def __init__(self, owner: int, line: CacheLine, to_state: MESIState,
                 had_pending: bool, was_modified: bool = False) -> None:
        self.owner = owner
        self.line = line
        self.to_state = to_state     # SHARED (read req.) or INVALID (write)
        self.had_pending = had_pending   # dirty words before the demotion
        self.was_modified = was_modified  # held modified data (a writeback)


class Eviction:
    """A victim line displaced from the requester's own L1."""

    __slots__ = ("core", "line", "had_pending", "was_modified")

    def __init__(self, core: int, line: CacheLine, had_pending: bool,
                 was_modified: bool = False) -> None:
        self.core = core
        self.line = line
        self.had_pending = had_pending
        self.was_modified = was_modified


class AccessResult:
    """Outcome of one coherence access (before persistency stalls)."""

    __slots__ = ("latency", "l1_hit", "block_wait", "eviction",
                 "downgrade", "invalidated_sharers", "line")

    def __init__(self, latency: int, l1_hit: bool, block_wait: int = 0,
                 eviction: Optional[Eviction] = None,
                 downgrade: Optional[Downgrade] = None,
                 invalidated_sharers: int = 0,
                 line: Optional[CacheLine] = None) -> None:
        self.latency = latency
        self.l1_hit = l1_hit
        self.block_wait = block_wait
        self.eviction = eviction
        self.downgrade = downgrade
        self.invalidated_sharers = invalidated_sharers
        self.line = line   # the requester's (now valid) line


class _DirEntry:
    """View of one line's directory state over the fabric's tables."""

    __slots__ = ("_fabric", "_lid")

    def __init__(self, fabric: "CoherenceFabric", lid: int) -> None:
        self._fabric = fabric
        self._lid = lid

    @property
    def owner(self) -> Optional[int]:
        owner = self._fabric._owner[self._lid]
        return None if owner < 0 else owner

    @property
    def sharers(self) -> Set[int]:
        mask = self._fabric._sharers[self._lid]
        cores = set()
        while mask:
            low = mask & -mask
            cores.add(low.bit_length() - 1)
            mask ^= low
        return cores


class CoherenceFabric:
    """All L1s + directory + NoC, orchestrating MESI transitions."""

    def __init__(self, config: MachineConfig,
                 obs: Optional[Observer] = None) -> None:
        self._config = config
        self.obs = obs
        self.noc = MeshNoC(config, obs=obs)
        self.l1s: List[L1Cache] = [
            L1Cache(core_id, config, obs=obs)
            for core_id in range(config.num_cores)
        ]
        self._lids = LineIdMap()
        self._owner = array("i")       # line id -> owning core, -1 = none
        self._sharers: List[int] = []  # line id -> sharer core bitmask
        self._blocked_until: Dict[int, int] = {}
        # Hot-path constants: miss handling reads these several times
        # per access, and frozen-dataclass field access is not free.
        self._l1_hit = config.l1_hit_cycles
        self._llc_hit = config.llc_hit_cycles
        self._ncores = config.num_cores
        self._home_shift = config.line_offset_bits
        self._lat = self.noc._latency_table

    # ------------------------------------------------------------------
    # Directory-side services used by persistency mechanisms
    # ------------------------------------------------------------------

    def block_line_until(self, line_addr: int, time: int) -> None:
        """Block requests for a line until ``time`` (LRP invariant I4)."""
        current = self._blocked_until.get(line_addr, 0)
        if self.obs is not None and time > current:
            self.obs.count("dir.lines_blocked")
        self._blocked_until[line_addr] = max(current, time)

    def blocked_until(self, line_addr: int) -> int:
        return self._blocked_until.get(line_addr, 0)

    def _intern(self, line_addr: int) -> int:
        """The line's dense id, allocating directory state on first use."""
        lid = self._lids.index.get(line_addr)
        if lid is None:
            lid = self._lids.intern(line_addr)
            self._owner.append(-1)
            self._sharers.append(0)
        return lid

    def directory_state(self, line_addr: int) -> _DirEntry:
        """Read-only view of a line's directory entry (for tests)."""
        return _DirEntry(self, self._intern(line_addr))

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------

    def access(self, core_id: int, line_addr: int, *, exclusive: bool,
               now: int) -> AccessResult:
        """Obtain ``line_addr`` in the required state for ``core_id``.

        Applies all coherence transitions and returns latency plus the
        side effects; persistency stalls are layered on by the caller.
        """
        l1 = self.l1s[core_id]
        line = l1.lookup(line_addr)
        home = (line_addr >> self._home_shift) % self._ncores

        if line is not None and line.state is not INVALID:
            state = line.state
            if not exclusive or state is MODIFIED or state is EXCLUSIVE:
                if exclusive and state is EXCLUSIVE:
                    line.state = MODIFIED  # silent E->M upgrade
                return AccessResult(latency=self._l1_hit, l1_hit=True,
                                    line=line)
            # S -> M upgrade: invalidate the other sharers via the home.
            return self._upgrade(core_id, line, home, now)

        return self._miss(core_id, line_addr, home, exclusive=exclusive,
                          now=now)

    def _invalidate_mask(self, mask: int, core_id: int,
                         line_addr: int) -> int:
        """Invalidate every sharer in ``mask`` except ``core_id``."""
        invalidated = 0
        mask &= ~(1 << core_id)
        l1s = self.l1s
        # Set geometry is config-wide: derive the index once, not per
        # sharer (a hot line can have every other core in the mask).
        set_index = l1s[0]._set_index(line_addr)
        while mask:
            low = mask & -mask
            # Inline _invalidate_sharer: fused lookup + remove (the
            # helpers would each re-derive the set index and re-probe
            # the slot dict; this loop is the invalidation hot path).
            l1 = l1s[low.bit_length() - 1]
            cache_set = l1._sets[set_index]
            slot = cache_set.get(line_addr)
            if slot is not None:
                line = l1.lines[slot]
                if line.pending_words:
                    raise AssertionError(
                        "a SHARED line must not hold unpersisted writes")
                del cache_set[line_addr]
                line._detach()
            invalidated += 1
            mask ^= low
        return invalidated

    def _upgrade(self, core_id: int, line: CacheLine, home: int,
                 now: int) -> AccessResult:
        line_addr = line.addr
        lid = self._intern(line_addr)
        obs = self.obs
        if obs is not None:
            # Observed path: keep the exact per-call noc.latency pattern
            # (each call counts a NoC message) of the original model.
            cfg = self._config
            arrival = now + cfg.l1_hit_cycles + self.noc.latency(core_id,
                                                                 home)
            block_wait = max(0, self.blocked_until(line_addr) - arrival)
            obs.count("dir.upgrades")
            if block_wait:
                obs.count("dir.block_wait_cycles", block_wait)
                obs.observe("dir.block_wait", block_wait)
            invalidated = self._invalidate_mask(self._sharers[lid], core_id,
                                                line_addr)
            self._sharers[lid] = 0
            self._owner[lid] = core_id
            line.state = MODIFIED
            latency = (cfg.l1_hit_cycles
                       + 2 * self.noc.latency(core_id, home)
                       + cfg.llc_hit_cycles + block_wait)
            if invalidated:
                latency += self.noc.latency(home, core_id)  # inv/ack round
            return AccessResult(latency=latency, l1_hit=False,
                                block_wait=block_wait,
                                invalidated_sharers=invalidated, line=line)
        req_home = self._lat[core_id * self._ncores + home]
        if self._blocked_until:
            block_wait = (self._blocked_until.get(line_addr, 0)
                          - (now + self._l1_hit + req_home))
            if block_wait < 0:
                block_wait = 0
        else:
            block_wait = 0
        mask = self._sharers[lid]
        invalidated = (self._invalidate_mask(mask, core_id, line_addr)
                       if mask else 0)
        self._sharers[lid] = 0
        self._owner[lid] = core_id
        line.state = MODIFIED
        latency = self._l1_hit + 2 * req_home + self._llc_hit + block_wait
        if invalidated:
            # inv/ack round, overlapped
            latency += self._lat[home * self._ncores + core_id]
        return AccessResult(latency=latency, l1_hit=False,
                            block_wait=block_wait,
                            invalidated_sharers=invalidated, line=line)

    def _miss(self, core_id: int, line_addr: int, home: int, *,
              exclusive: bool, now: int) -> AccessResult:
        l1 = self.l1s[core_id]
        lid = self._lids.index.get(line_addr)
        if lid is None:
            lid = self._lids.intern(line_addr)
            self._owner.append(-1)
            self._sharers.append(0)

        # Latency accounting forks on the observer: the observed path
        # repeats the original per-call noc.latency pattern (each call
        # counts a NoC message), the unobserved one indexes the flat
        # latency matrix directly. Transition logic is shared.
        obs = self.obs
        n = self._ncores
        if obs is None:
            req_home = self._lat[core_id * n + home]
            if self._blocked_until:
                block_wait = (self._blocked_until.get(line_addr, 0)
                              - (now + self._l1_hit + req_home))
                if block_wait < 0:
                    block_wait = 0
            else:
                block_wait = 0
            latency = self._l1_hit + req_home + self._llc_hit + block_wait
        else:
            cfg = self._config
            arrival = now + cfg.l1_hit_cycles + self.noc.latency(core_id,
                                                                 home)
            block_wait = max(0, self.blocked_until(line_addr) - arrival)
            obs.count("dir.misses")
            if block_wait:
                obs.count("dir.block_wait_cycles", block_wait)
                obs.observe("dir.block_wait", block_wait)
            latency = (cfg.l1_hit_cycles + self.noc.latency(core_id, home)
                       + cfg.llc_hit_cycles + block_wait)

        downgrade: Optional[Downgrade] = None
        owner = self._owner[lid]
        if owner >= 0 and owner != core_id:
            owner_line = self.l1s[owner].lookup(line_addr, touch=False)
            if owner_line is None:
                raise AssertionError(
                    f"directory names core {owner} owner of "
                    f"{line_addr:#x} but the line is not resident")
            to_state = INVALID if exclusive else SHARED
            downgrade = Downgrade(
                owner, owner_line, to_state, owner_line.has_pending,
                owner_line.state is MODIFIED)
            if obs is None:
                latency += (self._lat[home * n + owner] + self._l1_hit
                            + self._lat[owner * n + core_id])
            else:
                latency += (self.noc.latency(home, owner)
                            + self._config.l1_hit_cycles
                            + self.noc.latency(owner, core_id))
            if to_state is INVALID:
                self.l1s[owner].remove(line_addr)
            else:
                owner_line.state = SHARED
                self._sharers[lid] |= 1 << owner
            self._owner[lid] = -1
        elif obs is None:
            latency += self._lat[home * n + core_id]
        else:
            latency += self.noc.latency(home, core_id)

        invalidated = 0
        if exclusive:
            mask = self._sharers[lid]
            if mask:
                invalidated = self._invalidate_mask(mask, core_id,
                                                    line_addr)
                self._sharers[lid] = 0

        # Make room in the requester's set.
        eviction: Optional[Eviction] = None
        victim = l1.select_victim(line_addr)
        if victim is not None:
            eviction = self._evict(core_id, victim)

        if exclusive:
            new_state = MODIFIED
            self._owner[lid] = core_id
        elif not self._sharers[lid] and self._owner[lid] < 0:
            new_state = EXCLUSIVE
            self._owner[lid] = core_id
        else:
            new_state = SHARED
            self._sharers[lid] |= 1 << core_id

        filled = l1.fill(line_addr, new_state)
        return AccessResult(latency=latency, l1_hit=False,
                            block_wait=block_wait, eviction=eviction,
                            downgrade=downgrade,
                            invalidated_sharers=invalidated, line=filled)

    def _evict(self, core_id: int, victim: CacheLine) -> Eviction:
        """Displace ``victim`` from ``core_id``'s L1, fixing the directory."""
        addr = victim.addr
        lid = self._lids.index.get(addr)
        if lid is None:
            lid = self._intern(addr)
        if self._owner[lid] == core_id:
            self._owner[lid] = -1
        self._sharers[lid] &= ~(1 << core_id)
        self.l1s[core_id].remove(addr)
        return Eviction(core_id, victim, victim.has_pending,
                        victim.state is MODIFIED)

    # ------------------------------------------------------------------
    # Invariant checks (used by the property tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> List[str]:
        """Verify SWMR and directory/cache agreement; return problems."""
        problems: List[str] = []
        holders: Dict[int, List[int]] = {}
        for l1 in self.l1s:
            for line in l1.iter_lines():
                holders.setdefault(line.addr, []).append(l1.core_id)
                if line.state in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
                    lid = self._lids.get(line.addr)
                    owner = -1 if lid is None else self._owner[lid]
                    if owner != l1.core_id:
                        problems.append(
                            f"core {l1.core_id} holds {line.addr:#x} in "
                            f"{line.state.value} without directory ownership")
        for lid, addr in enumerate(self._lids.addrs):
            owner = self._owner[lid]
            if owner >= 0:
                for l1 in self.l1s:
                    line = l1.lookup(addr, touch=False)
                    if (l1.core_id != owner and line is not None
                            and line.state is not MESIState.INVALID):
                        problems.append(
                            f"{addr:#x} owned by {owner} but also "
                            f"valid in core {l1.core_id}")
        for addr, cores in holders.items():
            m_holders = [
                c for c in cores
                if self.l1s[c].lookup(addr, touch=False).state
                in (MESIState.MODIFIED, MESIState.EXCLUSIVE)
            ]
            if len(m_holders) > 1:
                problems.append(
                    f"SWMR violated for {addr:#x}: M/E in cores {m_holders}")
        return problems
