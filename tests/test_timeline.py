"""Tests for the cycle-windowed timeline telemetry (repro.obs.timeline).

The load-bearing guarantees:

* timeline sampling is opt-in and *passive*: enabling it yields
  bit-identical makespans, stats and persist logs;
* the per-window sums reconcile exactly with the aggregate counters
  and stats over the same run;
* serialization round-trips, merging is sum-for-series /
  max-for-gauges and refuses mismatched window widths;
* the Chrome counter export keeps per-track timestamps monotone;
* the ``timeline`` subcommand renders/exports, and its error paths
  exit 1 with a one-line diagnostic instead of a traceback.
"""

import hashlib
import json

import pytest

from repro.common.params import MachineConfig
from repro.core.simulator import simulate
from repro.exp.runner import Job, execute_job
from repro.obs import Observer, TimelineSampler, merged_timelines
from repro.obs.timeline import (
    COUNTER_PID,
    chrome_counter_events,
    coherence_series,
    render_timeline,
    sparkline,
    write_timeline_csv,
)
from repro.obs.__main__ import main as obs_main
from repro.workloads.harness import WorkloadSpec

MECHANISMS = ("nop", "sb", "bb", "lrp")
INTERVAL = 500


def tiny_spec():
    return WorkloadSpec(structure="hashmap", num_threads=4,
                        initial_size=64, ops_per_thread=12, seed=1)


def tiny_config():
    return MachineConfig(num_cores=4)


def persist_digest(result):
    hasher = hashlib.sha256()
    for record in result.nvm.persist_log():
        hasher.update(repr((record.line_addr, record.words,
                            record.complete_time)).encode("ascii"))
    return hasher.hexdigest()


@pytest.fixture(scope="module")
def runs():
    """(plain result, observed result, observer) per mechanism."""
    spec, config = tiny_spec(), tiny_config()
    out = {}
    for mech in MECHANISMS:
        plain = simulate(spec, mech, config)
        observer = Observer(timeline_interval=INTERVAL)
        observed = simulate(spec, mech, config, observer=observer)
        out[mech] = (plain, observed, observer)
    return out


# ----------------------------------------------------------------------
# The sampler
# ----------------------------------------------------------------------

class TestTimelineSampler:
    def test_tick_accumulates_within_window(self):
        sampler = TimelineSampler(100)
        sampler.tick("a", 10, 3)
        sampler.tick("a", 99, 4)
        sampler.tick("a", 100, 5)
        assert sampler.series["a"] == {0: 7, 1: 5}
        assert sampler.dense("a") == [7, 5]

    def test_gauge_keeps_window_maximum(self):
        sampler = TimelineSampler(100)
        sampler.gauge("q", 10, 3)
        sampler.gauge("q", 20, 9)
        sampler.gauge("q", 30, 1)
        sampler.gauge("q", 250, 0)
        assert sampler.gauges["q"] == {0: 9, 2: 0}
        assert sampler.dense("q") == [9, 0, 0]

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TimelineSampler(0)

    def test_grouped_sums_and_maxes_across_prefix(self):
        sampler = TimelineSampler(10)
        sampler.tick("compute.c0", 5, 2)
        sampler.tick("compute.c1", 5, 3)
        sampler.tick("compute.c1", 15, 1)
        sampler.gauge("pqdepth.c0", 5, 4)
        sampler.gauge("pqdepth.c1", 7, 6)
        assert sampler.grouped("compute.c", "sum") == [5, 1]
        assert sampler.grouped("pqdepth.c", "max") == [6, 0]

    def test_dict_round_trip(self):
        sampler = TimelineSampler(50)
        sampler.tick("a", 10)
        sampler.gauge("b", 120, 7)
        data = sampler.to_dict()
        json.dumps(data)  # plain-JSON serializable
        back = TimelineSampler.from_dict(data)
        assert back.interval == 50
        assert back.series == sampler.series
        assert back.gauges == sampler.gauges

    def test_merge_sums_series_and_maxes_gauges(self):
        a, b = TimelineSampler(10), TimelineSampler(10)
        a.tick("s", 5, 2)
        b.tick("s", 5, 3)
        a.gauge("g", 5, 2)
        b.gauge("g", 5, 9)
        a.merge(b)
        assert a.series["s"] == {0: 5}
        assert a.gauges["g"] == {0: 9}

    def test_merge_rejects_interval_mismatch(self):
        with pytest.raises(ValueError, match="different intervals"):
            TimelineSampler(10).merge(TimelineSampler(20))

    def test_merge_across_runs_with_different_intervals_refuses(self):
        """Two real runs sampled at different window widths must refuse
        to merge — summing misaligned windows would silently corrupt
        the time axis — and the diagnostic must name both intervals."""
        spec, config = tiny_spec(), tiny_config()
        coarse = Observer(timeline_interval=500)
        fine = Observer(timeline_interval=250)
        simulate(spec, "lrp", config, observer=coarse)
        simulate(spec, "lrp", config, observer=fine)
        with pytest.raises(ValueError) as excinfo:
            merged_timelines([coarse.timeline.to_dict(),
                              fine.timeline.to_dict()])
        assert "500" in str(excinfo.value)
        assert "250" in str(excinfo.value)

    def test_failed_interval_merge_leaves_target_untouched(self):
        # The interval check runs before any accumulation, so a refused
        # merge must not leave half-summed windows behind.
        target, other = TimelineSampler(10), TimelineSampler(20)
        target.tick("s", 5, 2)
        target.gauge("g", 5, 4)
        other.tick("s", 5, 99)
        before = (dict(target.series["s"]), dict(target.gauges["g"]))
        with pytest.raises(ValueError):
            target.merge(other)
        assert (target.series["s"], target.gauges["g"]) \
            == ({0: 2}, {0: 4}) == before

    def test_merged_timelines(self):
        a, b = TimelineSampler(10), TimelineSampler(10)
        a.tick("s", 5, 1)
        b.tick("s", 5, 2)
        merged = merged_timelines([a.to_dict(), b.to_dict()])
        assert merged.series["s"] == {0: 3}
        assert merged_timelines([]) is None


# ----------------------------------------------------------------------
# Determinism and reconciliation
# ----------------------------------------------------------------------

class TestTimelineNeverChangesResults:
    @pytest.mark.parametrize("mech", MECHANISMS)
    def test_bit_identical_with_timeline_enabled(self, runs, mech):
        plain, observed, _ = runs[mech]
        assert plain.makespan == observed.makespan
        assert plain.stats.summary() == observed.stats.summary()
        assert persist_digest(plain) == persist_digest(observed)


class TestTimelineReconciliation:
    @pytest.mark.parametrize("mech", MECHANISMS)
    def test_compute_windows_sum_to_counters(self, runs, mech):
        _, _, observer = runs[mech]
        timeline = observer.timeline
        for core in range(tiny_config().num_cores):
            assert (sum(timeline.dense(f"compute.c{core}"))
                    == observer.metrics.counters.get(
                        f"sched.compute_cycles.c{core}", 0))

    @pytest.mark.parametrize("mech", MECHANISMS)
    def test_stall_windows_sum_to_persist_stalls(self, runs, mech):
        _, observed, observer = runs[mech]
        timeline = observer.timeline
        total = sum(sum(timeline.dense(name)) for name in timeline.names()
                    if name.startswith("stall.c"))
        assert total == observed.stats.persist_stall_cycles

    @pytest.mark.parametrize("mech", MECHANISMS)
    def test_nvm_windows_sum_to_persist_lines(self, runs, mech):
        _, _, observer = runs[mech]
        timeline = observer.timeline
        total = sum(sum(timeline.dense(name)) for name in timeline.names()
                    if name.startswith("nvm.lines.ch"))
        assert total == observer.metrics.counters.get("persist.lines", 0)

    def test_coherence_series_is_mem_minus_stall_clamped(self):
        sampler = TimelineSampler(10)
        sampler.tick("mem.c0", 5, 10)
        sampler.tick("stall.c0", 5, 4)
        sampler.tick("mem.c0", 15, 2)
        sampler.tick("stall.c0", 15, 5)  # boundary skew -> clamp
        assert coherence_series(sampler) == [6, 0]

    def test_mechanism_specific_series_present(self, runs):
        _, _, lrp_obs = runs["lrp"]
        assert any(n.startswith("lrp.ret.c") for n in
                   lrp_obs.timeline.names())
        assert any(n.startswith("lrp.engine.c") for n in
                   lrp_obs.timeline.names())
        _, _, bb_obs = runs["bb"]
        assert any(n.startswith("bb.epoch_drains.c") for n in
                   bb_obs.timeline.names())


# ----------------------------------------------------------------------
# Runner / summary integration
# ----------------------------------------------------------------------

class TestSummaryCarriesTimeline:
    def test_execute_job_serializes_timeline(self):
        job = Job(spec=tiny_spec(), mechanism="lrp", config=tiny_config(),
                  timeline_interval=INTERVAL)
        summary = execute_job(job)
        assert summary.obs is not None
        timeline = TimelineSampler.from_dict(summary.obs["timeline"])
        assert timeline.interval == INTERVAL
        assert timeline.num_windows() > 0

    def test_obs_off_leaves_summary_bare(self):
        summary = execute_job(Job(spec=tiny_spec(), mechanism="lrp",
                                  config=tiny_config()))
        assert summary.obs is None

    def test_sweep_merge_doubles_sums(self):
        job = Job(spec=tiny_spec(), mechanism="sb", config=tiny_config(),
                  timeline_interval=INTERVAL)
        data = execute_job(job).obs["timeline"]
        merged = merged_timelines([data, data])
        single = TimelineSampler.from_dict(data)
        name = next(n for n in single.names() if n.startswith("compute.c"))
        assert (sum(merged.dense(name, merged.num_windows()))
                == 2 * sum(single.dense(name)))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

class TestRendering:
    def test_sparkline_downsamples_by_max(self):
        values = [0] * 100
        values[50] = 9  # a one-window spike must survive downsampling
        line = sparkline(values, width=10)
        assert len(line) == 10
        assert line.count("█") == 1

    def test_sparkline_flat_when_all_zero(self):
        assert sparkline([0, 0, 0]) == "▁▁▁"
        assert sparkline([]) == ""

    def test_render_timeline_includes_groups(self, runs):
        _, _, observer = runs["lrp"]
        text = render_timeline(observer.timeline, title="t")
        assert "compute cycles" in text
        assert "persist-stall cycles" in text
        assert "RET occupancy" in text

    def test_render_empty_sampler(self):
        assert "(no samples recorded)" in render_timeline(
            TimelineSampler(100))

    def test_csv_has_all_series(self, runs, tmp_path):
        _, _, observer = runs["lrp"]
        path = tmp_path / "tl.csv"
        with open(path, "w", newline="") as handle:
            rows = write_timeline_csv(observer.timeline, handle)
        lines = path.read_text().strip().splitlines()
        header = lines[0].split(",")
        assert header[:2] == ["window", "start_cycle"]
        assert set(header[2:]) == set(observer.timeline.names())
        assert len(lines) == rows + 1

    def test_csv_columns_in_natural_order(self, tmp_path):
        # The documented column order: trailing core/channel ids sort
        # numerically (c2 before c10), so CSVs of different runs are
        # line-comparable. Plain string sort would scramble this.
        sampler = TimelineSampler(100)
        for core in (10, 0, 2, 1, 11):
            sampler.tick(f"compute.c{core}", 50, 1)
        for channel in (3, 0, 10):
            sampler.tick(f"nvm.lines.ch{channel}", 50, 1)
        sampler.tick("coh.evictions", 50, 1)
        assert sampler.names() == [
            "coh.evictions",
            "compute.c0", "compute.c1", "compute.c2",
            "compute.c10", "compute.c11",
            "nvm.lines.ch0", "nvm.lines.ch3", "nvm.lines.ch10",
        ]
        path = tmp_path / "order.csv"
        with open(path, "w", newline="") as handle:
            write_timeline_csv(sampler, handle)
        header = path.read_text().splitlines()[0].split(",")
        assert header == ["window", "start_cycle"] + sampler.names()


class TestCounterEvents:
    def test_counter_tracks_monotone_and_named(self, runs):
        _, _, observer = runs["lrp"]
        events = chrome_counter_events(observer.timeline)
        meta = [e for e in events if e["ph"] == "M"]
        data = [e for e in events if e["ph"] == "C"]
        assert all(e["pid"] == COUNTER_PID for e in events)
        named = {e["args"]["name"] for e in meta
                 if e["name"] == "thread_name"}
        assert named == set(observer.timeline.names())
        last = {}
        for event in data:
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, -1)
            last[key] = event["ts"]

    def test_series_end_with_zero_sample(self):
        sampler = TimelineSampler(10)
        sampler.tick("s", 25, 3)
        data = [e for e in chrome_counter_events(sampler)
                if e["ph"] == "C"]
        assert data[-1]["args"]["value"] == 0
        assert data[-1]["ts"] == 30

    def test_export_merges_counters_into_trace(self):
        observer = Observer(trace=True, timeline_interval=INTERVAL)
        simulate(tiny_spec(), "sb", tiny_config(), observer=observer)
        exported = observer.export()
        assert "timeline" in exported
        assert any(e.get("ph") == "C" for e in exported["trace_events"])


# ----------------------------------------------------------------------
# The CLI
# ----------------------------------------------------------------------

WORKLOAD_ARGS = ["--threads", "2", "--size", "32", "--ops", "6"]


class TestTimelineCLI:
    def test_renders_and_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "tl.csv"
        export_path = tmp_path / "export.json"
        rc = obs_main(["timeline", "--mechanism", "lrp", "--interval",
                       "200", "--csv", str(csv_path), "--export-out",
                       str(export_path)] + WORKLOAD_ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        assert "windows x 200 cycles" in out
        assert csv_path.exists()
        document = json.loads(export_path.read_text())
        assert document["timeline"]["interval"] == 200

    def test_from_export_round_trip(self, tmp_path, capsys):
        export_path = tmp_path / "export.json"
        assert obs_main(["timeline", "--interval", "200", "--export-out",
                         str(export_path)] + WORKLOAD_ARGS) == 0
        capsys.readouterr()
        rc = obs_main(["timeline", "--from-export", str(export_path)])
        assert rc == 0
        assert "re-rendered" in capsys.readouterr().out

    def test_trace_out_contains_counter_tracks(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        rc = obs_main(["timeline", "--trace-out", str(trace_path)]
                      + WORKLOAD_ARGS)
        assert rc == 0
        events = json.loads(trace_path.read_text())["traceEvents"]
        assert any(e.get("ph") == "C" for e in events)


class TestCLIErrorPaths:
    def test_unknown_mechanism_is_one_line(self, capsys):
        rc = obs_main(["timeline", "--mechanism", "bogus"]
                      + WORKLOAD_ARGS)
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_missing_parent_dir_is_created(self, tmp_path, capsys):
        # The obs CLI contract: a missing parent directory of an
        # output path is created rather than tracebacking.
        missing = tmp_path / "no-such-dir" / "trace.json"
        rc = obs_main(["timeline", "--trace-out", str(missing)]
                      + WORKLOAD_ARGS)
        assert rc == 0
        assert missing.exists()
        assert json.loads(missing.read_text())["traceEvents"]

    def test_unwritable_trace_out(self, tmp_path, capsys):
        # A parent path that *cannot* be a directory (it is a file)
        # still exits 1 with a one-line diagnostic, no traceback.
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        rc = obs_main(["timeline", "--trace-out",
                       str(blocker / "trace.json")] + WORKLOAD_ARGS)
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_export_without_timeline(self, tmp_path, capsys):
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps({"metrics": {"counters": {}}}))
        rc = obs_main(["timeline", "--from-export", str(bare)])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no timeline series" in err
