"""Harris lock-free sorted linked list — the shared list engine.

Implements Harris's algorithm [DISC'01] over a *head pointer word*:
both the standalone linked list and every bucket of Michael's hash
table [SPAA'02] run on this engine (Michael's lists are exactly
Harris lists rooted at a bucket word).

Annotation discipline (the DRF labelling of Section 6.1):

* link-word loads during traversal: **acquire**;
* the linking / marking / unlinking CASes: **release**;
* node-field initialization stores and key loads: plain.

Deletion is two-phase: a release-CAS sets the mark bit in the victim's
next word (logical delete, the linearization point), then the node is
physically unlinked by a best-effort CAS — traversals help unlink any
marked node they encounter.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.consistency.events import MemOrder
from repro.core.thread import cas, load, store
from repro.lfds.base import (
    KEY_MIN,
    NULL,
    OpGen,
    Word,
    alloc_header_write,
    field,
    free_header_write,
    header_addr,
    is_marked,
    mark,
    unmark,
)
from repro.memory.address import HeapAllocator

# Node layout: [key, value, next]
KEY, VALUE, NEXT = 0, 1, 2
NODE_WORDS = 3
# Byte offsets (= field(node, X) - node) inlined in the traversal hot
# loops: search runs once per data-structure operation and its field()
# calls are measurable at bench scale.
_KEY_OFF = KEY * 8
_NEXT_OFF = NEXT * 8


class HarrisListOps:
    """Harris-list operations rooted at an arbitrary pointer word."""

    def __init__(self, allocator: HeapAllocator) -> None:
        self.allocator = allocator

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def search(self, head_ptr: int, key: int) -> OpGen:
        """Find the insertion window for ``key``.

        Returns ``(pred_ptr, curr, curr_key)`` where ``pred_ptr`` is
        the address of the link word pointing at ``curr`` (an unmarked
        node with ``curr_key >= key``, or NULL at list end). Helps
        unlink marked nodes along the way.
        """
        while True:
            pred_ptr = head_ptr
            raw = yield load(pred_ptr, MemOrder.ACQUIRE,
                             site="traverse-head")
            curr = unmark(raw) if raw is not None else NULL
            restart = False
            while True:
                if curr == NULL:
                    return pred_ptr, NULL, None
                nxt = yield load(curr + _NEXT_OFF, MemOrder.ACQUIRE,
                                 site="traverse-next")
                if is_marked(nxt):
                    # curr is logically deleted: help unlink it.
                    ok, _ = yield cas(pred_ptr, curr, unmark(nxt),
                                      MemOrder.RELEASE,
                                      site="help-unlink-cas")
                    if not ok:
                        restart = True
                        break
                    curr = unmark(nxt)
                    continue
                curr_key = yield load(curr + _KEY_OFF,
                                      site="traverse-key")
                if curr_key >= key:
                    return pred_ptr, curr, curr_key
                pred_ptr = curr + _NEXT_OFF
                curr = nxt if nxt is not None else NULL
            if restart:
                continue

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, head_ptr: int, key: int, value: int,
               allocator: Optional[HeapAllocator] = None) -> OpGen:
        """Insert ``key``; True iff it was absent."""
        allocator = allocator or self.allocator
        while True:
            pred_ptr, curr, curr_key = yield from self.search(head_ptr, key)
            if curr != NULL and curr_key == key:
                return False
            node = allocator.alloc(NODE_WORDS + 1) + 8
            yield alloc_header_write(node, NODE_WORDS)
            yield store(field(node, KEY), key, site="node-init")
            yield store(field(node, VALUE), value, site="node-init")
            yield store(field(node, NEXT), curr, site="node-init")
            ok, _ = yield cas(pred_ptr, curr, node, MemOrder.RELEASE,
                              site="link-cas")
            if ok:
                return True
            # Window moved: retry (the unnlinked node is simply leaked,
            # as in reclamation-free persistent-LFD benchmarks).

    def delete(self, head_ptr: int, key: int) -> OpGen:
        """Delete ``key``; True iff it was present."""
        while True:
            pred_ptr, curr, curr_key = yield from self.search(head_ptr, key)
            if curr == NULL or curr_key != key:
                return False
            nxt = yield load(field(curr, NEXT), MemOrder.ACQUIRE,
                             site="read-next")
            if is_marked(nxt):
                continue  # a concurrent delete got here first: retry
            succ = nxt if nxt is not None else NULL
            ok, _ = yield cas(field(curr, NEXT), succ, mark(succ),
                              MemOrder.RELEASE, site="mark-cas")
            if not ok:
                continue
            # Best-effort physical unlink; traversals will help if lost.
            yield cas(pred_ptr, curr, succ, MemOrder.RELEASE,
                      site="unlink-cas")
            # Free the node: the malloc-metadata store of SynchroBench's
            # node reclamation (the chunk belongs to another thread's
            # arena most of the time).
            yield free_header_write(curr)
            return True

    def contains(self, head_ptr: int, key: int) -> OpGen:
        """Wait-free membership test."""
        raw = yield load(head_ptr, MemOrder.ACQUIRE,
                         site="traverse-head")
        curr = unmark(raw) if raw is not None else NULL
        while curr != NULL:
            nxt = yield load(curr + _NEXT_OFF, MemOrder.ACQUIRE,
                             site="traverse-next")
            curr_key = yield load(curr + _KEY_OFF,
                                  site="traverse-key")
            if curr_key == key:
                return not is_marked(nxt)
            if curr_key > key:
                return False
            curr = unmark(nxt) if nxt is not None else NULL
        return False

    # ------------------------------------------------------------------
    # Direct-memory build / inspection (no simulated ops)
    # ------------------------------------------------------------------

    def build_chain(self, head_ptr: int, keys: Iterable[int],
                    memory: Dict[int, Word], value_of) -> None:
        """Materialize a sorted chain into ``memory`` at ``head_ptr``.

        Initial-build nodes are line-aligned: with the reproduction's
        compressed key space, packing unrelated keys into one line
        would create false sharing that the paper's 64K-1M-node
        structures do not exhibit.
        """
        sorted_keys = sorted(set(keys))
        alloc = self.allocator.alloc
        node_addrs = [
            alloc(NODE_WORDS + 1, line_align=True) + 8
            for _ in sorted_keys
        ]
        memory[head_ptr] = node_addrs[0] if node_addrs else NULL
        last = len(node_addrs) - 1
        # field()/header_addr() inlined: [header][key][value][next].
        for i, (key, addr) in enumerate(zip(sorted_keys, node_addrs)):
            memory[addr - 8] = NODE_WORDS
            memory[addr] = key
            memory[addr + 8] = value_of(key)
            memory[addr + 16] = node_addrs[i + 1] if i < last else NULL

    def walk(self, image: Dict[int, Word], head_ptr: int,
             max_nodes: int) -> Tuple[List[str], int, Set[int]]:
        """Validate a chain in a crash image.

        Returns (problems, reachable node count, live key set). A
        reachable node with missing (never-persisted) fields is the
        tell-tale ARP failure of Figure 1.
        """
        problems: List[str] = []
        live: Set[int] = set()
        raw = image.get(head_ptr)
        if raw is None:
            problems.append(f"head pointer {head_ptr:#x} not in NVM")
            return problems, 0, live
        curr = unmark(raw)
        prev_key = KEY_MIN
        count = 0
        while curr != NULL:
            count += 1
            if count > max_nodes:
                problems.append(
                    f"chain from {head_ptr:#x} exceeds {max_nodes} nodes "
                    "(cycle or corruption)")
                break
            key = image.get(field(curr, KEY))
            value = image.get(field(curr, VALUE))
            nxt = image.get(field(curr, NEXT))
            if key is None or value is None or nxt is None:
                problems.append(
                    f"node {curr:#x} is linked into the chain but its "
                    "fields never persisted (inconsistent cut)")
                break
            if key <= prev_key:
                problems.append(
                    f"chain ordering violated at node {curr:#x}: "
                    f"{key} after {prev_key}")
            if not is_marked(nxt):
                live.add(key)
            prev_key = key
            curr = unmark(nxt)
        return problems, count, live
