"""Figure 8(a-e): persistency overhead vs worker threads (1-32).

Paper: LRP's overhead stays relatively flat as threads grow (the
feared inter-thread I2 cost does not materialize at scale), while BB
carries a visibly larger overhead on the write-intensive workloads.
"""

import pytest
from conftest import run_once

from repro.bench.figures import run_figure8

WORKLOADS = ("hashmap", "bstree", "skiplist", "queue")


@pytest.fixture(scope="module")
def fig8():
    return run_figure8(scale="quick", workloads=WORKLOADS)


def test_figure8_runs(benchmark):
    result = run_once(benchmark, run_figure8, scale="quick",
                      workloads=WORKLOADS)
    print("\n" + result.render())
    for workload, series in result.overheads.items():
        for mech, values in series.items():
            benchmark.extra_info[f"{workload}/{mech}"] = [
                round(v, 1) for v in values
            ]


class TestFigure8Shape:
    def test_lrp_overhead_flat_on_index_structures(self, fig8):
        """LRP's curve stays low and flat across thread counts."""
        for workload in ("hashmap", "bstree", "skiplist"):
            series = fig8.overheads[workload]["lrp"]
            assert max(series) < 15.0, (workload, series)

    def test_single_thread_lrp_near_zero(self, fig8):
        for workload in WORKLOADS:
            assert fig8.overheads[workload]["lrp"][0] < 10.0, workload

    def test_bb_overhead_exceeds_lrp_at_32_threads_on_hashmap(self,
                                                              fig8):
        bb = fig8.overheads["hashmap"]["bb"][-1]
        lrp = fig8.overheads["hashmap"]["lrp"][-1]
        assert bb > lrp

    def test_thread_counts_cover_paper_range(self, fig8):
        assert fig8.thread_counts[0] == 1
        assert fig8.thread_counts[-1] == 32
