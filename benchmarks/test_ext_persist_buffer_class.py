"""Extension: cache-based vs persist-buffer-based RP enforcement.

Section 2.2.1 of the paper contrasts the two implementation families
("the persist-buffer based approach arguably simplifies the design ...
the cache-based approach reuses the cache hierarchy") and Section 4.2
claims LRP's one-sided barriers additionally enable write coalescing
that "potentially reduc[es] the absolute number of persists".

This extension experiment runs all five RP-enforcing mechanisms —
SB/BB (cache-based full barriers), DPO/HOPS (persist-buffer full
barriers), LRP (cache-based one-sided) — on the hashmap and reports
normalized execution time plus NVM write traffic. Expected shape:

* DPO pays for its single global ordering chain; HOPS fixes that;
* the buffer designs issue far more NVM writes (word-granular
  write-through, no coalescing) — the endurance/bandwidth cost;
* LRP matches the best latency while issuing the fewest writes.
"""

from conftest import run_once

from repro.bench.configs import SCALED_CONFIG
from repro.core.simulator import simulate
from repro.workloads.harness import WorkloadSpec

MECHANISMS = ("nop", "sb", "bb", "dpo", "hops", "lrp")


def _run():
    spec = WorkloadSpec(structure="hashmap", num_threads=16,
                        initial_size=16384, ops_per_thread=32, seed=1)
    runs = {m: simulate(spec, mechanism=m, config=SCALED_CONFIG)
            for m in MECHANISMS}
    nop = runs["nop"].makespan
    return {
        m: {
            "normalized": runs[m].makespan / nop,
            "nvm_writes": runs[m].stats.total_persists,
        }
        for m in MECHANISMS
    }


def test_persist_buffer_class_comparison(benchmark):
    result = run_once(benchmark, _run)
    print("\nRP-enforcement design space (hashmap, 16 threads):")
    for mech, row in result.items():
        print(f"  {mech:<5} time={row['normalized']:.2f}x "
              f"nvm_writes={row['nvm_writes']}")
        benchmark.extra_info[f"{mech}/time"] = round(row["normalized"], 3)
        benchmark.extra_info[f"{mech}/writes"] = row["nvm_writes"]

    # DPO's global chain costs it against HOPS.
    assert result["dpo"]["normalized"] >= result["hops"]["normalized"]
    # Write-through buffers issue far more NVM writes than LRP.
    assert result["hops"]["nvm_writes"] > 1.5 * result["lrp"]["nvm_writes"]
    # LRP is within a whisker of the fastest enforcement.
    fastest = min(row["normalized"] for mech, row in result.items()
                  if mech != "nop")
    assert result["lrp"]["normalized"] <= fastest + 0.05
    # ... and issues the fewest NVM writes of all RP enforcers.
    assert result["lrp"]["nvm_writes"] == min(
        row["nvm_writes"] for mech, row in result.items() if mech != "nop")
