"""2D-mesh on-chip network latency model.

Tiles are laid out on a square mesh (Table 1). Each core sits on its
own tile together with one LLC bank; a line's *home tile* is selected
by address interleaving. A message's latency is the Manhattan hop
distance times the per-hop cost, plus one cycle of router/serialization
overhead — a deliberately simple deterministic model (contention inside
the mesh is second-order for the persist-stall effects under study).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.params import MachineConfig

if TYPE_CHECKING:
    from repro.obs import Observer


class MeshNoC:
    """Deterministic hop-latency model of the 2D mesh."""

    def __init__(self, config: MachineConfig,
                 obs: Optional["Observer"] = None) -> None:
        self._config = config
        self._obs = obs
        self._dim = config.mesh_dim
        self._line_shift = config.line_offset_bits
        self._num_cores = config.num_cores
        # Latencies are pure functions of (tile, tile); the access path
        # asks for them several times per miss, so flatten the whole
        # matrix once (num_cores^2 entries, tiny) and index it.
        dim = self._dim
        hop = config.noc_hop_cycles
        table = []
        for a in range(self._num_cores):
            ax, ay = a % dim, a // dim
            for b in range(self._num_cores):
                if a == b:
                    table.append(1)
                else:
                    bx, by = b % dim, b // dim
                    hops = abs(ax - bx) + abs(ay - by)
                    table.append(hops * hop + 1)
        self._latency_table = table

    @property
    def dim(self) -> int:
        return self._dim

    def home_tile(self, line_addr: int) -> int:
        """The tile whose LLC bank/directory owns this line."""
        return (line_addr >> self._line_shift) % self._num_cores

    def hop_distance(self, tile_a: int, tile_b: int) -> int:
        """Manhattan distance between two tiles on the mesh."""
        ax, ay = tile_a % self._dim, tile_a // self._dim
        bx, by = tile_b % self._dim, tile_b // self._dim
        return abs(ax - bx) + abs(ay - by)

    def latency(self, tile_a: int, tile_b: int) -> int:
        """One-way message latency between two tiles."""
        if self._obs is None:
            return self._latency_table[tile_a * self._num_cores + tile_b]
        if tile_a == tile_b:
            self._obs.count("noc.msgs")
            return 1
        hops = self.hop_distance(tile_a, tile_b)
        self._obs.count("noc.msgs")
        self._obs.count("noc.hops", hops)
        return hops * self._config.noc_hop_cycles + 1
