"""Replayable counterexample files.

A repro file is a self-contained JSON description of one minimized
counterexample: workload spec, machine config, mechanism, schedule
mutation, crash prefix, and the recorded verdict. Simulations are
deterministic, so replaying the file re-derives the *same* violation
— ``python -m repro.fuzz --replay FILE`` exits 0 iff the recorded
verdict reproduces bit-for-bit (kind and first problem line).

The file is the hand-off artifact: a failing CI fuzz campaign drops
repro files, and anyone can replay them locally without the campaign.

Two formats share the replay entry point:

* :data:`FORMAT` (:class:`ReproFile`) — a fuzzer counterexample,
  replayed by re-simulating the full machine;
* :data:`LITMUS_FORMAT` (:class:`LitmusReproFile`) — a model-checker
  witness from :mod:`repro.mc`: a litmus schedule plus the violating
  crash state, replayed by re-running the interleaving and re-judging
  the materialized persist log with the stock
  :class:`~repro.persistency.checker.RPChecker`.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
from typing import Dict, List, Optional

from repro.common.params import MachineConfig, NVMMode
from repro.core.simulator import SimulationResult, simulate
from repro.fuzz.mutation import ScheduleMutation
from repro.workloads.harness import WorkloadSpec

FORMAT = "repro-fuzz-repro-v1"
LITMUS_FORMAT = "repro-mc-litmus-v1"


def config_to_dict(config: MachineConfig) -> Dict[str, object]:
    """JSON-able dump of a machine config (enums by value)."""
    data = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        data[field.name] = value.value if isinstance(value, enum.Enum) \
            else value
    return data


def config_from_dict(data: Dict[str, object]) -> MachineConfig:
    kwargs = dict(data)
    if "nvm_mode" in kwargs:
        kwargs["nvm_mode"] = NVMMode(kwargs["nvm_mode"])
    return MachineConfig(**kwargs)


@dataclasses.dataclass
class ReproFile:
    """One minimized counterexample, ready to serialize/replay."""

    workload: Dict[str, object]
    mechanism: str
    config: Dict[str, object]
    mutation: List[List[int]]
    prefix: int
    verdict: Dict[str, object]
    campaign: Dict[str, object]

    # -- (de)serialization --------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": FORMAT,
            "workload": self.workload,
            "mechanism": self.mechanism,
            "config": self.config,
            "mutation": self.mutation,
            "prefix": self.prefix,
            "verdict": self.verdict,
            "campaign": self.campaign,
        }

    def save(self, path: str) -> None:
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ReproFile":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("format") != FORMAT:
            raise ValueError(
                f"{path}: not a fuzz repro file "
                f"(format={data.get('format')!r})")
        return cls(workload=data["workload"],
                   mechanism=data["mechanism"],
                   config=data["config"],
                   mutation=[list(n) for n in data["mutation"]],
                   prefix=int(data["prefix"]),
                   verdict=data["verdict"],
                   campaign=data.get("campaign", {}))

    # -- replay --------------------------------------------------------

    def run(self) -> SimulationResult:
        """Re-simulate the counterexample's exact run."""
        spec = WorkloadSpec(**self.workload)
        config = config_from_dict(self.config)
        mutation = ScheduleMutation.make(
            (int(d), int(r)) for d, r in self.mutation)
        return simulate(spec, self.mechanism, config,
                        schedule_nudges=mutation.as_dict())

    def replay(self) -> Dict[str, object]:
        """Re-derive the verdict at the recorded crash prefix."""
        result = self.run()
        log_len = len(result.nvm.persist_log())
        if not 0 <= self.prefix <= log_len:
            return {"kind": "mismatch",
                    "problems": [f"prefix {self.prefix} out of range "
                                 f"[0, {log_len}]"]}
        if self.verdict.get("kind") == "continuation":
            return self._replay_continuation(result)
        report = result.structure.validate_image(
            result.nvm.image_after_prefix(self.prefix))
        if report.ok:
            return {"kind": "recovered", "problems": []}
        verdict: Dict[str, object] = {
            "kind": "structural",
            "problems": [str(p) for p in report.problems[:3]],
        }
        if result.config.record_trace:
            from repro.persistency.checker import RPChecker

            checker = RPChecker(result.trace, result.nvm,
                                boundary_event=result.machine
                                .boundary_event)
            verdict["cut_violations"] = len(
                checker.check_cut(self.prefix))
        return verdict

    def _replay_continuation(self, result) -> Dict[str, object]:
        from repro.core.replay import RecoveryReplayError, \
            recover_and_continue

        params = dict(self.verdict.get("continuation", {}))
        try:
            recover_and_continue(result, self.prefix, **params)
        except RecoveryReplayError as exc:
            return {"kind": "continuation", "problems": [str(exc)],
                    "continuation": params}
        return {"kind": "recovered", "problems": []}

    def verdict_matches(self, replayed: Dict[str, object]) -> bool:
        """Same violation: kind matches, and the first problem line
        (the validator's primary diagnosis) is identical."""
        if replayed.get("kind") != self.verdict.get("kind"):
            return False
        mine = list(self.verdict.get("problems", []))
        theirs = list(replayed.get("problems", []))
        return (mine[:1] == theirs[:1])


@dataclasses.dataclass
class LitmusReproFile:
    """A model-checker witness: schedule + violating crash state."""

    program: str                  # canned program name (repro.mc)
    mechanism: str
    schedule: List[int]
    persist_sequence: List[int]   # write event ids, durability order
    verdict: Dict[str, object]
    hb_mode: str = "rp"
    source: Dict[str, object] = dataclasses.field(default_factory=dict)

    # -- (de)serialization --------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": LITMUS_FORMAT,
            "program": self.program,
            "mechanism": self.mechanism,
            "schedule": self.schedule,
            "persist_sequence": self.persist_sequence,
            "verdict": self.verdict,
            "hb_mode": self.hb_mode,
            "source": self.source,
        }

    def save(self, path: str) -> None:
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "LitmusReproFile":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("format") != LITMUS_FORMAT:
            raise ValueError(
                f"{path}: not a litmus repro file "
                f"(format={data.get('format')!r})")
        return cls(program=data["program"],
                   mechanism=data["mechanism"],
                   schedule=[int(t) for t in data["schedule"]],
                   persist_sequence=[int(e) for e in
                                     data["persist_sequence"]],
                   verdict=data["verdict"],
                   hb_mode=data.get("hb_mode", "rp"),
                   source=data.get("source", {}))

    # -- replay --------------------------------------------------------

    def replay(self) -> Dict[str, object]:
        """Re-run the schedule and re-judge the crash state.

        The interleaving runner validates the schedule (bad thread ids
        raise) and the recorded persist sequence is re-checked with
        RPChecker on a freshly materialized persist log — nothing from
        the recorded verdict is trusted.
        """
        from repro.consistency.litmus import run_interleaving
        from repro.mc.judge import cut_violations
        from repro.mc.programs import get_program

        program = get_program(self.program)
        trace = run_interleaving(program.program(), self.schedule,
                                 init=program.initial_memory())
        write_ids = {e.event_id for e in trace.writes()}
        bad = [e for e in self.persist_sequence if e not in write_ids]
        if bad:
            return {"kind": "mismatch",
                    "problems": [f"persist sequence references "
                                 f"non-write events {bad}"]}
        count, problems = cut_violations(trace, self.persist_sequence,
                                         hb_mode=self.hb_mode)
        if not count:
            return {"kind": "recovered", "problems": []}
        return {"kind": "litmus-cut", "problems": problems,
                "cut_violations": count}

    def verdict_matches(self, replayed: Dict[str, object]) -> bool:
        """Same violation: kind and first problem line identical."""
        if replayed.get("kind") != self.verdict.get("kind"):
            return False
        mine = list(self.verdict.get("problems", []))
        theirs = list(replayed.get("problems", []))
        return mine[:1] == theirs[:1]


def replay_repro(path: str) -> Dict[str, object]:
    """Load, replay and judge a repro file (either format).

    Returns ``{"ok": bool, "recorded": ..., "replayed": ...}``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("format") == LITMUS_FORMAT:
        litmus = LitmusReproFile.load(path)
        replayed = litmus.replay()
        return {
            "ok": litmus.verdict_matches(replayed),
            "recorded": litmus.verdict,
            "replayed": replayed,
            "mechanism": litmus.mechanism,
            "program": litmus.program,
            "prefix": len(litmus.persist_sequence),
            "nudges": 0,
        }
    repro = ReproFile.load(path)
    replayed = repro.replay()
    return {
        "ok": repro.verdict_matches(replayed),
        "recorded": repro.verdict,
        "replayed": replayed,
        "mechanism": repro.mechanism,
        "prefix": repro.prefix,
        "nudges": len(repro.mutation),
    }
