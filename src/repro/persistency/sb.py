"""SB: Release Persistency through strict (blocking) full barriers.

Per Section 6.2 of the paper:

* an SB is inserted **before** each release, blocking the thread until
  every cache line dirtied by earlier writes has persisted;
* an SB is inserted **after** each release, so the release itself is
  durable before execution proceeds (this is what lets the inter-thread
  component work: by the time anyone can acquire from this release, it
  has persisted or the downgrade blocks);
* inter-thread component: when a shared-memory dependency is detected
  via the coherence protocol (a remote core asks for a dirty line), the
  target thread blocks until the writes of the source thread's ongoing
  epoch have persisted.

SB buffers writes in the cache between barriers, but the barrier itself
stalls — no proactive flushing, no overlap.
"""

from __future__ import annotations

from typing import Dict, List

from repro.coherence.l1cache import CacheLine, MESIState
from repro.consistency.events import MemoryEvent
from repro.persistency.base import PersistencyMechanism


class SBMechanism(PersistencyMechanism):
    """Strict full persist barrier around every release."""

    name = "sb"
    enforces_rp = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Lines holding unpersisted writes, per core (the ongoing epoch).
        self._pending: List[Dict[int, CacheLine]] = [
            {} for _ in range(self.config.num_cores)
        ]

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------

    def on_write(self, core: int, line: CacheLine, event: MemoryEvent,
                 now: int) -> int:
        self._apply_store(core, line, event, epoch=0)
        self._pending[core][line.addr] = line
        return 0

    def on_release(self, core: int, line: CacheLine, event: MemoryEvent,
                   now: int) -> int:
        # Barrier before the release: flush the ongoing epoch.
        stall = self._full_barrier(core, now)
        # The release write itself.
        self._apply_store(core, line, event, epoch=0)
        self._pending[core][line.addr] = line
        # Barrier after the release: the release is durable before the
        # thread proceeds.
        stall += self._full_barrier(core, now + stall)
        return stall

    # ------------------------------------------------------------------
    # Coherence-triggered persists
    # ------------------------------------------------------------------

    def on_evict(self, core: int, line: CacheLine, now: int) -> int:
        """A demand miss displaced a dirty line: persist it, blocking."""
        if not line.pending_words:
            self._block_if_inflight(core, line.addr, now)
            return 0
        self._pending[core].pop(line.addr, None)
        record = self._issue_line(core, line, now, trigger="eviction")
        return self._wait_for(core, now, [record], reason="eviction")

    def on_downgrade(self, owner: int, line: CacheLine,
                     to_state: MESIState, requester: int, now: int) -> int:
        """Inter-thread dependency: requester waits for the source epoch."""
        if not line.pending_words:
            inflight = self._inflight_record(owner, line.addr, now)
            if inflight is not None:
                return self._wait_for(requester, now, [inflight],
                                      block_line=line.addr,
                                      reason="inter-thread")
            return 0
        edge = (owner, requester)
        records = list(self._issue_lines(
            owner, list(self._pending[owner].values()), now,
            trigger="downgrade", edge=edge))
        self._pending[owner].clear()
        if line.pending_words:  # line outside the pending map (defensive)
            records.append(self._issue_line(owner, line, now,
                                            trigger="downgrade", edge=edge))
        records.extend(self._outstanding(owner, now))
        return self._wait_for(requester, now, records,
                              block_line=line.addr,
                              reason="inter-thread")

    # ------------------------------------------------------------------
    # The barrier
    # ------------------------------------------------------------------

    def _full_barrier(self, core: int, now: int,
                      trigger: str = "barrier") -> int:
        """Persist every buffered write of ``core`` and block for acks.

        Also waits for in-flight persists of the core's earlier writes
        (e.g. issued by a remote downgrade at a later simulated time) —
        the barrier's contract is that *all* writes before it are
        durable when it completes.
        """
        self.stats[core].barrier_count += 1
        if self.obs is not None:
            self.obs.count("sb.barriers")
            self.obs.observe("sb.barrier_lines", len(self._pending[core]))
        records = list(self._issue_lines(
            core, list(self._pending[core].values()), now, trigger=trigger))
        self._pending[core].clear()
        records.extend(self._outstanding(core, now))
        return self._wait_for(core, now, records, reason="barrier")

    def drain(self, now: int) -> int:
        stall = 0
        for core in range(self.config.num_cores):
            stall = max(stall, self._full_barrier(core, now,
                                                  trigger="drain"))
        return stall
