"""Tests for the request-level SLO layer (repro.obs.slo).

The streaming reservoir must be *exactly* the sort-based oracle, the
durable frontier must implement the store-event semantics (suffix-min
per word, prefix-max across words), and the reconstructed records must
replay the open-loop arrival process coordination-omission free.
"""

import io
import json

import pytest

from repro.common.params import MachineConfig
from repro.core.simulator import simulate
from repro.obs import Observer
from repro.obs.slo import (
    LatencyReservoir,
    RequestRecord,
    build_records,
    chrome_request_events,
    completion_series,
    durable_at,
    durable_frontier,
    exact_quantile,
    latency_p99_series,
    merged_reservoirs,
    rto_summary,
    service_report,
    slo_summary,
    write_slo_csv,
)
from repro.workloads.kvservice import KVServiceSpec, arrival_times

MECHANISMS = ("sb", "bb", "lrp")


def tiny_spec():
    return KVServiceSpec(structure="hashmap", num_threads=4,
                         initial_size=64, requests_per_thread=12,
                         seed=1)


def tiny_config():
    return MachineConfig(num_cores=4)


def observed_run(mechanism="lrp", spec=None):
    spec = spec or tiny_spec()
    observer = Observer(spans=True)
    result = simulate(spec, mechanism, tiny_config(), observer=observer)
    return result, observer


# ----------------------------------------------------------------------
# Exact streaming percentiles
# ----------------------------------------------------------------------

def test_reservoir_matches_sort_oracle():
    import random

    rng = random.Random(7)
    values = [rng.randrange(1, 5000) for _ in range(997)]
    reservoir = LatencyReservoir()
    for value in values:
        reservoir.observe(value)
    for q in (0.0, 0.01, 0.5, 0.9, 0.99, 0.999, 1.0):
        assert reservoir.quantile(q) == exact_quantile(values, q)
    assert reservoir.total == len(values)
    assert reservoir.max == max(values)
    assert reservoir.mean == pytest.approx(sum(values) / len(values))


def test_reservoir_merge_and_roundtrip():
    a, b = LatencyReservoir(), LatencyReservoir()
    for value in (1, 2, 2, 3):
        a.observe(value)
    for value in (3, 4):
        b.observe(value)
    a.merge(b)
    assert a.total == 6
    assert a.quantile(0.5) == exact_quantile([1, 2, 2, 3, 3, 4], 0.5)
    restored = LatencyReservoir.from_dict(
        json.loads(json.dumps(a.to_dict())))
    assert restored.counts == a.counts
    assert restored.total == a.total
    merged = merged_reservoirs([a.to_dict(), b.to_dict()])
    assert merged.total == a.total + b.total


def test_reservoir_edge_cases():
    empty = LatencyReservoir()
    assert empty.quantile(0.99) == 0
    assert empty.mean == 0.0
    assert empty.max == 0
    with pytest.raises(ValueError):
        empty.quantile(1.5)
    single = LatencyReservoir()
    single.observe(42)
    assert single.quantile(0.0) == 42
    assert single.quantile(1.0) == 42


# ----------------------------------------------------------------------
# Durable frontier semantics (synthetic persist logs)
# ----------------------------------------------------------------------

class FakeRecord:
    def __init__(self, words, complete_time):
        self.words = tuple(words)
        self.complete_time = complete_time


def test_frontier_empty_log():
    event_ids, frontier = durable_frontier(())
    assert event_ids == [] and frontier == []
    assert durable_at(event_ids, frontier, 100, 5) == 100


def test_frontier_single_store():
    # Store event 3 at addr 8, persisted at cycle 50.
    log = [FakeRecord([(8, (1, 3))], 50)]
    event_ids, frontier = durable_frontier(log)
    assert (event_ids, frontier) == ([3], [50])
    # A request whose frontier is past the store waits for the drain;
    # one below it does not.
    assert durable_at(event_ids, frontier, 10, 4) == 50
    assert durable_at(event_ids, frontier, 10, 3) == 10
    assert durable_at(event_ids, frontier, 60, 4) == 60


def test_frontier_superseding_store_coalesces():
    # Same word persisted twice: the younger store (event 7, drains at
    # 40) supersedes the older (event 2, drains at 90) — a request
    # above event 2 only is durable once *some* persist at least as
    # young has drained, which is min(90, 40) = 40.
    log = [FakeRecord([(8, (1, 2))], 90), FakeRecord([(8, (2, 7))], 40)]
    event_ids, frontier = durable_frontier(log)
    assert event_ids == [2, 7]
    assert durable_at(event_ids, frontier, 0, 3) == 40
    # Above both stores: the global frontier is the prefix max.
    assert durable_at(event_ids, frontier, 0, 8) == 40


def test_frontier_across_words_is_prefix_max():
    # Word A's store (event 1) drains late, word B's (event 5) early:
    # a request above both waits for the slower word.
    log = [FakeRecord([(8, (1, 1))], 200), FakeRecord([(16, (1, 5))], 30)]
    event_ids, frontier = durable_frontier(log)
    assert event_ids == [1, 5]
    assert frontier == [200, 200]
    assert durable_at(event_ids, frontier, 10, 2) == 200
    assert durable_at(event_ids, frontier, 10, 6) == 200


# ----------------------------------------------------------------------
# Record reconstruction
# ----------------------------------------------------------------------

def test_build_records_requires_spans():
    from repro.obs.spans import SpanTracker

    spec = tiny_spec()
    with pytest.raises(ValueError, match="spans enabled"):
        empty = SpanTracker()
        empty.lanes(spec.num_threads)
        build_records(spec, tiny_config(), empty)


def test_records_replay_the_arrival_process():
    result, observer = observed_run("lrp")
    spec = result.spec
    records = build_records(spec, result.config, observer.spans,
                            persist_log=result.nvm.persist_log())
    assert len(records) == spec.total_requests
    per_thread = {}
    for record in records:
        per_thread.setdefault(record.thread_id, []).append(record)
    for thread_id, lane in per_thread.items():
        arrivals = arrival_times(spec, thread_id)
        vfinish = 0
        for index, record in enumerate(lane):
            assert record.index == index
            assert record.arrival == arrivals[index]
            # Open-loop queueing: vstart is the later of arrival and
            # the previous virtual finish; latency covers the queue.
            assert record.vstart == max(record.arrival, vfinish)
            vfinish = record.vstart + record.service
            assert record.service >= 0
            assert record.latency >= record.service
            assert record.durable >= record.completion
            assert record.durable_latency == \
                record.latency + record.durable_lag


def test_lrp_lags_eager_mechanisms_on_durability():
    """The paper's trade, in SLO terms: LRP trades durability lag for
    response latency; BB persists near the critical path so its lag
    stays small."""
    spec = KVServiceSpec(structure="hashmap", num_threads=8,
                         initial_size=128, requests_per_thread=32,
                         seed=1)
    lags = {}
    for mechanism in ("bb", "lrp"):
        observer = Observer(spans=True)
        result = simulate(spec, mechanism, MachineConfig(num_cores=8),
                          observer=observer)
        records = build_records(spec, result.config, observer.spans,
                                persist_log=result.nvm.persist_log())
        all_lags = [r.durable_lag for r in records]
        lags[mechanism] = (max(all_lags),
                           sum(all_lags) / len(all_lags))
    assert lags["lrp"][0] > lags["bb"][0]      # worst-case lag
    assert lags["lrp"][1] > 5 * lags["bb"][1]  # mean lag, decisively


# ----------------------------------------------------------------------
# Summaries, series, exports
# ----------------------------------------------------------------------

def test_slo_summary_quantiles_match_oracle():
    result, observer = observed_run("bb")
    records = build_records(result.spec, result.config, observer.spans,
                            persist_log=result.nvm.persist_log())
    summary = slo_summary(records, result.makespan)
    latencies = [r.latency for r in records]
    assert summary["requests"] == len(records)
    assert summary["latency"]["p99"] == exact_quantile(latencies, 0.99)
    assert summary["latency"]["max"] == max(latencies)
    assert summary["durable_latency"]["p999"] == exact_quantile(
        [r.durable_latency for r in records], 0.999)


def test_service_report_with_recovery():
    result, observer = observed_run("lrp")
    payload = service_report(result, observer.spans, num_crash_points=4)
    assert payload["requests"] == result.spec.total_requests
    recovery = payload["recovery"]
    assert recovery["attempts"] == 4
    # LRP is release-persistent: null recovery always succeeds.
    assert recovery["recovered"] == 4
    assert recovery["rto"]["mean_cycles"] > 0
    # The temporary record attachment must not leak.
    assert not hasattr(result, "_slo_records")


def test_rto_without_spans_still_meters():
    result = simulate(tiny_spec(), "bb", tiny_config())
    summary = rto_summary(result, num_points=4)
    assert summary["attempts"] == 4
    assert "lost_requests" not in summary


def test_completion_and_p99_series():
    result, observer = observed_run("sb")
    records = build_records(result.spec, result.config, observer.spans,
                            persist_log=result.nvm.persist_log())
    series = completion_series(records, 500)
    assert sum(series) == len(records)
    p99s = latency_p99_series(records, 500)
    assert len(p99s) == len(series)
    with pytest.raises(ValueError):
        completion_series(records, 0)


def test_csv_and_chrome_exports():
    result, observer = observed_run("lrp")
    records = build_records(result.spec, result.config, observer.spans,
                            persist_log=result.nvm.persist_log())
    handle = io.StringIO()
    rows = write_slo_csv(records, handle)
    assert rows == len(records)
    lines = handle.getvalue().strip().splitlines()
    assert lines[0].startswith("thread,")
    assert len(lines) == len(records) + 1

    events = chrome_request_events(records)
    spans = [e for e in events if e.get("ph") == "X"]
    assert len(spans) == len(records)
    for event in spans:
        assert event["pid"] == 6
        assert event["dur"] >= 1
    # Monotone per track, as Chrome requires.
    by_tid = {}
    for event in spans:
        by_tid.setdefault(event["tid"], []).append(event["ts"])
    for stamps in by_tid.values():
        assert stamps == sorted(stamps)
    json.dumps(events)  # must be plain-JSON serializable


# ----------------------------------------------------------------------
# The figure entry point
# ----------------------------------------------------------------------

def test_run_figure_kv_quick():
    from repro.bench.figures import run_figure_kv
    from repro.exp.runner import ExperimentRunner

    result = run_figure_kv(scale="quick", crash_points=4,
                           runner=ExperimentRunner(jobs=1))
    assert result.mechanisms == ["sb", "bb", "lrp"]
    for mech in result.mechanisms:
        payload = result.payloads[mech]
        assert payload["requests"] > 0
        assert payload["latency"]["p99"] >= payload["latency"]["p50"]
        assert payload["recovery"]["recovered_fraction"] == 1.0
    rendered = result.render()
    assert "LRP" in rendered and "durable p99" in rendered
