"""Tests for the coverage-guided persistency fuzzer (repro.fuzz).

Covers the four tentpole pieces — schedule mutation + coverage
feedback, coverage-weighted crash sampling, counterexample shrinking,
and the corpus/campaign layer — plus the determinism contract: a
campaign is a pure function of (workload, mechanism, seed, budget).
"""

import json

import pytest

from repro.common.params import MachineConfig
from repro.common.rng import make_rng
from repro.core.simulator import simulate
from repro.exp.runner import Job, execute_job
from repro.fuzz.corpus import Corpus, CorpusEntry, load_coverage
from repro.fuzz.crashpoints import (
    TRIGGER_WEIGHTS,
    prefix_weights,
    sample_prefixes,
    trigger_map,
)
from repro.fuzz.engine import CampaignConfig, run_campaign
from repro.fuzz.leg import FuzzLegSpec
from repro.fuzz.mutation import (
    MAX_NUDGES,
    MAX_RANK,
    ScheduleMutation,
    mutate,
)
from repro.fuzz.reprofile import ReproFile, replay_repro
from repro.fuzz.shrink import first_failing_prefix, shrink_counterexample
from repro.obs.coverage import CoverageMap, bucket, coverage_from_obs
from repro.workloads.harness import WorkloadSpec

CFG = MachineConfig(num_cores=8, l1_size_bytes=4 * 1024,
                    record_trace=True)


def _spec(seed=1):
    return WorkloadSpec(structure="hashmap", num_threads=4,
                        initial_size=64, ops_per_thread=8, seed=seed)


class TestBucketing:
    def test_small_counts_exact(self):
        assert [bucket(n) for n in (0, 1, 2, 3)] == [0, 1, 2, 3]

    def test_power_of_two_buckets(self):
        assert bucket(4) == 4
        assert bucket(7) == 4
        assert bucket(8) == 8
        assert bucket(100) == 64

    def test_jitter_inside_bucket_is_not_new_coverage(self):
        a, b = CoverageMap(), CoverageMap()
        a.add_count("persist", "release", "site", count=9)
        b.add_count("persist", "release", "site", count=15)
        assert a.new_features(b) == 0

    def test_bucket_jump_is_new_coverage(self):
        a, b = CoverageMap(), CoverageMap()
        a.add_count("persist", "release", "site", count=9)
        b.add_count("persist", "release", "site", count=16)
        assert a.new_features(b) == 1


class TestCoverageMap:
    def test_merge_returns_new_feature_count(self):
        a = CoverageMap(["x|y|b1"])
        b = CoverageMap(["x|y|b1", "x|z|b2"])
        assert a.merge(b) == 1
        assert a.merge(b) == 0
        assert len(a) == 2

    def test_roundtrip_is_sorted_and_stable(self):
        cov = CoverageMap(["b|b|b1", "a|a|b1"])
        assert cov.to_list() == sorted(cov.to_list())
        assert CoverageMap.from_list(cov.to_list()).to_list() == \
            cov.to_list()

    def test_zero_count_ignored(self):
        cov = CoverageMap()
        cov.add_count("coh", "coh.evictions", count=0)
        assert len(cov) == 0

    def test_harvest_from_synthetic_export(self):
        export = {
            "metrics": {"counters": {"coh.downgrades": 5},
                        "histograms": {}},
            "provenance": {
                "persists": [
                    {"seq": 0, "trigger": "release", "site": "s.a"},
                    {"seq": 1, "trigger": "downgrade", "site": "s.b",
                     "edge": [0, 1]},
                ],
                "stalls": [["s.a", "drain", 40, 2]],
            },
        }
        cov = coverage_from_obs(export)
        features = cov.to_list()
        assert "coh|coh.downgrades|b4" in features
        assert "persist|release|s.a|b1" in features
        assert "persist|downgrade|s.b|b1" in features
        assert "edge|downgrade|0|1|b1" in features
        assert "stall|drain|s.a|b2" in features
        # Persist-order adjacency: s.a persisted immediately before s.b.
        assert "order|s.a|s.b|b1" in features

    def test_order_features_follow_seq_not_list_order(self):
        export = {
            "metrics": {"counters": {}},
            "provenance": {
                "persists": [
                    {"seq": 5, "trigger": "release", "site": "late"},
                    {"seq": 1, "trigger": "release", "site": "early"},
                ],
                "stalls": [],
            },
        }
        assert "order|early|late|b1" in coverage_from_obs(export).to_list()


class TestScheduleMutation:
    def test_make_canonicalizes(self):
        m = ScheduleMutation.make([(7, 2), (3, 1), (7, 3)])
        assert m.nudges == ((3, 1), (7, 3))  # sorted, last rank wins

    def test_digest_depends_on_content(self):
        assert ScheduleMutation.make([(1, 1)]).digest() != \
            ScheduleMutation.make([(1, 2)]).digest()
        assert ScheduleMutation.make([(1, 1)]).digest() == \
            ScheduleMutation.make([(1, 1)]).digest()

    def test_mutate_is_deterministic(self):
        parent = ScheduleMutation.make([(4, 1)])
        children = [mutate(parent, make_rng(9, "mutate", 3), 100)
                    for _ in range(2)]
        assert children[0] == children[1]

    def test_mutate_respects_bounds(self):
        rng = make_rng(0, "bounds")
        m = ScheduleMutation()
        for _ in range(200):
            m = mutate(m, rng, 50)
            assert len(m) <= MAX_NUDGES
            for index, rank in m.nudges:
                assert 0 <= index < 50
                assert 1 <= rank <= MAX_RANK

    def test_empty_decision_space_is_identity(self):
        parent = ScheduleMutation.make([(1, 1)])
        assert mutate(parent, make_rng(0, "x"), 0) is parent


class TestNudgedScheduler:
    def test_empty_nudges_bit_identical_to_heap_path(self):
        base = simulate(_spec(), "lrp", CFG)
        nudged = simulate(_spec(), "lrp", CFG, schedule_nudges={})
        assert nudged.executed_ops == base.executed_ops
        assert [(r.complete_time, r.issue_seq)
                for r in nudged.nvm.persist_log()] == \
            [(r.complete_time, r.issue_seq)
             for r in base.nvm.persist_log()]

    def test_noop_rank_zero_nudge_changes_nothing(self):
        base = simulate(_spec(), "lrp", CFG)
        nudged = simulate(_spec(), "lrp", CFG, schedule_nudges={5: 0})
        assert [(r.complete_time, r.issue_seq)
                for r in nudged.nvm.persist_log()] == \
            [(r.complete_time, r.issue_seq)
             for r in base.nvm.persist_log()]

    def test_effective_nudge_changes_interleaving(self):
        """Perturbing the very first decision (all clocks equal) must
        change which thread's ops hit the memory system first."""
        base = simulate(_spec(), "lrp", CFG)
        nudged = simulate(_spec(), "lrp", CFG, schedule_nudges={0: 3})
        assert [(r.complete_time, r.issue_seq)
                for r in nudged.nvm.persist_log()] != \
            [(r.complete_time, r.issue_seq)
             for r in base.nvm.persist_log()]

    def test_nudged_run_is_deterministic(self):
        runs = [simulate(_spec(), "lrp", CFG, schedule_nudges={0: 3})
                for _ in range(2)]
        assert [(r.complete_time, r.issue_seq)
                for r in runs[0].nvm.persist_log()] == \
            [(r.complete_time, r.issue_seq)
             for r in runs[1].nvm.persist_log()]

    def test_final_state_still_linearizable(self):
        nudged = simulate(_spec(), "lrp", CFG, schedule_nudges={0: 2})
        nudged.verify_final_state()


class _Record:
    def __init__(self, issue_seq):
        self.issue_seq = issue_seq


class TestCrashPointWeights:
    LOG = [_Record(0), _Record(1), _Record(2), _Record(3)]

    def test_release_adjacent_prefixes_weighted_up(self):
        triggers = {1: "release"}
        weights = prefix_weights(self.LOG, triggers)
        assert len(weights) == len(self.LOG) + 1
        # Prefixes flanking record seq 1 inherit the release weight.
        assert weights[1] == TRIGGER_WEIGHTS["release"]
        assert weights[2] == TRIGGER_WEIGHTS["release"]
        assert weights[0] == 1
        assert weights[4] == 1

    def test_sampling_always_includes_endpoints(self):
        weights = prefix_weights(self.LOG, {})
        picks = sample_prefixes(weights, 3, make_rng(0, "cp"))
        assert 0 in picks and len(self.LOG) in picks
        assert picks == sorted(picks)
        assert len(picks) == len(set(picks)) == 3

    def test_big_budget_returns_every_prefix(self):
        weights = prefix_weights(self.LOG, {})
        assert sample_prefixes(weights, 99, make_rng(0, "cp")) == \
            list(range(len(self.LOG) + 1))

    def test_sampling_deterministic(self):
        weights = prefix_weights(self.LOG, {1: "downgrade"})
        a = sample_prefixes(weights, 3, make_rng(4, "cp"))
        b = sample_prefixes(weights, 3, make_rng(4, "cp"))
        assert a == b

    def test_trigger_map_from_provenance(self):
        prov = {"persists": [{"seq": 3, "trigger": "release",
                              "site": "x"}]}
        assert trigger_map(prov) == {3: "release"}


class TestFuzzLeg:
    def test_leg_attaches_coverage_and_failures(self):
        job = Job(spec=_spec(), mechanism="arp", config=CFG,
                  fuzz=FuzzLegSpec(crash_samples=16, crash_seed=1))
        summary = execute_job(job)
        assert summary.fuzz is not None
        assert summary.fuzz["coverage"] == summary.obs["coverage"]
        assert summary.fuzz["log_length"] > 0
        assert summary.fuzz["sampled_prefixes"]
        # ARP on this spec leaves unrecoverable prefixes (pinned by
        # TestExpectedFailureContract in test_recovery.py too).
        kinds = {f["kind"] for f in summary.fuzz["failures"]}
        assert "structural" in kinds

    def test_enforcing_mechanism_leg_is_clean(self):
        job = Job(spec=_spec(), mechanism="lrp", config=CFG,
                  fuzz=FuzzLegSpec(crash_samples=12, crash_seed=1))
        summary = execute_job(job)
        assert summary.fuzz["failures"] == []


class TestShrinker:
    def _run(self, mutation):
        return simulate(_spec(), "arp", CFG,
                        schedule_nudges=(mutation.as_dict()
                                         if len(mutation) else None))

    def test_first_failing_prefix_is_minimal(self):
        result = self._run(ScheduleMutation())
        found = first_failing_prefix(result)
        assert found is not None
        prefix, problems = found
        assert problems
        for earlier in range(prefix):
            report = result.structure.validate_image(
                result.nvm.image_after_prefix(earlier))
            assert report.ok

    def test_shrink_strips_irrelevant_nudges(self):
        # ARP fails even unperturbed, so junk nudges must all go.
        raw = ScheduleMutation.make([(200, 1), (250, 2)])
        shrunk = shrink_counterexample(raw, 40, self._run)
        assert shrunk is not None
        assert len(shrunk.mutation) == 0
        assert shrunk.prefix < 40
        assert shrunk.strictly_smaller
        assert shrunk.probes >= 2

    def test_clean_mechanism_does_not_shrink(self):
        def run(mutation):
            return simulate(_spec(), "lrp", CFG,
                            schedule_nudges=(mutation.as_dict()
                                             if len(mutation) else None))

        assert shrink_counterexample(ScheduleMutation(), 5, run) is None


class TestReproFile:
    def _campaign(self, tmp_path):
        return run_campaign(CampaignConfig(
            mechanism="arp", budget=6, crash_samples=12,
            out_dir=str(tmp_path)))

    def test_saved_counterexample_replays(self, tmp_path):
        result = self._campaign(tmp_path)
        assert result.counterexamples
        path = result.counterexamples[0]["repro_path"]
        outcome = replay_repro(path)
        assert outcome["ok"], outcome

    def test_roundtrip_preserves_fields(self, tmp_path):
        result = self._campaign(tmp_path)
        path = result.counterexamples[0]["repro_path"]
        loaded = ReproFile.load(path)
        assert loaded.mechanism == "arp"
        assert loaded.prefix == result.counterexamples[0]["prefix"]
        assert loaded.verdict["kind"] == "structural"

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            ReproFile.load(str(path))

    def test_tampered_prefix_does_not_reproduce(self, tmp_path):
        result = self._campaign(tmp_path)
        path = result.counterexamples[0]["repro_path"]
        data = json.loads(open(path).read())
        data["prefix"] = 0  # empty NVM image always recovers
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(data))
        assert not replay_repro(str(tampered))["ok"]


class TestCorpus:
    def test_save_load_roundtrip(self, tmp_path):
        corpus = Corpus()
        corpus.add(CorpusEntry(ScheduleMutation(), 0, None, 10))
        corpus.add(CorpusEntry(ScheduleMutation.make([(3, 1)]), 4,
                               corpus.entries[0].mutation.digest(), 2))
        coverage = CoverageMap(["a|b|b1"])
        written = corpus.save(str(tmp_path), coverage)
        assert "coverage.json" in written
        loaded = Corpus.load(str(tmp_path))
        assert loaded.digests() == corpus.digests()
        assert [e.exec_index for e in loaded.entries] == [0, 4]
        assert load_coverage(str(tmp_path)).to_list() == ["a|b|b1"]

    def test_select_deterministic(self):
        corpus = Corpus()
        for i in range(5):
            corpus.add(CorpusEntry(ScheduleMutation.make([(i, 1)]),
                                   i, None, 1))
        picks = [corpus.select(make_rng(2, "sel", i)).exec_index
                 for i in range(8)]
        assert picks == [corpus.select(make_rng(2, "sel", i)).exec_index
                         for i in range(8)]

    def test_select_empty_raises(self):
        with pytest.raises(ValueError):
            Corpus().select(make_rng(0, "sel"))


def _fingerprint(result):
    return {
        "coverage": result.coverage.to_list(),
        "corpus": result.corpus.digests(),
        "counterexamples": [
            (list(ce["mutation"].nudges), ce["prefix"],
             ce["problems"][:1])
            for ce in result.counterexamples
        ],
    }


class TestCampaign:
    def test_arp_campaign_finds_and_shrinks(self):
        result = run_campaign(CampaignConfig(
            mechanism="arp", budget=10, crash_samples=12))
        assert not result.clean
        assert result.contract_ok
        assert result.counterexamples
        ce = result.counterexamples[0]
        assert ce["shrunk"] and ce["strictly_smaller"]
        assert ce["verdict"]["cut_violations"] > 0

    def test_lrp_campaign_is_clean(self):
        result = run_campaign(CampaignConfig(
            mechanism="lrp", budget=10, crash_samples=12))
        assert result.clean and result.contract_ok
        assert not result.counterexamples

    def test_same_seed_is_bit_identical(self):
        config = CampaignConfig(mechanism="arp", budget=12,
                                crash_samples=12, seed=3)
        assert _fingerprint(run_campaign(config)) == \
            _fingerprint(run_campaign(config))

    def test_different_seed_differs(self):
        a = run_campaign(CampaignConfig(mechanism="lrp", budget=16,
                                        seed=1))
        b = run_campaign(CampaignConfig(mechanism="lrp", budget=16,
                                        seed=2))
        # Different workload seeds explore different runs entirely.
        assert _fingerprint(a) != _fingerprint(b)

    def test_jobs_do_not_change_results(self):
        serial = run_campaign(CampaignConfig(mechanism="arp",
                                             budget=12, jobs=1, seed=5))
        pooled = run_campaign(CampaignConfig(mechanism="arp",
                                             budget=12, jobs=2, seed=5))
        assert _fingerprint(serial) == _fingerprint(pooled)

    def test_corpus_directory_written(self, tmp_path):
        run_campaign(CampaignConfig(mechanism="arp", budget=8,
                                    corpus_dir=str(tmp_path)))
        assert (tmp_path / "coverage.json").exists()
        loaded = Corpus.load(str(tmp_path))
        assert len(loaded) >= 1  # at least the baseline entry

    def test_report_shape(self):
        result = run_campaign(CampaignConfig(mechanism="lrp", budget=4))
        report = result.report()
        assert report["mechanism"] == "lrp"
        assert report["enforces_rp"] is True
        assert report["executions"] == 4
        json.dumps(report)  # must be JSON-serializable

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            run_campaign(CampaignConfig(budget=0))


class TestCampaignCLI:
    def test_campaign_exit_codes(self, capsys):
        from repro.fuzz.__main__ import main

        assert main(["--mechanism", "arp", "--budget", "8",
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["--mechanism", "lrp", "--budget", "4",
                     "--quiet"]) == 0
        capsys.readouterr()

    def test_weak_mechanism_without_findings_fails(self, capsys):
        from repro.fuzz.__main__ import main

        # Budget 1 on a clean mechanism is fine; on ARP the baseline
        # already fails, so force the "no findings" branch via sb.
        # sb enforces RP -> clean run exits 0; an ARP run that found
        # nothing would exit 1 (contract): simulate that by checking
        # the contract property directly.
        result = run_campaign(CampaignConfig(mechanism="arp", budget=2,
                                             crash_samples=2,
                                             max_counterexamples=0))
        assert not result.contract_ok
