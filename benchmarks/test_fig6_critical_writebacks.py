"""Figure 6: % of writebacks on the execution critical path (BB vs LRP).

Paper: ~51% of BB's writebacks are on the critical path vs ~10% for
LRP — because LRP persists mostly via eviction (invariant I1, off the
critical path), while BB's conflict-triggered flushes block.
"""

import pytest
from conftest import run_once

from repro.bench.figures import run_figure6


@pytest.fixture(scope="module")
def fig6():
    return run_figure6(scale="quick")


def test_figure6_runs(benchmark):
    result = run_once(benchmark, run_figure6, scale="quick")
    print("\n" + result.render())
    for workload, fractions in result.fractions.items():
        for mech, value in fractions.items():
            benchmark.extra_info[f"{workload}/{mech}"] = round(value, 3)


class TestFigure6Shape:
    def test_lrp_lower_critical_fraction_on_index_structures(self, fig6):
        """On the paper-scale index structures, LRP's critical fraction
        is below BB's. (The linked list and queue invert this in our
        strictly serialized interleaving — EXPERIMENTS.md deviations 1
        and 3.)"""
        index = ("hashmap", "bstree", "skiplist")
        bb = sum(fig6.fractions[w]["bb"] for w in index)
        lrp = sum(fig6.fractions[w]["lrp"] for w in index)
        assert lrp < bb + 0.05

    def test_index_structures_mostly_off_critical_path_for_lrp(self,
                                                               fig6):
        """At paper-scale structure sizes the eviction path (I1)
        dominates, so LRP's critical fraction is small."""
        for workload in ("hashmap", "bstree", "skiplist"):
            assert fig6.fractions[workload]["lrp"] < 0.30, workload

    def test_fractions_are_valid(self, fig6):
        for fractions in fig6.fractions.values():
            for value in fractions.values():
                assert 0.0 <= value <= 1.0
