"""Figure 7: normalized execution time in the *uncached* NVM mode.

The NVM-side DRAM cache is disabled (persist ack = 350 cycles). Paper:
LRP is more robust to the slower NVM than BB or SB — it keeps a
nominal overhead (3-19% over NOP) and widens its margin over BB.
"""

import pytest
from conftest import run_once

from repro.bench.figures import run_figure5, run_figure7


@pytest.fixture(scope="module")
def fig7():
    return run_figure7(scale="quick")


def test_figure7_runs(benchmark):
    result = run_once(benchmark, run_figure7, scale="quick")
    print("\n" + result.render())
    for workload in result.workloads:
        for mech in result.mechanisms:
            benchmark.extra_info[f"{workload}/{mech}"] = round(
                result.normalized(workload, mech), 3)


class TestFigure7Shape:
    def test_lrp_beats_bb_on_average(self, fig7):
        assert fig7.mean_improvement("bb", "lrp") > 0.0

    def test_sb_worst_on_average(self, fig7):
        assert fig7.mean_improvement("sb", "bb") > 0.0

    def test_lrp_robust_on_index_structures(self, fig7):
        """LRP overhead stays nominal even with 350-cycle persists."""
        for workload in ("hashmap", "bstree", "skiplist"):
            assert fig7.normalized(workload, "lrp") < 1.25, workload

    def test_uncached_hurts_sb_more_than_lrp(self, fig7):
        fig5 = run_figure5(scale="quick",
                           workloads=("hashmap", "skiplist"))
        for workload in ("hashmap", "skiplist"):
            sb_growth = (fig7.normalized(workload, "sb")
                         - fig5.normalized(workload, "sb"))
            lrp_growth = (fig7.normalized(workload, "lrp")
                          - fig5.normalized(workload, "lrp"))
            assert sb_growth > lrp_growth, workload
