"""Volatile execution (NOP): no persistency model is enforced.

Writebacks still reach the memory subsystem (the NVM *is* main
memory), so an NVM image exists — but nothing orders it, which is what
the crash-recovery experiments demonstrate: NOP leaves LFDs in
unrecoverable states. No hook ever stalls a thread.
"""

from __future__ import annotations

from repro.coherence.l1cache import CacheLine, MESIState
from repro.persistency.base import PersistencyMechanism


class NOPMechanism(PersistencyMechanism):
    """Baseline with zero persistency overhead (Section 6.2, "NOP")."""

    name = "nop"
    enforces_rp = False

    def on_evict(self, core: int, line: CacheLine, now: int) -> int:
        if self.obs is not None and line.has_pending:
            self.obs.count("nop.background_writebacks")
        self._issue_line(core, line, now, trigger="eviction")
        return 0

    def on_downgrade(self, owner: int, line: CacheLine,
                     to_state: MESIState, requester: int, now: int) -> int:
        if self.obs is not None and line.has_pending:
            self.obs.count("nop.background_writebacks")
        self._issue_line(owner, line, now, trigger="downgrade",
                         edge=(owner, requester))
        return 0

    def drain(self, now: int) -> int:
        for l1 in self.fabric.l1s:
            self._issue_lines(l1.core_id, l1.pending_lines(), now,
                              trigger="drain")
        return 0
