"""Tests for the workload harness and its correctness oracle."""

import pytest

from repro.common.params import MachineConfig
from repro.workloads.harness import (
    WorkloadSpec,
    build_initial_memory,
    expected_final_keys,
    initial_keys,
    make_structure,
)

CFG = MachineConfig()


class TestSpec:
    def test_defaults_match_paper(self):
        spec = WorkloadSpec()
        assert spec.num_threads == 32
        assert spec.update_ratio == 1.0   # 100% updates, 1:1 mix

    def test_key_range_default_doubles_size(self):
        assert WorkloadSpec(initial_size=500).effective_key_range == 1000

    def test_key_range_override(self):
        spec = WorkloadSpec(initial_size=10, key_range=77)
        assert spec.effective_key_range == 77

    def test_rejects_bad_threads(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_threads=0)

    def test_rejects_bad_update_ratio(self):
        with pytest.raises(ValueError):
            WorkloadSpec(update_ratio=1.5)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            WorkloadSpec(initial_size=-1)


class TestInitialKeys:
    def test_size_and_uniqueness(self):
        spec = WorkloadSpec(structure="hashmap", initial_size=100)
        keys = initial_keys(spec)
        assert len(keys) == 100
        assert len(set(keys)) == 100
        assert all(0 <= k < spec.effective_key_range for k in keys)

    def test_deterministic_per_seed(self):
        a = initial_keys(WorkloadSpec(initial_size=50, seed=9))
        b = initial_keys(WorkloadSpec(initial_size=50, seed=9))
        assert a == b
        c = initial_keys(WorkloadSpec(initial_size=50, seed=10))
        assert a != c

    def test_queue_values_negative(self):
        spec = WorkloadSpec(structure="queue", initial_size=5)
        assert initial_keys(spec) == [-1, -2, -3, -4, -5]

    def test_size_exceeding_range_rejected(self):
        with pytest.raises(ValueError):
            initial_keys(WorkloadSpec(initial_size=100, key_range=50))


class TestMakeStructure:
    def test_hashmap_bucket_scaling(self):
        spec = WorkloadSpec(structure="hashmap", initial_size=1024)
        structure = make_structure(spec, CFG)
        assert structure.num_buckets == 256

    def test_all_workloads_constructible(self):
        for name in ("linkedlist", "hashmap", "bstree", "skiplist",
                     "queue"):
            spec = WorkloadSpec(structure=name, initial_size=16)
            structure = make_structure(spec, CFG)
            assert structure.name == name

    def test_initial_memory_nonempty(self):
        spec = WorkloadSpec(structure="bstree", initial_size=32)
        structure = make_structure(spec, CFG)
        memory = build_initial_memory(spec, structure)
        assert len(memory) >= 32 * 5


class TestOracle:
    def _outcomes(self, *per_worker):
        return [list(results) for results in per_worker]

    def test_set_net_counts(self):
        spec = WorkloadSpec(structure="hashmap", initial_size=0,
                            ops_per_thread=1, num_threads=2)
        outcomes = self._outcomes(
            [("insert", 5, True)],
            [("insert", 5, False), ("delete", 7, False)])
        assert expected_final_keys(spec, outcomes) == {5}

    def test_set_delete_of_initial(self):
        spec = WorkloadSpec(structure="hashmap", initial_size=3,
                            num_threads=1, seed=1)
        start = initial_keys(spec)
        outcomes = self._outcomes([("delete", start[0], True)])
        assert expected_final_keys(spec, outcomes) == set(start[1:])

    def test_set_impossible_net_count_raises(self):
        spec = WorkloadSpec(structure="hashmap", initial_size=0,
                            num_threads=1)
        outcomes = self._outcomes(
            [("insert", 5, True), ("insert", 5, True)])
        with pytest.raises(AssertionError):
            expected_final_keys(spec, outcomes)

    def test_queue_cross_worker_dequeue_ok(self):
        spec = WorkloadSpec(structure="queue", initial_size=0,
                            num_threads=2)
        outcomes = self._outcomes(
            [("delete", -1, 2_000_000)],     # dequeues worker 2's value
            [("insert", 2_000_000, True)])
        assert expected_final_keys(spec, outcomes) == set()

    def test_queue_double_dequeue_raises(self):
        spec = WorkloadSpec(structure="queue", initial_size=1,
                            num_threads=2)
        outcomes = self._outcomes(
            [("delete", -1, -1)], [("delete", -1, -1)])
        with pytest.raises(AssertionError):
            expected_final_keys(spec, outcomes)

    def test_queue_phantom_value_raises(self):
        spec = WorkloadSpec(structure="queue", initial_size=0,
                            num_threads=1)
        outcomes = self._outcomes([("delete", -1, 42)])
        with pytest.raises(AssertionError):
            expected_final_keys(spec, outcomes)

    def test_contains_ignored(self):
        spec = WorkloadSpec(structure="hashmap", initial_size=0,
                            num_threads=1, update_ratio=0.0)
        outcomes = self._outcomes([("contains", 5, False)])
        assert expected_final_keys(spec, outcomes) == set()
