"""Simulated memory: addressing, heap allocation and the NVM subsystem."""

from repro.memory.address import (
    WORD_BYTES,
    HeapAllocator,
    line_address,
    line_index,
    word_aligned,
    words_in_line,
)
from repro.memory.nvm import NVMController, PersistRecord

__all__ = [
    "WORD_BYTES",
    "HeapAllocator",
    "line_address",
    "line_index",
    "word_aligned",
    "words_in_line",
    "NVMController",
    "PersistRecord",
]
