#!/usr/bin/env python3
"""Observability demo: where does each mechanism's makespan go?

Runs one workload under every persistency mechanism with a
:class:`repro.obs.Observer` attached, then prints the critical-path
attribution report: the slowest core's clock split into compute /
coherence / persist-stall segments, plus the dominant stall reasons.
This is the quantified version of the paper's core argument — SB puts
persists *on* the critical path, LRP takes them off it.

Also exports a Chrome trace-event timeline of the LRP run; load it in
chrome://tracing or https://ui.perfetto.dev to see op spans, persist
stalls, persist-engine scans and NVM-channel activity per cycle.

Run:  python examples/obs_attribution_demo.py [trace-out.json]
"""

import sys

from repro import WorkloadSpec, simulate
from repro.common.params import MachineConfig
from repro.obs import Observer, write_chrome_trace
from repro.obs.report import attribute_run, render_attribution

MECHANISMS = ("nop", "sb", "bb", "lrp")


def main() -> None:
    spec = WorkloadSpec(structure="hashmap", num_threads=8,
                        initial_size=1024, ops_per_thread=32, seed=42)
    config = MachineConfig(num_cores=8)

    attributions = []
    lrp_observer = None
    for mechanism in MECHANISMS:
        observer = Observer(trace=(mechanism == "lrp"))
        result = simulate(spec, mechanism, config, observer=observer)
        attributions.append(
            attribute_run(result.stats, observer.metrics.counters))
        if mechanism == "lrp":
            lrp_observer = observer

    print(render_attribution(
        attributions,
        title=f"Critical-path attribution: {spec.structure}, "
              f"{spec.num_threads} threads, "
              f"{spec.ops_per_thread} ops/thread"))

    sb, lrp = attributions[1], attributions[3]
    print(f"\nSB spends {100 * sb.critical_core.persist_stall / sb.makespan:.1f}% "
          f"of its critical path stalled on persists; "
          f"LRP {100 * lrp.critical_core.persist_stall / lrp.makespan:.1f}% "
          "— the paper's argument, measured.")

    out = sys.argv[1] if len(sys.argv) > 1 else "lrp-hashmap-trace.json"
    events = lrp_observer.trace.chrome_events()
    write_chrome_trace(events, out)
    print(f"wrote {len(events)} LRP trace events to {out} "
          "(open in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
