"""Px86-derived persist-order axioms (independent cross-check).

*Taming x86-TSO Persistency* (Khyzha & Lahav; see PAPERS.md) gives
x86 persistency as a handful of declarative axioms over store order
and explicit persist instructions. Specialized to this repo's event
vocabulary — word-granular locations, a release store standing for the
``flushopt*; sfence; store`` publication idiom, an acquire load for
the synchronizing read — the obligations become:

* **WCO** (per-location write-coherence order): two stores by one
  thread to the same word persist in program order (a persist buffer
  never reorders same-word persists of its own stream).
* **REL** (release flushes): a release store persists after *every*
  program-order-earlier store of its thread (the flush-set of the
  ``flushopt*; sfence`` prefix).
* **SW** (synchronized transfer): if an acquire reads a release of
  another thread, every write-effect of the acquirer at or after the
  acquire persists after that release. (An acquire-RMW is itself such
  a write-effect.)
* **TRANS**: persist-order obligations compose transitively.

This is deliberately a *different formulation* from
``HappensBefore(mode="rp")`` — axioms grown to a fixpoint over
explicit pairs, not a barrier/edge construction — yet Release
Persistency's obligations must coincide with it on every explored
trace. The selftest pins that agreement trace by trace.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.consistency.events import Trace
from repro.persistency.rp_model import _pair_respected, _positions


def px86_write_pairs(trace: Trace) -> Set[Tuple[int, int]]:
    """All (earlier, later) write-event pairs the axioms order."""
    events = trace.events
    writes = [e for e in events if e.is_write_effect]
    pairs: Set[Tuple[int, int]] = set()

    # WCO: same-thread same-word program order.
    last_store: Dict[Tuple[int, int], int] = {}
    for event in writes:
        key = (event.thread_id, event.addr)
        if key in last_store:
            pairs.add((last_store[key], event.event_id))
        last_store[key] = event.event_id

    # REL: release persists after all its thread's earlier stores.
    for release in writes:
        if not release.is_release:
            continue
        for store in writes:
            if store.event_id >= release.event_id:
                break
            if store.thread_id == release.thread_id:
                pairs.add((store.event_id, release.event_id))

    # SW: release -> (acquirer's write-effects at or after the acquire).
    for acquire in events:
        if not acquire.is_acquire or acquire.reads_from is None:
            continue
        release = events[acquire.reads_from]
        if not release.is_release \
                or release.thread_id == acquire.thread_id:
            continue
        for store in writes:
            if store.thread_id == acquire.thread_id \
                    and store.event_id >= acquire.event_id:
                pairs.add((release.event_id, store.event_id))

    # TRANS: grow to the transitive fixpoint.
    changed = True
    while changed:
        changed = False
        by_earlier: Dict[int, List[int]] = {}
        for earlier, later in pairs:
            by_earlier.setdefault(earlier, []).append(later)
        for earlier, later in list(pairs):
            for beyond in by_earlier.get(later, ()):
                candidate = (earlier, beyond)
                if candidate not in pairs:
                    pairs.add(candidate)
                    changed = True
    return pairs


def px86_allows(trace: Trace, persist_sequence: Sequence[int]) -> bool:
    """Does the Px86-derived order allow this persist sequence?"""
    positions = _positions(persist_sequence)
    return all(_pair_respected(positions, earlier, later)
               for earlier, later in px86_write_pairs(trace))
