"""Tests for the persist-order audit (repro.obs.audit + CLI).

The audit must (a) pass the RP-enforcing mechanisms on real runs,
(b) report (but tolerate) the expected violations of mechanisms with
no RP guarantee, and (c) actually *detect* a broken persist order —
proven by hand-injecting a reordered log and watching it fail.
"""

import json

import pytest

from repro.common.params import MachineConfig
from repro.consistency.events import MemOrder
from repro.core.machine import Machine
from repro.core.simulator import simulate
from repro.obs.audit import AuditReport, audit_execution, audit_simulation
from repro.obs.__main__ import main as obs_main
from repro.workloads.harness import WorkloadSpec

CFG = MachineConfig(num_cores=4)

LINE_A, LINE_B = 0x1000, 0x2000


def small_spec(structure="hashmap"):
    return WorkloadSpec(structure=structure, num_threads=4,
                        initial_size=48, ops_per_thread=10, seed=3)


# ----------------------------------------------------------------------
# Real runs
# ----------------------------------------------------------------------

class TestAuditSimulation:
    @pytest.mark.parametrize("mech", ("sb", "bb", "lrp"))
    def test_rp_mechanisms_audit_clean(self, mech):
        result = simulate(small_spec(), mech, CFG)
        report = audit_simulation(result, cut_samples=6)
        assert report.enforces_rp
        assert report.clean, [str(v) for v in
                              report.order_violations[:3]]
        assert not report.failed
        assert report.pairs_checked > 0
        assert "OK" in report.summary()

    def test_nop_violates_but_is_expected(self):
        result = simulate(small_spec(), "nop", CFG)
        report = audit_simulation(result, cut_samples=6)
        assert not report.enforces_rp
        assert report.total_violations > 0
        assert not report.failed  # expected: no RP guarantee claimed
        assert "expected" in report.summary()

    @pytest.mark.parametrize("structure",
                             ("linkedlist", "bstree", "skiplist", "queue"))
    def test_lrp_clean_on_every_lfd(self, structure):
        result = simulate(small_spec(structure), "lrp", CFG)
        assert audit_simulation(result, cut_samples=4).clean

    def test_cut_results_cover_empty_and_full_prefix(self):
        result = simulate(small_spec(), "lrp", CFG)
        report = audit_simulation(result, cut_samples=4)
        prefixes = [prefix for prefix, _ in report.cut_results]
        assert prefixes[0] == 0
        assert prefixes[-1] == len(result.nvm.persist_log())


# ----------------------------------------------------------------------
# Detection: an injected reordered persist log must fail the audit
# ----------------------------------------------------------------------

class TestInjectedReordering:
    def _inverted_machine(self):
        """Release persisted strictly before the write it orders."""
        machine = Machine(CFG, "nop")
        write = machine.trace.record_write(0, LINE_A, 1)
        release = machine.trace.record_write(0, LINE_B, 2,
                                             MemOrder.RELEASE)
        machine.nvm.issue_persist(
            LINE_B, {LINE_B: (2, release.event_id)}, now=0)
        machine.nvm.issue_persist(
            LINE_A, {LINE_A: (1, write.event_id)}, now=500)
        return machine, write, release

    def test_reordered_log_detected(self):
        machine, write, release = self._inverted_machine()
        report = audit_execution(machine.trace, machine.nvm,
                                 workload="synthetic", mechanism="lrp",
                                 enforces_rp=True, cut_samples=4)
        assert report.order_violations
        assert report.failed
        assert "FAILED" in report.summary()
        violation = report.order_violations[0]
        assert violation.earlier.event_id == write.event_id
        assert violation.later.event_id == release.event_id

    def test_provenance_names_the_write_pair(self):
        machine, write, release = self._inverted_machine()
        report = audit_execution(machine.trace, machine.nvm,
                                 enforces_rp=True, cut_samples=2)
        lines = report.detail_lines()
        assert any("hb->" in line for line in lines)
        assert any(f"W{write.event_id}" in line for line in lines)

    def test_detail_lines_truncate(self):
        result = simulate(small_spec(), "nop", CFG)
        report = audit_simulation(result, cut_samples=6)
        assert report.total_violations > 2
        lines = report.detail_lines(limit=2)
        assert len(lines) == 3
        assert "more" in lines[-1]


# ----------------------------------------------------------------------
# The CLI
# ----------------------------------------------------------------------

AUDIT_ARGS = ["--threads", "4", "--size", "48", "--ops", "8",
              "--cuts", "4"]


class TestAuditCLI:
    def test_lrp_passes(self, capsys):
        rc = obs_main(["audit", "--mechanism", "lrp",
                       "--workloads", "hashmap"] + AUDIT_ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert "hashmap" in out

    def test_nop_reports_but_passes_without_strict(self, capsys):
        rc = obs_main(["audit", "--mechanism", "nop",
                       "--workloads", "hashmap"] + AUDIT_ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        assert "expected" in out
        assert "hb->" in out  # provenance lines shown

    def test_nop_fails_under_strict(self, capsys):
        rc = obs_main(["audit", "--mechanism", "nop", "--strict",
                       "--workloads", "hashmap"] + AUDIT_ARGS)
        assert rc == 1
        assert "FAILED" in capsys.readouterr().out

    def test_unknown_mechanism_is_one_line(self, capsys):
        rc = obs_main(["audit", "--mechanism", "bogus",
                       "--workloads", "hashmap"] + AUDIT_ARGS)
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_unknown_workload_is_one_line(self, capsys):
        rc = obs_main(["audit", "--workloads", "nosuch"] + AUDIT_ARGS)
        assert rc == 1
        assert capsys.readouterr().err.startswith("error:")
