"""The simulated machine: cores + L1s + directory + NVM + persistency.

:meth:`Machine.execute` carries one memory operation of one hardware
thread through the full stack:

1. the coherence fabric obtains the line in the needed state (possibly
   evicting a victim locally and downgrading a remote owner);
2. the persistency mechanism's hooks run for each coherence side
   effect and for the operation itself, issuing NVM persists and
   returning stall cycles;
3. the architectural effect is recorded in the global trace.

The returned latency is what the scheduler adds to the thread's clock.
"""

from __future__ import annotations

from typing import Optional, Tuple, Type, Union

from repro.coherence.directory import CoherenceFabric
from repro.coherence.l1cache import MESIState
from repro.common.params import MachineConfig
from repro.common.stats import CoreStats
from repro.consistency.events import MemOrder, MemoryEvent, Trace
from repro.core.thread import Op, OpKind
from repro.memory.address import line_address
from repro.memory.nvm import NVMController
from repro.obs import Observer
from repro.persistency import PersistencyMechanism, mechanism_by_name

Word = Optional[int]

# Hot-path aliases (enum member access is a metaclass lookup).
_WORK = OpKind.WORK
_READ = OpKind.READ
_WRITE = OpKind.WRITE
_CAS = OpKind.CAS


class Machine:
    """One simulated multicore with a pluggable persistency mechanism."""

    def __init__(self, config: MachineConfig,
                 mechanism: Union[str, Type[PersistencyMechanism]] = "nop",
                 observer: Optional[Observer] = None,
                 ) -> None:
        self.config = config
        self.obs = observer
        self.fabric = CoherenceFabric(config, obs=observer)
        self.nvm = NVMController(config)
        self.trace = Trace(record=config.record_trace)
        self.stats = [CoreStats(core_id=i) for i in range(config.num_cores)]
        if isinstance(mechanism, str):
            mechanism = mechanism_by_name(mechanism)
        self.mechanism: PersistencyMechanism = mechanism(
            config, self.nvm, self.fabric, self.stats, obs=observer)
        self.boundary_event = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, core: int, op: Op, now: int) -> Tuple[object, int]:
        """Run ``op`` for hardware thread ``core`` at time ``now``.

        Returns ``(result, latency)`` where result is the load value,
        ``(success, old)`` for a CAS, the old value for an XCHG, or
        None for stores/work.
        """
        kind = op.kind
        if kind is _WORK:
            return None, op.cycles

        obs = self.obs
        if obs is not None and obs.provenance is not None:
            # Narrate the op's site: the scheduler executes one memory
            # op at a time machine-wide, so every store/persist/stall
            # the mechanism reports until the next op belongs to it
            # (downgrade stalls hit the requester — this core).
            obs.provenance.begin_op(op.site)
        stats = self.stats[core]
        line_addr = line_address(op.addr, self.config.line_bytes)
        exclusive = kind is not _READ
        access = self.fabric.access(core, line_addr, exclusive=exclusive,
                                    now=now)
        latency = access.latency
        if access.l1_hit:
            stats.l1_hits += 1
        else:
            stats.l1_misses += 1

        # Coherence side effects -> persistency hooks.
        if access.downgrade is not None:
            dg = access.downgrade
            self.stats[dg.owner].downgrades_received += 1
            if dg.was_modified and not dg.had_pending:
                # A data writeback of an already-persisted line: counts
                # toward the writeback total (Figure 6's denominator)
                # but can never be on the critical path.
                self.stats[dg.owner].writebacks_total += 1
            if obs is not None:
                obs.count("coh.downgrades")
                if dg.had_pending:
                    obs.count("coh.downgrades_dirty")
                obs.tick("coh.downgrades", now + latency)
                obs.instant(f"core{core}", f"downgrade c{dg.owner}",
                            now + latency, cat="coherence")
            latency += self.mechanism.on_downgrade(
                dg.owner, dg.line, dg.to_state, core, now + latency)
            if dg.line.has_pending:
                raise AssertionError(
                    f"{self.mechanism.name}: downgraded line "
                    f"{dg.line.addr:#x} still holds unpersisted words")
        if access.eviction is not None:
            ev = access.eviction
            stats.evictions += 1
            if ev.was_modified and not ev.had_pending:
                stats.writebacks_total += 1
            if obs is not None:
                obs.count("coh.evictions")
                if ev.had_pending:
                    obs.count("coh.evictions_dirty")
                obs.tick("coh.evictions", now + latency)
                obs.instant(f"core{core}", "evict", now + latency,
                            cat="coherence")
            latency += self.mechanism.on_evict(core, ev.line, now + latency)
            if ev.line.has_pending:
                raise AssertionError(
                    f"{self.mechanism.name}: evicted line "
                    f"{ev.line.addr:#x} still holds unpersisted words")
        stats.invalidations_received += access.invalidated_sharers
        if obs is not None and access.invalidated_sharers:
            obs.count("coh.invalidations", access.invalidated_sharers)

        # The operation itself.
        if kind is _READ:
            result, latency = self._do_read(core, op, now, latency)
        elif kind is _WRITE:
            result, latency = self._do_write(core, op, access.line, now,
                                             latency)
        else:
            result, latency = self._do_rmw(core, op, access.line, now,
                                           latency)
        return result, latency

    def _do_read(self, core: int, op: Op, now: int,
                 latency: int) -> Tuple[Word, int]:
        stats = self.stats[core]
        stats.reads += 1
        event = self.trace.record_read(core, op.addr, op.order)
        if event.is_acquire:
            stats.acquires += 1
            latency += self.mechanism.on_acquire(
                core, event, now + latency,
                sync_source=self._sync_source(event))
        return event.read_value, latency

    def _do_write(self, core: int, op: Op, line, now: int,
                  latency: int) -> Tuple[None, int]:
        stats = self.stats[core]
        stats.writes += 1
        event = self.trace.record_write(core, op.addr, op.value, op.order)
        if event.is_release:
            stats.releases += 1
            latency += self.mechanism.on_release(core, line, event,
                                                 now + latency)
        else:
            latency += self.mechanism.on_write(core, line, event,
                                               now + latency)
        return None, latency

    def _do_rmw(self, core: int, op: Op, line, now: int,
                latency: int) -> Tuple[object, int]:
        stats = self.stats[core]
        stats.rmws += 1
        if op.kind is _CAS:
            event = self.trace.record_rmw(core, op.addr, op.expected,
                                          op.value, op.order)
            result: object = (event.success, event.read_value)
        else:  # XCHG
            event = self.trace.record_unconditional_rmw(
                core, op.addr, op.value, op.order)
            result = event.read_value
        if event.is_acquire:
            stats.acquires += 1
            latency += self.mechanism.on_acquire(
                core, event, now + latency,
                sync_source=self._sync_source(event))
        if event.success:
            if event.is_release:
                stats.releases += 1
            latency += self.mechanism.on_rmw(core, line, event,
                                             now + latency)
        return result, latency

    def _sync_source(self, event: MemoryEvent) -> Optional[int]:
        """Core whose release this acquire reads from, if any."""
        if event.source_release and event.source_thread != event.thread_id:
            return event.source_thread
        return None

    # ------------------------------------------------------------------
    # Phase management
    # ------------------------------------------------------------------

    def install_initial_state(self, words) -> None:
        """Install pre-built durable state (the pre-populated LFD).

        Used instead of executing the setup phase op-by-op: the words
        become both architectural memory and the NVM baseline image, as
        if a quiesced checkpoint had been taken (Section 6.1: "the data
        structure size refers to the initial number of nodes ... before
        statistics are collected").
        """
        if len(self.trace):
            raise ValueError("install initial state before executing ops")
        self.trace.initialize(words)
        self.nvm.set_baseline_image(words)
        self.boundary_event = 0

    def checkpoint(self, now: int) -> None:
        """Drain all buffers and make the current state the baseline."""
        if self.obs is not None and self.obs.provenance is not None:
            self.obs.provenance.begin_op("(drain)")
        stall = self.mechanism.drain(now)
        if self.obs is not None:
            self.obs.span("run", "checkpoint-drain", now, stall,
                          cat="drain")
        self.nvm.set_baseline_image(self.trace.memory_snapshot(),
                                    self.trace.last_writer_snapshot())
        self.nvm.reset_log()  # measured phase starts a fresh log
        self.boundary_event = len(self.trace)

    def finish(self, now: int) -> int:
        """End of run: drain everything so all writes become durable."""
        if self.obs is not None and self.obs.provenance is not None:
            self.obs.provenance.begin_op("(drain)")
        stall = self.mechanism.drain(now)
        if self.obs is not None:
            self.obs.span("run", "final-drain", now, stall, cat="drain")
        return stall
