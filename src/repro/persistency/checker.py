"""Verification of Release Persistency over recorded executions.

Two checks, both grounded in the paper's Section 4:

* **Persist-order check** — RP demands ``W1 hb-> W2  =>  W1 p-> W2``.
  The NVM's persist log gives the durability order of line persists;
  each persisted word is tagged with the youngest store it carries, so
  a write's *effect* becomes durable either directly or by being
  coalesced under an hb-later write to the same word. A violation is a
  pair ``W1 hb-> W2`` such that crashing at some log prefix would show
  W2's effect without W1's.

* **Consistent-cut check** — for a concrete crash prefix, every write
  visible in the NVM image must have all of its hb-predecessors
  reflected (directly or via hb-later same-word overwrites). This is
  the checkable form of Izraelevitz & Scott's recovery criterion that
  LFD null recovery relies on.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.consistency.events import MemoryEvent, Trace
from repro.consistency.happens_before import HappensBefore
from repro.memory.nvm import NVMController

_NEVER = float("inf")


@dataclasses.dataclass(frozen=True)
class Violation:
    """An RP-violating pair: ``earlier hb-> later`` persisted backwards."""

    earlier: MemoryEvent
    later: MemoryEvent
    earlier_durable_at: float   # log index (inf = never durable)
    later_durable_at: float

    def __str__(self) -> str:
        return (
            f"W{self.earlier.event_id}(t{self.earlier.thread_id}, "
            f"addr={self.earlier.addr:#x}) hb-> "
            f"W{self.later.event_id}(t{self.later.thread_id}, "
            f"addr={self.later.addr:#x}) but durable at log indices "
            f"{self.earlier_durable_at} > {self.later_durable_at}")


class RPChecker:
    """Checks a finished run's persist log against the RP rules.

    ``boundary_event``: events with id below it belong to the setup
    phase whose state was checkpointed into the NVM baseline — they are
    treated as durable from the start.
    """

    def __init__(self, trace: Trace, nvm: NVMController,
                 boundary_event: int = 0,
                 hb: Optional[HappensBefore] = None) -> None:
        self._trace = trace
        self._nvm = nvm
        self._boundary = boundary_event
        # The persist order is constrained by the RP-rule closure
        # (Section 4.1) — see HappensBefore's "rp" mode.
        self._hb = hb or HappensBefore.from_trace(trace, mode="rp")
        self._log = nvm.persist_log()
        # word -> ordered list of (log index, store event id) persisted.
        self._word_history: Dict[int, List[Tuple[int, int]]] = {}
        for idx, record in enumerate(self._log):
            for word, event_id in record.word_events().items():
                self._word_history.setdefault(word, []).append(
                    (idx, event_id))

    @property
    def happens_before(self) -> HappensBefore:
        return self._hb

    def durable_index(self, write: MemoryEvent) -> float:
        """First log index at which ``write``'s effect is durable.

        The effect is durable when the write's own value persists, or
        when an hb-later write to the same word persists (the write was
        legitimately coalesced/overwritten within a consistent cut).
        """
        if write.event_id < self._boundary:
            return -1
        for idx, event_id in self._word_history.get(write.addr, ()):  # ordered
            if event_id == write.event_id:
                return idx
            if (event_id > write.event_id
                    and self._hb.ordered(write.event_id, event_id)):
                return idx
        return _NEVER

    def check_order(self) -> List[Violation]:
        """All RP violations in the persist log (empty = RP holds)."""
        violations: List[Violation] = []
        durable: Dict[int, float] = {}
        for earlier, later in self._hb.write_pairs():
            if later.event_id < self._boundary:
                continue
            for event in (earlier, later):
                if event.event_id not in durable:
                    durable[event.event_id] = self.durable_index(event)
            if durable[later.event_id] < durable[earlier.event_id]:
                violations.append(Violation(
                    earlier=earlier, later=later,
                    earlier_durable_at=durable[earlier.event_id],
                    later_durable_at=durable[later.event_id]))
        return violations

    def check_cut(self, prefix_len: int) -> List[Violation]:
        """Consistent-cut violations for a crash after ``prefix_len``
        acknowledged persists (empty = the image is a consistent cut)."""
        violations: List[Violation] = []
        events = self._trace.events
        visible = self._nvm.durable_events_after_prefix(prefix_len)
        visible_ids = {
            eid for eid in visible.values() if eid >= self._boundary
        }
        for later_id in visible_ids:
            later = events[later_id]
            for earlier_id in self._hb.predecessors(later_id):
                earlier = events[earlier_id]
                if not earlier.is_write_effect:
                    continue
                if earlier.event_id < self._boundary:
                    continue
                if not self._reflected(earlier, visible):
                    violations.append(Violation(
                        earlier=earlier, later=later,
                        earlier_durable_at=_NEVER,
                        later_durable_at=prefix_len))
        return violations

    def _reflected(self, write: MemoryEvent,
                   visible: Dict[int, int]) -> bool:
        """Is ``write``'s effect present in the durable word map?"""
        durable_event = visible.get(write.addr)
        if durable_event is None:
            return False
        if durable_event == write.event_id:
            return True
        if durable_event < self._boundary:
            return False
        return (durable_event > write.event_id
                and self._hb.ordered(write.event_id, durable_event))
