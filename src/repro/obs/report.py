"""Critical-path attribution: where did the makespan go?

The paper's argument (Sections 2 and 4) is about *which* writebacks sit
on the execution critical path. This report makes the claim inspectable
for a concrete run: every core's final clock decomposes exactly into

* **compute** — WORK-op cycles plus the fixed per-op compute charge
  (collected by the scheduler under ``sched.compute_cycles.c<i>``);
* **persist stall** — cycles the thread blocked on persist acks
  (``CoreStats.persist_stall_cycles``, with the per-reason split from
  ``stall_reasons``);
* **coherence** — everything else: L1/LLC/NoC latency including waits
  on directory-blocked lines (the remainder, by construction).

The *run's* critical path is the slowest core's decomposition — that
core's clock **is** the makespan. Machine-wide totals are reported too;
their persist-stall component reconciles exactly with
``RunStats.persist_stall_cycles`` (an obs-selftest invariant).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence

from repro.common.stats import RunStats


@dataclasses.dataclass(frozen=True)
class CoreAttribution:
    """One core's clock split into the three segment classes."""

    core: int
    total: int
    compute: int
    persist_stall: int

    @property
    def coherence(self) -> int:
        return self.total - self.compute - self.persist_stall


@dataclasses.dataclass
class RunAttribution:
    """Per-mechanism critical-path decomposition of one run."""

    mechanism: str
    workload: str
    makespan: int
    cores: List[CoreAttribution]
    stall_reasons: Dict[str, int]

    @property
    def persist_stall_total(self) -> int:
        """Machine-wide persist-stall cycles (== the RunStats total)."""
        return sum(core.persist_stall for core in self.cores)

    @property
    def critical_core(self) -> CoreAttribution:
        """The slowest core — its clock is the run's makespan."""
        return max(self.cores, key=lambda c: (c.total, -c.core))

    def top_stall_reasons(self, limit: int = 3) -> List[str]:
        items = sorted(self.stall_reasons.items(),
                       key=lambda kv: (-kv[1], kv[0]))[:limit]
        return [f"{reason}:{cycles}" for reason, cycles in items]


def attribute_run(stats: RunStats,
                  counters: Mapping[str, int]) -> RunAttribution:
    """Build the attribution from run stats plus the obs counters."""
    cores = []
    for core in stats.per_core:
        compute = int(counters.get(
            f"sched.compute_cycles.c{core.core_id}", 0))
        cores.append(CoreAttribution(
            core=core.core_id, total=core.cycles, compute=compute,
            persist_stall=core.persist_stall_cycles))
    return RunAttribution(
        mechanism=stats.mechanism, workload=stats.workload,
        makespan=stats.execution_cycles, cores=cores,
        stall_reasons=stats.stall_breakdown())


def attribute_summary(summary) -> RunAttribution:
    """Attribution for a :class:`~repro.exp.runner.RunSummary`.

    The summary must have been produced with obs collection enabled
    (``Job.collect_obs`` / ``--obs``) so it carries the counters.
    """
    obs = getattr(summary, "obs", None)
    if not obs:
        raise ValueError(
            f"run {summary.spec.structure}/{summary.mechanism} carries no "
            "obs data — re-run with obs collection enabled (--obs)")
    counters = obs["metrics"].get("counters", {})
    return attribute_run(summary.stats, counters)


def _pct(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole else "  n/a "


def render_attribution(attributions: Sequence[RunAttribution],
                       title: Optional[str] = None) -> str:
    """Fixed-width report over a set of runs (one row per run).

    Segment percentages are of the *critical core's* clock — the actual
    makespan decomposition; the trailing columns give the machine-wide
    persist-stall total and the dominant stall reasons.
    """
    title = title or "Critical-path attribution (makespan split)"
    headers = ["workload", "mech", "makespan", "compute", "coherence",
               "persist-stall", "stall cycles (all cores)", "top reasons"]
    rows: List[List[str]] = []
    for attribution in attributions:
        critical = attribution.critical_core
        rows.append([
            attribution.workload,
            attribution.mechanism,
            str(attribution.makespan),
            _pct(critical.compute, critical.total),
            _pct(critical.coherence, critical.total),
            _pct(critical.persist_stall, critical.total),
            str(attribution.persist_stall_total),
            " ".join(attribution.top_stall_reasons()) or "-",
        ])
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              if rows else len(headers[i]) for i in range(len(headers))]
    lines = [title, "-" * len(title),
             "  ".join(headers[i].ljust(widths[i])
                       for i in range(len(headers)))]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(row))))
    return "\n".join(lines)


def render_summaries(summaries: Sequence, title: Optional[str] = None,
                     ) -> str:
    """Attribution report straight from obs-carrying run summaries."""
    return render_attribution(
        [attribute_summary(s) for s in summaries], title)
