"""The in-worker fuzzing leg: coverage harvest + crash-point verdicts.

``repro.exp.runner.execute_job`` calls :func:`run_fuzz_leg` for any
job carrying a :class:`FuzzLegSpec`; everything here runs inside the
worker process, next to the freshly simulated run, and returns a
plain-dict payload small enough to ship back through the process pool
(``RunSummary.fuzz``).

Verdict oracles, in escalating strength:

1. the per-LFD **structural null-recovery validator**
   (``structure.validate_image``) over every sampled crash image —
   cheap, runs at every sampled prefix;
2. optionally, **recover-and-continue replay**
   (:func:`repro.core.replay.recover_and_continue`) on a budgeted
   number of structurally-valid images: the recovered structure must
   actually operate linearizably, catching anything the structural
   checks are too weak to see;
3. the run's **final-state oracle** (``verify_final_state``) — a
   linearizability check of the *perturbed schedule itself*,
   independent of crashes.

The engine later confirms shrunk counterexamples against the RP
consistent-cut checker (:mod:`repro.persistency.checker`), which needs
the retained event trace and therefore stays out of the hot worker.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.common.rng import make_rng
from repro.core.simulator import SimulationResult
from repro.fuzz.crashpoints import prefix_weights, sample_prefixes, \
    trigger_map
from repro.obs.coverage import coverage_from_obs


@dataclasses.dataclass(frozen=True)
class FuzzLegSpec:
    """Per-execution fuzzing parameters (picklable, cache-keyable)."""

    #: Crash prefixes sampled per execution (coverage-weighted).
    crash_samples: int = 16
    #: Campaign seed; combined with ``exec_index`` for the sample RNG.
    crash_seed: int = 0
    #: Position of this execution in the campaign (decorrelates RNGs).
    exec_index: int = 0
    #: Recover-and-continue replays on structurally-valid images
    #: (0 = off; each one re-runs a small workload, so budget it).
    continuation_checks: int = 0


def run_fuzz_leg(result: SimulationResult,
                 obs_export: Optional[Dict[str, object]],
                 spec: FuzzLegSpec) -> Dict[str, object]:
    """Harvest coverage and crash-test one finished (perturbed) run."""
    export = obs_export or {}
    coverage = coverage_from_obs(export)
    provenance = export.get("provenance")
    triggers = trigger_map(provenance) if isinstance(provenance, dict) \
        else {}

    log = result.nvm.persist_log()
    rng = make_rng(spec.crash_seed, "crashfuzz", spec.exec_index)
    weights = prefix_weights(log, triggers)
    sampled = sample_prefixes(weights, spec.crash_samples, rng)

    failures: List[Dict[str, object]] = []
    valid_prefixes: List[int] = []
    for prefix in sampled:
        image = result.nvm.image_after_prefix(prefix)
        report = result.structure.validate_image(image)
        if report.ok:
            valid_prefixes.append(prefix)
        else:
            failures.append({
                "kind": "structural",
                "prefix": prefix,
                "problems": [str(p) for p in report.problems[:3]],
            })

    # Linearizability of the perturbed schedule itself (crash-free).
    try:
        result.verify_final_state()
    except AssertionError as exc:
        failures.append({
            "kind": "linearizability",
            "prefix": len(log),
            "problems": [str(exc)],
        })

    continuations = 0
    if spec.continuation_checks:
        from repro.core.replay import RecoveryReplayError, \
            recover_and_continue

        # Deepest-first: later cuts exercise more recovered state.
        for prefix in reversed(valid_prefixes):
            if continuations >= spec.continuation_checks:
                break
            continuations += 1
            params = {
                "num_threads": 2,
                "ops_per_thread": 8,
                "mechanism": result.mechanism,
                "seed": spec.crash_seed * 1_000_003 + spec.exec_index,
            }
            try:
                recover_and_continue(result, prefix, **params)
            except RecoveryReplayError as exc:
                failures.append({
                    "kind": "continuation",
                    "prefix": prefix,
                    "problems": [str(exc)],
                    "continuation": params,
                })

    return {
        "coverage": coverage.to_list(),
        "executed_ops": result.executed_ops,
        "log_length": len(log),
        "sampled_prefixes": sampled,
        "failures": failures,
        "continuations": continuations,
    }
