"""Parallel experiment runner with content-addressed result caching.

``repro.exp`` decouples *what* the evaluation runs (the figure
definitions in :mod:`repro.bench.figures`) from *how* the simulations
execute: serially in-process, or fanned out across CPU cores, with or
without an on-disk result cache. See ``python -m repro.exp --selftest``
for the serial-vs-parallel equivalence and timing harness.
"""

from repro.exp.cache import ResultCache, code_version, stable_digest
from repro.exp.progress import NullProgress, ProgressReporter
from repro.exp.runner import (
    ExperimentRunner,
    Job,
    RunSummary,
    execute_job,
    get_default_runner,
    make_runner,
    set_default_runner,
    summarize,
)

__all__ = [
    "ExperimentRunner",
    "Job",
    "NullProgress",
    "ProgressReporter",
    "ResultCache",
    "RunSummary",
    "code_version",
    "execute_job",
    "get_default_runner",
    "make_runner",
    "set_default_runner",
    "stable_digest",
    "summarize",
]
