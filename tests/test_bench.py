"""Smoke tests for the benchmark harness (tiny configurations)."""

import pytest

from repro.bench.configs import (
    PAPER_CONFIG,
    SCALED_CONFIG,
    all_figure_specs,
    figure_spec,
    uncached,
)
from repro.bench.figures import (
    run_normalized_execution,
    run_recovery_matrix,
    run_ret_ablation,
    run_size_sensitivity,
)
from repro.bench.report import render_series, render_table
from repro.common.params import NVMMode


class TestConfigs:
    def test_paper_config_is_table1(self):
        assert PAPER_CONFIG.num_cores == 64
        assert PAPER_CONFIG.l1_size_bytes == 32 * 1024

    def test_scaled_config_documented_scaling(self):
        assert SCALED_CONFIG.l1_size_bytes == 8 * 1024
        assert SCALED_CONFIG.num_memory_controllers == 8

    def test_uncached_flips_mode_only(self):
        config = uncached(SCALED_CONFIG)
        assert config.nvm_mode is NVMMode.UNCACHED
        assert config.l1_size_bytes == SCALED_CONFIG.l1_size_bytes

    def test_figure_spec_lookup(self):
        spec = figure_spec("hashmap", num_threads=4, scale="quick")
        assert spec.structure == "hashmap"
        assert spec.num_threads == 4

    def test_figure_spec_rejects_unknown(self):
        with pytest.raises(ValueError):
            figure_spec("btree", scale="quick")
        with pytest.raises(ValueError):
            figure_spec("hashmap", scale="huge")

    def test_all_figure_specs_order(self):
        specs = all_figure_specs(num_threads=2)
        assert [s.structure for s in specs] == [
            "linkedlist", "hashmap", "bstree", "skiplist", "queue"]


class TestReport:
    def test_render_table(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text
        assert "x" in lines[-1]

    def test_render_table_empty_rows(self):
        text = render_table("T", ["col"], [])
        assert "col" in text

    def test_render_series(self):
        text = render_series("S", "threads", [1, 2],
                             {"BB": [1.0, 2.0], "LRP": [0.5, 0.25]})
        assert "threads" in text
        assert "LRP" in text


class TestSmokeRuns:
    def test_normalized_execution_tiny(self):
        result = run_normalized_execution(
            SCALED_CONFIG, "tiny", scale="quick", num_threads=2,
            workloads=["queue"])
        value = result.normalized("queue", "lrp")
        assert value > 0
        assert "tiny" in result.render()
        assert isinstance(result.mean_improvement("sb", "lrp"), float)

    def test_size_sensitivity_tiny(self):
        result = run_size_sensitivity("queue", sizes=(32, 64),
                                      num_threads=2, ops_per_thread=4)
        assert len(result.overheads["bb"]) == 2
        assert "queue" in result.render()

    def test_ret_ablation_tiny(self):
        result = run_ret_ablation("queue", ret_sizes=(4, 32),
                                  num_threads=2)
        assert len(result.normalized) == 2
        assert "RET" in result.render()

    def test_recovery_matrix_tiny(self):
        result = run_recovery_matrix(workloads=["hashmap"],
                                     mechanisms=("nop", "lrp"),
                                     num_threads=2, initial_size=32,
                                     ops_per_thread=6, seeds=(0,),
                                     crash_points=8)
        lrp_row = result.outcome("hashmap", "lrp")
        assert lrp_row["unrecoverable"] == 0
        assert "recovery" in result.render().lower()
        with pytest.raises(KeyError):
            result.outcome("hashmap", "xyz")
