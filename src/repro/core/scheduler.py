"""Deterministic smallest-clock-first scheduler.

Each hardware thread runs a generator coroutine that yields
:class:`~repro.core.thread.Op` objects. The scheduler always advances
the runnable thread with the lowest local clock — a conservative
time-ordered interleaving: memory operations perform atomically in
(simulated) timestamp order, which yields a sequentially consistent
execution whose timing reflects contention, persist stalls and cache
behaviour.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Generator, Iterable, List, Mapping, \
    Optional

from repro.core import fastsim
from repro.core.machine import Machine
from repro.core.thread import Op, OpKind
from repro.obs.spans import REQUEST_BOUNDARY as _BOUNDARY

_WORK = OpKind.WORK

WorkerGen = Generator[Op, object, None]
WorkerFactory = Callable[[int], WorkerGen]


class SimThread:
    """One hardware thread driving a workload coroutine."""

    __slots__ = ("thread_id", "gen", "clock", "done", "_pending_result",
                 "_started")

    def __init__(self, thread_id: int, gen: WorkerGen) -> None:
        self.thread_id = thread_id
        self.gen = gen
        self.clock = 0
        self.done = False
        self._pending_result: object = None
        self._started = False

    def next_op(self) -> Optional[Op]:
        """Advance the coroutine to its next yielded op (None = done)."""
        try:
            if not self._started:
                self._started = True
                return next(self.gen)
            return self.gen.send(self._pending_result)
        except StopIteration:
            self.done = True
            return None

    def deliver(self, result: object) -> None:
        self._pending_result = result


class Scheduler:
    """Runs worker coroutines on a machine until all complete."""

    def __init__(self, machine: Machine,
                 workers: Iterable[WorkerFactory]) -> None:
        self.machine = machine
        self.threads: List[SimThread] = [
            SimThread(tid, factory(tid))
            for tid, factory in enumerate(workers)
        ]
        if len(self.threads) > machine.config.num_cores:
            raise ValueError(
                f"{len(self.threads)} workers exceed "
                f"{machine.config.num_cores} cores")
        self.max_ops: Optional[int] = None   # safety valve for tests
        self._executed_ops = 0
        # Priority nudges (repro.fuzz): decision index -> runnable rank.
        # None keeps the optimized heap path below completely untouched.
        self._nudges: Optional[Dict[int, int]] = None
        # Why the batch engine declined the last run (None = it ran).
        # Recorded by run() and surfaced as the fastsim_fallback
        # diagnostic on SimulationResult / RunSummary.
        self.fastsim_refusal: Optional[fastsim.Refusal] = None

    @property
    def executed_ops(self) -> int:
        """Operations executed so far (= schedule decisions taken)."""
        return self._executed_ops

    def set_nudges(self, nudges: Optional[Mapping[int, int]]) -> None:
        """Install schedule-perturbation nudges (the fuzzing hook).

        ``nudges`` maps a *decision index* (the number of operations
        executed machine-wide when the scheduler next picks a thread)
        to a *rank*: instead of the runnable thread with the smallest
        ``(clock, thread_id)`` key (rank 0), the scheduler picks the
        rank-th smallest, modulo the number of runnable threads. Any
        non-None value routes :meth:`run` through the slower min-scan
        loop — which with an empty mapping executes the exact same
        interleaving as the default heap loop (pinned by tests) — so
        the benchmark hot path never pays for the hook.
        """
        self._nudges = dict(nudges) if nudges is not None else None

    def run(self) -> int:
        """Execute until every thread finishes; returns the makespan."""
        self.fastsim_refusal = fastsim.check(self)
        if self._nudges is not None:
            return self._run_nudged()
        if self.fastsim_refusal is None:
            # Bit-identical batched execution (see repro.core.fastsim);
            # REPRO_FASTSIM=0 forces the reference loop below.
            return fastsim.run(self)
        compute = self.machine.config.compute_cycles_per_op
        execute = self.machine.execute
        stats = self.machine.stats
        obs = self.machine.obs
        trace = self.machine.trace
        sp = self._span_lanes(obs)
        heappop, heappush = heapq.heappop, heapq.heappush
        heap = [(t.clock, t.thread_id) for t in self.threads]
        heapq.heapify(heap)
        while heap:
            _, tid = heappop(heap)
            thread = self.threads[tid]
            if thread.done:
                continue
            op = thread.next_op()
            if op is None:
                stats[tid].cycles = thread.clock
                continue
            if self.max_ops is not None and self._executed_ops >= self.max_ops:
                raise RuntimeError(
                    f"scheduler exceeded max_ops={self.max_ops} — "
                    "possible livelock in a workload")
            result, latency = execute(tid, op, thread.clock)
            thread.deliver(result)
            if obs is not None:
                # Exact compute attribution for the critical-path
                # report: WORK latency is pure compute; memory ops
                # contribute only the fixed per-op compute charge.
                if op.kind is _WORK:
                    obs.count(f"sched.compute_cycles.c{tid}",
                              latency + compute)
                    obs.tick(f"compute.c{tid}", thread.clock,
                             latency + compute)
                    if sp is not None and op.site is _BOUNDARY:
                        sp[0][tid].append(thread.clock)
                        sp[1][tid].append(trace._count)
                else:
                    obs.count(f"sched.compute_cycles.c{tid}", compute)
                    obs.count(f"sched.mem_cycles.c{tid}", latency)
                    obs.tick(f"compute.c{tid}", thread.clock, compute)
                    obs.tick(f"mem.c{tid}", thread.clock, latency)
                obs.span(f"core{tid}", op.kind.name, thread.clock,
                         latency + compute, cat="op")
            thread.clock += latency + compute
            self._executed_ops += 1
            heappush(heap, (thread.clock, tid))
        return self.makespan()

    def _span_lanes(self, obs):
        """The ``(boundary, event-mark)`` span lanes, or None when off.

        Request boundaries are recorded against the op's *pre-advance*
        clock — the request's completion cycle — plus the global
        memory-event count at that moment (the request's event
        frontier), matching the batch engine's recording exactly
        (tests/test_kvservice.py pins the reference-vs-fastsim span
        equality).
        """
        spans = getattr(obs, "spans", None) if obs is not None else None
        if spans is None:
            return None
        return spans.lanes(len(self.threads))

    def _run_nudged(self) -> int:
        """Min-scan execution loop honouring the installed nudges.

        Selection is by ``(clock, thread_id)`` rank among runnable
        threads — identical to the heap loop when a decision has no
        nudge (or rank 0), and a deterministic perturbation otherwise.
        Thread counts are tiny (<= num_cores), so the O(n) scan per
        decision is irrelevant next to the simulated memory system.
        """
        nudges = self._nudges or {}
        compute = self.machine.config.compute_cycles_per_op
        execute = self.machine.execute
        stats = self.machine.stats
        obs = self.machine.obs
        trace = self.machine.trace
        sp = self._span_lanes(obs)
        runnable = list(self.threads)
        while runnable:
            runnable.sort(key=lambda t: (t.clock, t.thread_id))
            rank = nudges.get(self._executed_ops, 0) % len(runnable)
            thread = runnable[rank]
            op = thread.next_op()
            if op is None:
                stats[thread.thread_id].cycles = thread.clock
                runnable.remove(thread)
                continue
            if self.max_ops is not None and self._executed_ops >= self.max_ops:
                raise RuntimeError(
                    f"scheduler exceeded max_ops={self.max_ops} — "
                    "possible livelock in a workload")
            tid = thread.thread_id
            result, latency = execute(tid, op, thread.clock)
            thread.deliver(result)
            if obs is not None:
                if op.kind is _WORK:
                    obs.count(f"sched.compute_cycles.c{tid}",
                              latency + compute)
                    obs.tick(f"compute.c{tid}", thread.clock,
                             latency + compute)
                    if sp is not None and op.site is _BOUNDARY:
                        sp[0][tid].append(thread.clock)
                        sp[1][tid].append(trace._count)
                else:
                    obs.count(f"sched.compute_cycles.c{tid}", compute)
                    obs.count(f"sched.mem_cycles.c{tid}", latency)
                    obs.tick(f"compute.c{tid}", thread.clock, compute)
                    obs.tick(f"mem.c{tid}", thread.clock, latency)
                obs.span(f"core{tid}", op.kind.name, thread.clock,
                         latency + compute, cat="op")
            thread.clock += latency + compute
            self._executed_ops += 1
        return self.makespan()

    def makespan(self) -> int:
        """The slowest thread's final clock (run wall-time in cycles)."""
        return max((t.clock for t in self.threads), default=0)
