"""Per-job worker heartbeats for live sweep monitoring.

Long paper-scale sweeps run inside worker processes with nothing on
the terminal except the runner's one-line counter — a wedged or slow
cell is indistinguishable from a busy one. When ``$REPRO_HEARTBEAT_DIR``
is set, every :func:`~repro.exp.runner.execute_job` invocation keeps a
small JSON heartbeat file in that directory up to date:

* ``state`` — ``setup`` / ``running`` / ``done`` / ``failed``;
* ``execs`` and ``quantum_clock`` — mid-run progress, fed by the batch
  engine's :data:`repro.core.fastsim.PROGRESS_HOOK`;
* ``telemetry`` — a small snapshot of live Observer counters (persist
  lines, stall cycles) when the job collects obs;
* ``started_at`` / ``updated_at`` — wall-clock timestamps the watcher
  uses for staleness detection.

Writes are atomic (temp file + ``os.replace``) so a reader never sees
a torn file, and wall-clock throttled so the hook costs nothing
measurable. Heartbeats are pure wall-clock side channel: they never
touch simulator state, and the simulation stays bit-identical with or
without them.

Consumers: ``python -m repro.exp --watch DIR`` renders the directory
live (stale heartbeats get a ``STALE`` marker and a warning rather
than a crash), and ``repro.bench.history --live DIR`` folds the same
view into the benchmark dashboard.
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Dict, List, Optional, Tuple

#: Environment variable naming the heartbeat directory. Deliberately
#: an env var rather than a Job field: Job feeds the content-addressed
#: result cache, and a monitoring knob must not change cache keys.
ENV_DIR = "REPRO_HEARTBEAT_DIR"

#: Seconds without an update after which a running job counts as stale.
DEFAULT_TTL = 15.0

#: States that mean the worker is finished with the job.
TERMINAL_STATES = frozenset({"done", "failed"})

#: Minimum seconds between non-terminal writes (throttle).
MIN_WRITE_GAP = 0.25


def slug(label: str) -> str:
    """A filesystem-safe file stem for a job label."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label) or "job"


class HeartbeatWriter:
    """Maintains one job's heartbeat file with atomic, throttled writes."""

    def __init__(self, directory: str, label: str) -> None:
        self.directory = directory
        self.label = label
        self.path = os.path.join(directory, slug(label) + ".json")
        self._started_at = time.time()
        self._last_write = 0.0

    def update(self, state: str, **fields: object) -> bool:
        """Write the heartbeat; returns False when throttled away.

        Terminal states always write (the final record must land,
        bypassing the throttle unconditionally) and get one retry on
        a transient write error — a finished job whose last heartbeat
        never lands renders as running/stale in ``--watch`` forever.
        Intermediate states are dropped when the last write is fresher
        than :data:`MIN_WRITE_GAP` and never retried.
        """
        now = time.time()
        terminal = state in TERMINAL_STATES
        if not terminal and now - self._last_write < MIN_WRITE_GAP:
            return False
        payload: Dict[str, object] = {
            "label": self.label,
            "state": state,
            "pid": os.getpid(),
            "started_at": self._started_at,
            "updated_at": now,
        }
        payload.update(fields)
        attempts = 2 if terminal else 1
        for attempt in range(attempts):
            if self._write(payload):
                self._last_write = now
                return True
            if attempt + 1 < attempts:
                time.sleep(0.01)
        return False

    def _write(self, payload: Dict[str, object]) -> bool:
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path)
        except OSError:
            # Monitoring must never take the job down with it.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True


def job_writer(label: str) -> Optional[HeartbeatWriter]:
    """A writer for this job, or None when heartbeats are disabled."""
    directory = os.environ.get(ENV_DIR)
    if not directory:
        return None
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError:
        return None
    return HeartbeatWriter(directory, label)


def read_heartbeats(directory: str) -> List[Dict[str, object]]:
    """All readable heartbeats in ``directory``, sorted by label.

    Corrupt or half-written files degrade to an ``unreadable`` entry
    instead of raising — a crashed worker must not take the watcher
    down with it. A missing directory reads as empty.
    """
    entries: List[Dict[str, object]] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return entries
    for name in names:
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            entries.append({"label": name[:-len(".json")],
                            "state": "unreadable"})
            continue
        if not isinstance(data, dict):
            entries.append({"label": name[:-len(".json")],
                            "state": "unreadable"})
            continue
        data.setdefault("label", name[:-len(".json")])
        entries.append(data)
    entries.sort(key=lambda e: str(e.get("label", "")))
    return entries


def is_stale(entry: Dict[str, object], now: float,
             ttl: float = DEFAULT_TTL) -> bool:
    """Whether a non-terminal heartbeat has gone silent past the TTL."""
    state = entry.get("state")
    if state in TERMINAL_STATES or state == "unreadable":
        return False
    updated = entry.get("updated_at")
    if not isinstance(updated, (int, float)):
        return True
    return now - updated > ttl


def render_watch(entries: List[Dict[str, object]], now: float,
                 ttl: float = DEFAULT_TTL,
                 directory: str = "") -> Tuple[List[str], int]:
    """Render heartbeat entries as display lines.

    Returns ``(lines, stale_count)``; stale running jobs get a STALE
    marker in place of live progress and one trailing warning line,
    never an exception.
    """
    where = f" in {directory}" if directory else ""
    lines = [f"[watch] {len(entries)} job(s){where} (TTL {ttl:.0f}s)"]
    if not entries:
        lines.append("  (no heartbeats yet)")
        return lines, 0
    width = max(len(str(e.get("label", ""))) for e in entries)
    stale_count = 0
    for entry in entries:
        label = str(entry.get("label", "?")).ljust(width)
        state = str(entry.get("state", "?"))
        updated = entry.get("updated_at")
        age = (f"{now - updated:.1f}s"
               if isinstance(updated, (int, float)) else "?")
        parts = [f"  {label}  {state:<8}"]
        if is_stale(entry, now, ttl):
            stale_count += 1
            parts.append(f"STALE (no heartbeat for {age})")
        else:
            execs = entry.get("execs")
            if execs is not None:
                parts.append(f"execs={execs}")
            quantum = entry.get("quantum_clock")
            if quantum is not None:
                parts.append(f"clock={quantum}")
            makespan = entry.get("makespan")
            if makespan is not None:
                parts.append(f"makespan={makespan}")
            telemetry = entry.get("telemetry")
            if isinstance(telemetry, dict):
                parts.extend(f"{key}={value}"
                             for key, value in sorted(telemetry.items()))
            error = entry.get("error")
            if error:
                parts.append(f"error={error}")
            parts.append(f"age={age}")
        lines.append(" ".join(parts))
    if stale_count:
        lines.append(f"warning: {stale_count} heartbeat(s) stale "
                     f"(>{ttl:.0f}s without an update) — the worker may "
                     "have died; results for those cells are in doubt")
    return lines, stale_count


def all_terminal(entries: List[Dict[str, object]]) -> bool:
    """True when every heartbeat reached done/failed (or is unreadable)."""
    return bool(entries) and all(
        entry.get("state") in TERMINAL_STATES
        or entry.get("state") == "unreadable"
        for entry in entries)
