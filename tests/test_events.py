"""Unit tests for the memory-event trace (repro.consistency.events)."""

import pytest

from repro.consistency.events import EventKind, MemOrder, Trace


class TestMemOrder:
    def test_acquire_flags(self):
        assert MemOrder.ACQUIRE.has_acquire
        assert MemOrder.ACQ_REL.has_acquire
        assert not MemOrder.RELEASE.has_acquire
        assert not MemOrder.PLAIN.has_acquire

    def test_release_flags(self):
        assert MemOrder.RELEASE.has_release
        assert MemOrder.ACQ_REL.has_release
        assert not MemOrder.ACQUIRE.has_release


class TestRecording:
    def test_read_of_uninitialized_is_none(self):
        trace = Trace()
        event = trace.record_read(0, 0x8)
        assert event.read_value is None
        assert event.reads_from is None

    def test_write_then_read(self):
        trace = Trace()
        write = trace.record_write(0, 0x8, 42)
        read = trace.record_read(1, 0x8)
        assert read.read_value == 42
        assert read.reads_from == write.event_id

    def test_event_ids_sequential(self):
        trace = Trace()
        ids = [trace.record_write(0, 0x8, i).event_id for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_cas_success(self):
        trace = Trace()
        trace.record_write(0, 0x8, 1)
        cas = trace.record_rmw(1, 0x8, expected=1, new_value=2)
        assert cas.success
        assert cas.read_value == 1
        assert trace.load(0x8) == 2

    def test_cas_failure_leaves_memory(self):
        trace = Trace()
        trace.record_write(0, 0x8, 1)
        cas = trace.record_rmw(1, 0x8, expected=9, new_value=2)
        assert not cas.success
        assert cas.value is None
        assert trace.load(0x8) == 1

    def test_failed_cas_is_not_a_write_effect(self):
        trace = Trace()
        trace.record_write(0, 0x8, 1)
        cas = trace.record_rmw(1, 0x8, expected=9, new_value=2,
                               order=MemOrder.ACQ_REL)
        assert not cas.is_write_effect
        assert not cas.is_release
        assert cas.is_acquire  # degenerates to an acquire read

    def test_unconditional_rmw(self):
        trace = Trace()
        trace.record_write(0, 0x8, 1)
        xchg = trace.record_unconditional_rmw(1, 0x8, 7)
        assert xchg.success
        assert xchg.read_value == 1
        assert trace.load(0x8) == 7

    def test_cas_on_initial_value(self):
        trace = Trace()
        trace.initialize({0x8: 5})
        cas = trace.record_rmw(0, 0x8, expected=5, new_value=6)
        assert cas.success
        assert cas.reads_from is None

    def test_initialize_after_events_rejected(self):
        trace = Trace()
        trace.record_write(0, 0x8, 1)
        with pytest.raises(ValueError):
            trace.initialize({0x10: 2})

    def test_initial_value_accessor(self):
        trace = Trace()
        trace.initialize({0x8: 5})
        assert trace.initial_value(0x8) == 5
        assert trace.initial_value(0x10) is None


class TestEventClassification:
    def test_release_write(self):
        trace = Trace()
        event = trace.record_write(0, 0x8, 1, MemOrder.RELEASE)
        assert event.is_release
        assert not event.is_acquire

    def test_acquire_read(self):
        trace = Trace()
        event = trace.record_read(0, 0x8, MemOrder.ACQUIRE)
        assert event.is_acquire
        assert not event.is_release

    def test_acq_rel_rmw_is_both(self):
        trace = Trace()
        trace.record_write(0, 0x8, 1)
        event = trace.record_rmw(0, 0x8, 1, 2, MemOrder.ACQ_REL)
        assert event.is_release
        assert event.is_acquire

    def test_plain_read_is_neither(self):
        trace = Trace()
        event = trace.record_read(0, 0x8)
        assert not event.is_acquire
        assert not event.is_release
        assert event.is_read_effect
        assert not event.is_write_effect


class TestSnapshots:
    def test_memory_snapshot_is_a_copy(self):
        trace = Trace()
        trace.record_write(0, 0x8, 1)
        snap = trace.memory_snapshot()
        snap[0x8] = 99
        assert trace.load(0x8) == 1

    def test_last_writer_snapshot(self):
        trace = Trace()
        w0 = trace.record_write(0, 0x8, 1)
        w1 = trace.record_write(0, 0x8, 2)
        assert trace.last_writer_snapshot() == {0x8: w1.event_id}
        assert w0.event_id != w1.event_id

    def test_writes_filter(self):
        trace = Trace()
        trace.record_write(0, 0x8, 1)
        trace.record_read(0, 0x8)
        trace.record_rmw(0, 0x8, 1, 2)       # success
        trace.record_rmw(0, 0x8, 1, 3)       # failure (value is 2)
        assert len(trace.writes()) == 2
