"""Thread-side operation vocabulary for workload code.

Workloads are written as Python *generator coroutines*: every memory
access is a ``yield`` of an :class:`Op`, and the scheduler sends back
the result (the loaded value, or a ``(success, old_value)`` pair for a
CAS). The yield points are exactly the places where the scheduler may
interleave another hardware thread — i.e. workloads run with memory-op
granularity concurrency, like the binary-instrumented workloads of the
paper's Pin-based setup.

Example::

    def increment(counter_addr):
        while True:
            old = yield load(counter_addr, MemOrder.ACQUIRE)
            ok, _ = yield cas(counter_addr, old, old + 1,
                              MemOrder.RELEASE)
            if ok:
                return old + 1
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.common.compat import DATACLASS_SLOTS
from repro.consistency.events import MemOrder

Word = Optional[int]


class OpKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    CAS = "cas"
    XCHG = "xchg"
    WORK = "work"       # pure compute: consumes cycles, touches nothing


@dataclasses.dataclass(frozen=True, **DATACLASS_SLOTS)
class Op:
    """One operation yielded by workload code to the scheduler.

    ``site`` is an optional provenance step label (e.g. ``link-cas``):
    workload code may name the algorithmic step an op implements, and
    the harness prefixes it with the structure and operation name to
    form the stable site id the :mod:`repro.obs.provenance` flamegraphs
    group by. Sites never influence execution — they are metadata read
    only by the (opt-in) provenance tracker.
    """

    kind: OpKind
    addr: int = 0
    value: Word = None
    expected: Word = None
    order: MemOrder = MemOrder.PLAIN
    cycles: int = 0
    site: Optional[str] = None


def load(addr: int, order: MemOrder = MemOrder.PLAIN,
         site: Optional[str] = None) -> Op:
    """A load; the yield returns the value read."""
    return Op(OpKind.READ, addr=addr, order=order, site=site)


def store(addr: int, value: Word,
          order: MemOrder = MemOrder.PLAIN,
          site: Optional[str] = None) -> Op:
    """A store; the yield returns None."""
    return Op(OpKind.WRITE, addr=addr, value=value, order=order,
              site=site)


def cas(addr: int, expected: Word, value: Word,
        order: MemOrder = MemOrder.RELEASE,
        site: Optional[str] = None) -> Op:
    """Compare-and-swap; the yield returns ``(success, old_value)``."""
    return Op(OpKind.CAS, addr=addr, value=value, expected=expected,
              order=order, site=site)


def xchg(addr: int, value: Word,
         order: MemOrder = MemOrder.ACQ_REL,
         site: Optional[str] = None) -> Op:
    """Atomic exchange; the yield returns the old value."""
    return Op(OpKind.XCHG, addr=addr, value=value, order=order,
              site=site)


def work(cycles: int, site: Optional[str] = None) -> Op:
    """Pure computation: advances the thread clock only."""
    return Op(OpKind.WORK, cycles=cycles, site=site)
