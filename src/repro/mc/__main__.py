"""``python -m repro.mc`` — exhaustive small-scope model checking.

Three modes:

* **check** (default): model-check one litmus program (or ``all``)
  under the paper's mechanisms. Exit code enforces the Figure-1
  contract — RP-enforcing mechanisms must be proven clean over every
  Mazurkiewicz trace, ARP/NOP must yield a confirmed violating crash
  state (written as a replayable repro file with ``--out``).
* ``--list``: show the canned litmus programs.
* ``--selftest``: the full construction, pinned — DPOR explores every
  trace class exactly once (class sets identical to brute-force
  enumeration, strictly fewer schedules than ``count_interleavings``),
  verdicts bit-identical to brute force for every suite program and
  mechanism, the Px86-derived axioms agree with ``rp_model`` on every
  explored trace, and the ARP/NOP witnesses round-trip through the
  fuzzer's repro-file replay. Writes the schedule-reduction snapshot
  to ``--bench-out`` (default BENCH_mc.json).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from repro.consistency.litmus import all_interleavings, \
    count_interleavings, run_interleaving
from repro.mc.checker import DEFAULT_MECHANISMS, ProgramCheck, \
    check_program
from repro.mc.dpor import explore_program, trace_key
from repro.mc.programs import PROGRAMS, SUITE, get_program


def _print_check(check: ProgramCheck, verbose: bool = True) -> None:
    stats = check.stats
    print(f"{check.program}: {stats.schedules_explored} traces / "
          f"{stats.interleavings} interleavings "
          f"(reduction {stats.reduction:.1f}x, method={check.method}, "
          f"hb={check.hb_mode})")
    for verdict in check.verdicts.values():
        print(f"  {verdict.summary()}")
        if verbose and verdict.problems:
            for line in verdict.problems[:1]:
                print(f"    {line}")
        if verdict.repro_path:
            print(f"    repro: {verdict.repro_path}")
    if check.px86_traces:
        print(f"  px86 cross-check: {check.px86_agreements}/"
              f"{check.px86_traces} traces agree; prefix cuts clean on "
              f"{check.prefix_cuts_clean}/{check.prefix_traces}")


def _check_main(args) -> int:
    names = list(PROGRAMS) if args.program == "all" else [args.program]
    mechanisms = DEFAULT_MECHANISMS if args.mechanism == "all" \
        else (args.mechanism,)
    ok = True
    for name in names:
        check = check_program(name, mechanisms=mechanisms,
                              method=args.method, hb_mode=args.hb_mode,
                              out_dir=args.out)
        _print_check(check, verbose=not args.quiet)
        ok = ok and check.contract_ok
    print(f"\ncontract {'HOLDS' if ok else 'VIOLATED'}")
    return 0 if ok else 1


def _program_bench(check: ProgramCheck) -> Dict[str, object]:
    program = get_program(check.program)
    stats = check.stats
    return {
        "num_threads": program.num_threads,
        "num_ops": program.num_ops,
        "interleavings": stats.interleavings,
        "schedules_explored": stats.schedules_explored,
        "states_visited": stats.states_visited,
        "sleep_blocked": stats.sleep_blocked,
        "backtrack_points": stats.backtrack_points,
        "reduction": round(stats.reduction, 2),
    }


def run_selftest(bench_out: str, out_dir: Optional[str],
                 verbose: bool) -> dict:
    """Pin the whole construction against brute force and Px86."""
    started = time.perf_counter()
    checks: List[tuple] = []
    programs_bench: Dict[str, Dict[str, object]] = {}
    witness_paths: List[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-mc-") as tmp:
        repro_dir = out_dir or tmp

        for name in SUITE:
            program = get_program(name)
            threads = program.program()
            init = program.initial_memory()

            # The enumerator agrees with the closed-form count before
            # any reduction is measured against it.
            brute_schedules = list(all_interleavings(threads))
            checks.append((
                f"{name}_count_matches_enumerator",
                len(brute_schedules) == count_interleavings(threads)))

            dpor = check_program(program, method="dpor",
                                 out_dir=repro_dir)
            brute = check_program(program, method="brute")
            programs_bench[name] = _program_bench(dpor)

            # DPOR covers every Mazurkiewicz class exactly once.
            def key_of(schedule):
                return trace_key(run_interleaving(threads, schedule,
                                                  init=dict(init)))
            dpor_schedules, _stats = explore_program(threads)
            dpor_keys = [key_of(s) for s in dpor_schedules]
            brute_keys = {key_of(s) for s in brute_schedules}
            checks.append((f"{name}_classes_identical",
                           set(dpor_keys) == brute_keys))
            checks.append((f"{name}_each_class_exactly_once",
                           len(dpor_keys) == len(set(dpor_keys))))
            checks.append((
                f"{name}_strictly_fewer_schedules",
                dpor.stats.schedules_explored
                < dpor.stats.interleavings))

            # Verdicts bit-identical to brute force; contract holds.
            checks.append((f"{name}_verdicts_match_brute_force",
                           dpor.clean_map() == brute.clean_map()))
            checks.append((f"{name}_contract", dpor.contract_ok))
            checks.append((
                f"{name}_px86_agrees_on_every_trace",
                dpor.px86_agreements == dpor.px86_traces
                and brute.px86_agreements == brute.px86_traces))
            checks.append((
                f"{name}_prefix_cuts_clean",
                dpor.prefix_cuts_clean == dpor.prefix_traces))

            for verdict in dpor.verdicts.values():
                if verdict.repro_path:
                    witness_paths.append(verdict.repro_path)

        # Witnesses must replay through the fuzzer's repro machinery.
        from repro.fuzz.reprofile import replay_repro
        replays = [replay_repro(path) for path in witness_paths]
        checks.append(("witnesses_replay_through_fuzz",
                       bool(replays) and all(r["ok"] for r in replays)))

        # The DPOR-only program: past brute-force scope, contract and
        # reduction still hold.
        chain = check_program("chain4", out_dir=repro_dir)
        programs_bench["chain4"] = _program_bench(chain)
        checks.append(("chain4_contract", chain.contract_ok))
        checks.append((
            "chain4_strictly_fewer_schedules",
            chain.stats.schedules_explored < chain.stats.interleavings))

    total_interleavings = sum(b["interleavings"]
                              for b in programs_bench.values())
    total_explored = sum(b["schedules_explored"]
                         for b in programs_bench.values())
    ok = all(passed for _name, passed in checks)
    report = {
        "programs": programs_bench,
        "totals": {
            "interleavings": total_interleavings,
            "schedules_explored": total_explored,
            "reduction": round(total_interleavings
                               / max(1, total_explored), 2),
            "seconds": round(time.perf_counter() - started, 3),
        },
        "checks": {name: passed for name, passed in checks},
        "ok": ok,
    }
    if bench_out:
        with open(bench_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def _list_main() -> int:
    for name, program in PROGRAMS.items():
        scope = "suite" if program.brute_force_ok else "dpor-only"
        print(f"{name:<16} {program.num_threads} threads, "
              f"{program.num_ops:>2} ops, "
              f"{program.interleavings:>6} interleavings [{scope}]")
        print(f"{'':16} {program.description}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mc",
        description="Exhaustive small-scope model checking of litmus "
                    "programs via dynamic partial-order reduction.")
    parser.add_argument("--selftest", action="store_true",
                        help="pin DPOR against brute force + Px86")
    parser.add_argument("--list", action="store_true",
                        help="list the canned litmus programs")
    parser.add_argument("--program", default="all",
                        help="litmus program name or 'all' "
                             "(default: %(default)s)")
    parser.add_argument("--mechanism", default="all",
                        help="mechanism name or 'all' "
                             "(default: %(default)s)")
    parser.add_argument("--method", choices=("dpor", "brute"),
                        default="dpor",
                        help="exploration method (default: %(default)s)")
    parser.add_argument("--hb-mode", choices=("rp", "rc"), default="rp",
                        help="happens-before closure judging the crash "
                             "states (default: %(default)s)")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="write violation repro files here")
    parser.add_argument("--bench-out", metavar="FILE",
                        default="BENCH_mc.json",
                        help="selftest reduction snapshot "
                             "(default: %(default)s)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-violation detail")
    args = parser.parse_args(argv)

    if args.list:
        return _list_main()
    if args.selftest:
        report = run_selftest(args.bench_out, args.out,
                              verbose=not args.quiet)
        if args.quiet:
            for name, passed in sorted(report["checks"].items()):
                if not passed:
                    print(f"FAILED: {name}")
        else:
            print(json.dumps(report, indent=2, sort_keys=True))
        print(f"\nselftest {'PASSED' if report['ok'] else 'FAILED'}: "
              f"wrote {args.bench_out}")
        return 0 if report["ok"] else 1
    try:
        return _check_main(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
