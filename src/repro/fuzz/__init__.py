"""``repro.fuzz`` — coverage-guided persistency fuzzing.

The paper's claim (Figure 1, Sections 3-4) is universally quantified:
RP-enforcing mechanisms (SB/BB/LRP) leave NVM in a consistent cut at
*every* crash point of *every* execution, while ARP and volatile
execution do not. The existing validation covers two corners — 24
uniformly sampled crash prefixes of the one smallest-clock-first
schedule per run, and exhaustive schedule enumeration for the tiny
Figure-1 litmus program. The bugs, as the model-checking literature on
persistency semantics keeps finding, live in rare interleaving x
crash-point combinations. This package explores that joint space
against the real LFD workloads:

* :mod:`repro.fuzz.mutation` — schedule perturbations: seeded priority
  nudges applied through the scheduler's fuzzing hook
  (:meth:`~repro.core.scheduler.Scheduler.set_nudges`), mutated
  add/drop/shift-style under a campaign RNG;
* :mod:`repro.obs.coverage` — the feedback signal: bucketed
  (coherence transition, persist trigger, site) features harvested
  from the provenance/metrics observer layers;
* :mod:`repro.fuzz.crashpoints` — coverage-weighted crash-prefix
  sampling, biased toward release/downgrade-adjacent persist-log
  indices (where the Figure-1 failure mode lives);
* :mod:`repro.fuzz.leg` — the in-worker verdict: per-LFD structural
  null-recovery validators, optional recover-and-continue replay, all
  fanned out through the :mod:`repro.exp` process-pool runner;
* :mod:`repro.fuzz.shrink` — counterexample minimization to a locally
  minimal (nudge set, crash prefix) pair, confirmed against the
  RP consistent-cut checker;
* :mod:`repro.fuzz.corpus` / :mod:`repro.fuzz.engine` — the on-disk
  corpus and the campaign driver behind ``python -m repro.fuzz``.

Everything is deterministic: a campaign is a pure function of
``(workload, mechanism, seed, budget)`` — corpus, coverage map and
counterexamples are bit-identical across runs and ``--jobs`` settings.
"""

from __future__ import annotations

from repro.fuzz.engine import CampaignConfig, CampaignResult, run_campaign
from repro.fuzz.leg import FuzzLegSpec
from repro.fuzz.mutation import ScheduleMutation, mutate
from repro.fuzz.reprofile import ReproFile, replay_repro

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "FuzzLegSpec",
    "ReproFile",
    "ScheduleMutation",
    "mutate",
    "replay_repro",
    "run_campaign",
]
