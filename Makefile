# Developer entry points. Everything runs from the repo root with the
# src/ layout on PYTHONPATH; no install step required.

PY       := PYTHONPATH=src python
PYTEST   := $(PY) -m pytest

.PHONY: test smoke selftest figures trace clean

# Full tier-1 suite (what CI gates on).
test:
	$(PYTEST) -x -q

# Fast feedback loop: skip the tests marked @pytest.mark.slow
# (recovery campaigns, hypothesis property sweeps, cross-mechanism
# interleaving checks).
smoke:
	$(PYTEST) -q -m "not slow"

# End-to-end self-tests: the parallel-runner equivalence suite and the
# observability stack (bit-identity, trace export, attribution).
selftest:
	$(PY) -m repro.exp --selftest --quiet
	$(PY) -m repro.obs --selftest

# Regenerate the paper's evaluation figures (quick scale).
figures:
	$(PY) -m repro.bench.figures --scale quick

# Example Chrome/Perfetto trace of a small LRP run.
trace:
	$(PY) -m repro.obs trace lrp-trace.json --mechanism lrp

clean:
	rm -rf .pytest_cache BENCH_runner.json lrp-trace.json
	find . -name __pycache__ -type d -exec rm -rf {} +
