"""Unit tests for the experiment progress reporter."""

import io
import os

from repro.exp.progress import NullProgress, ProgressReporter


def _lines(stream):
    """The \\r-separated progress frames written so far."""
    return stream.getvalue().split("\r")[1:]


class TestWidthClipping:
    def test_fallback_width_without_terminal(self):
        # StringIO has no usable fileno(): the reporter must fall back
        # to 80 columns and keep one column free.
        stream = io.StringIO()
        reporter = ProgressReporter(stream)
        reporter.start(5, "label")
        reporter.job_done("x" * 200, cached=False)
        for frame in _lines(stream):
            assert len(frame) == 79

    def test_clips_to_detected_terminal_width(self, monkeypatch):
        monkeypatch.setattr(
            os, "get_terminal_size",
            lambda fd=None: os.terminal_size((40, 24)))

        class FakeTty(io.StringIO):
            def fileno(self):
                return 2

        stream = FakeTty()
        reporter = ProgressReporter(stream)
        reporter.start(3)
        reporter.job_done("hashmap/lrp/t32-with-a-very-long-label",
                          cached=True)
        for frame in _lines(stream):
            assert len(frame) == 39

    def test_short_line_padded_to_clear_previous(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream)
        reporter.start(2)
        reporter.job_done("a-much-longer-label-than-the-next", cached=False)
        reporter.job_done("b", cached=False)
        frames = _lines(stream)
        # Equal-width frames: the shorter line fully overwrites leftovers.
        assert len(set(len(frame) for frame in frames)) == 1

    def test_degenerate_width_still_emits(self, monkeypatch):
        monkeypatch.setattr(
            os, "get_terminal_size",
            lambda fd=None: os.terminal_size((1, 24)))

        class FakeTty(io.StringIO):
            def fileno(self):
                return 2

        stream = FakeTty()
        reporter = ProgressReporter(stream)
        reporter.start(1)
        reporter.job_done("x", cached=False)
        for frame in _lines(stream):
            assert len(frame) == 1


class TestReporting:
    def test_counts_and_finish(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream)
        reporter.start(2, "fig5")
        reporter.job_done("a", cached=True)
        reporter.job_done("b", cached=False)
        reporter.finish()
        out = stream.getvalue()
        assert "[exp: fig5] 2/2" in out
        assert "(1 cached)" in out
        assert "done in" in out
        assert out.endswith("\n")

    def test_null_progress_is_silent_noop(self):
        progress = NullProgress()
        progress.start(10, "x")
        progress.job_done("y", cached=True)
        progress.finish()
