"""Unit tests for the shared LFD infrastructure."""

import pytest
from hypothesis import given, strategies as st

from repro.core.thread import OpKind
from repro.lfds.base import (
    KEY_MAX,
    KEY_MIN,
    NULL,
    ImageReader,
    LogFreeStructure,
    RecoveryReport,
    alloc_header_write,
    field,
    free_header_write,
    header_addr,
    is_marked,
    mark,
    unmark,
)
from repro.memory.address import HeapAllocator


class TestMarking:
    def test_mark_sets_low_bit(self):
        assert mark(0x1000) == 0x1001

    def test_unmark_clears(self):
        assert unmark(0x1001) == 0x1000
        assert unmark(0x1000) == 0x1000

    def test_is_marked(self):
        assert is_marked(0x1001)
        assert not is_marked(0x1000)
        assert not is_marked(None)
        assert not is_marked(NULL)

    @given(st.integers(0, 1 << 40).map(lambda x: x * 8))
    def test_roundtrip(self, addr):
        assert unmark(mark(addr)) == addr
        assert is_marked(mark(addr))


class TestFieldMath:
    def test_field_offsets(self):
        assert field(0x1000, 0) == 0x1000
        assert field(0x1000, 3) == 0x1018

    def test_header_addr(self):
        assert header_addr(0x1008) == 0x1000

    def test_header_ops(self):
        op = alloc_header_write(0x1008, 5)
        assert op.kind is OpKind.WRITE
        assert op.addr == 0x1000
        assert op.value == 5
        free_op = free_header_write(0x1008)
        assert free_op.addr == 0x1000
        assert free_op.value == 0

    def test_sentinel_keys_bracket_everything(self):
        assert KEY_MIN < -(1 << 40) < 0 < (1 << 40) < KEY_MAX


class TestRecoveryReport:
    def test_truthiness(self):
        assert RecoveryReport("x", True, [])
        assert not RecoveryReport("x", False, ["bad"])


class TestImageReader:
    def test_word_and_present(self):
        reader = ImageReader({0x8: 42})
        assert reader.word(0x8) == 42
        assert reader.word(0x10) is None
        assert reader.present(0x8)
        assert not reader.present(0x10)


class TestArenas:
    def test_use_arena_routes_allocations(self):
        structure = LogFreeStructure(HeapAllocator(line_bytes=64))
        structure.use_arena(3)
        arena_node = structure._alloc_node(2, tid=3)
        shared_node = structure._alloc_node(2, tid=None)
        assert abs(arena_node - shared_node) > 1 << 20

    def test_unregistered_tid_falls_back(self):
        structure = LogFreeStructure(HeapAllocator(line_bytes=64))
        a = structure._alloc_node(2, tid=9)   # no arena registered
        b = structure._alloc_node(2)
        assert abs(a - b) < 1024

    def test_header_word_precedes_node(self):
        structure = LogFreeStructure(HeapAllocator(line_bytes=64))
        node = structure._alloc_node(3)
        next_node = structure._alloc_node(3)
        # Layout [header][3 words]: nodes are 4 words apart.
        assert next_node - node == 4 * 8
