"""repro — a reproduction of "Lazy Release Persistency" (ASPLOS 2020).

The package provides:

* a behavioral multicore simulator (MESI directory coherence, 2D-mesh
  NoC, PCM-like NVM with cached/uncached modes);
* the persistency mechanisms compared in the paper: NOP (volatile),
  SB (strict full barrier), BB (buffered full barrier), LRP (the
  paper's lazy one-sided barrier), plus ARP (the too-weak predecessor);
* five log-free data structures (Harris linked list, Michael hashmap,
  lock-free BST, skip list, Michael-Scott queue) written against the
  simulated memory with C++11-style acquire/release annotations;
* formal Release Persistency checking (happens-before construction,
  persist-order and consistent-cut validation) and crash-recovery
  experiments;
* the benchmark harness regenerating every figure of the paper's
  evaluation.

Quickstart::

    from repro import WorkloadSpec, simulate, crash_test

    spec = WorkloadSpec(structure="hashmap", num_threads=8,
                        initial_size=512, ops_per_thread=32)
    result = simulate(spec, mechanism="lrp")
    print(result.stats.summary())
    print(crash_test(result).summary())
"""

from repro.common import DEFAULT_CONFIG, MachineConfig, NVMMode, RunStats
from repro.consistency import HappensBefore, MemOrder, Trace
from repro.core import (
    Machine,
    SimulationResult,
    crash_test,
    exhaustive_crash_test,
    simulate,
    simulate_all_mechanisms,
)
from repro.lfds import (
    STRUCTURES,
    WORKLOAD_NAMES,
    LogFreeStructure,
    structure_by_name,
)
from repro.persistency import (
    MECHANISMS,
    RPChecker,
    mechanism_by_name,
)
from repro.workloads.harness import WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "MachineConfig",
    "NVMMode",
    "RunStats",
    "HappensBefore",
    "MemOrder",
    "Trace",
    "Machine",
    "SimulationResult",
    "crash_test",
    "exhaustive_crash_test",
    "simulate",
    "simulate_all_mechanisms",
    "STRUCTURES",
    "WORKLOAD_NAMES",
    "LogFreeStructure",
    "structure_by_name",
    "MECHANISMS",
    "RPChecker",
    "mechanism_by_name",
    "WorkloadSpec",
    "__version__",
]
