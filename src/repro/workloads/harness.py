"""Workload harness: the paper's benchmark driver (Section 6.1).

"For each workload, we use a harness that creates 1-32 workers and
issues inserts and deletes at 1:1 ratio. ... The data structure size
refers to the initial number of nodes in the data structure before
statistics are collected."

A :class:`WorkloadSpec` captures one benchmark configuration; the
harness materializes the pre-populated structure, builds the worker
coroutines and records per-operation outcomes for the correctness
oracle.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.params import MachineConfig
from repro.common.rng import make_rng
from repro.common.stats import CoreStats
from repro.core.thread import Op, OpKind, work
from repro.lfds import LogFreeStructure, structure_by_name
from repro.memory.address import HeapAllocator

Word = Optional[int]

#: (op name, key, outcome) per completed data-structure operation.
Outcome = Tuple[str, int, object]


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark configuration."""

    structure: str = "linkedlist"
    num_threads: int = 32
    initial_size: int = 1024
    ops_per_thread: int = 48
    update_ratio: float = 1.0      # paper default: 100% updates, 1:1
    key_range: Optional[int] = None  # default: 2 * initial_size
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError("need at least one worker")
        if not 0.0 <= self.update_ratio <= 1.0:
            raise ValueError("update_ratio must be in [0, 1]")
        if self.initial_size < 0:
            raise ValueError("initial_size must be non-negative")

    @property
    def effective_key_range(self) -> int:
        """Keys are drawn uniformly from [0, range); default 2x size,
        which keeps the structure near its initial size in steady state
        under the 1:1 insert:delete mix."""
        if self.key_range is not None:
            return self.key_range
        return max(2 * self.initial_size, 2)


def make_structure(spec: WorkloadSpec,
                   config: MachineConfig) -> LogFreeStructure:
    """Instantiate the LFD for a spec (with size-appropriate tuning)."""
    allocator = HeapAllocator(line_bytes=config.line_bytes)
    cls = structure_by_name(spec.structure)
    if cls.name == "hashmap":
        buckets = max(4, spec.initial_size // 4)
        return cls(allocator, num_buckets=buckets)
    return cls(allocator)


def initial_keys(spec: WorkloadSpec) -> List[int]:
    """The pre-population key set (or queue values)."""
    rng = make_rng(spec.seed, "initial")
    key_range = spec.effective_key_range
    if spec.structure == "queue":
        # Queues are pre-filled with unique negative values so the
        # oracle can distinguish them from worker enqueues.
        return [-(i + 1) for i in range(spec.initial_size)]
    if spec.initial_size > key_range:
        raise ValueError("initial_size exceeds the key range")
    return sorted(rng.sample(range(key_range), spec.initial_size))


def build_initial_memory(spec: WorkloadSpec,
                         structure: LogFreeStructure) -> Dict[int, Word]:
    """The durable pre-populated structure, as a word map."""
    memory: Dict[int, Word] = {}
    structure.build_initial(initial_keys(spec), memory)
    return memory


def build_workers(spec: WorkloadSpec, structure: LogFreeStructure,
                  outcomes: List[List[Outcome]],
                  stats: List[CoreStats],
                  tag_sites: bool = False) -> List[Callable]:
    """Worker coroutine factories, one per hardware thread.

    With ``tag_sites`` every yielded op is re-tagged with a stable
    *site id* (``<structure>.<operation>.<step>``) for the provenance
    tracker; the default leaves ops untouched, so the hot path pays
    nothing when provenance is off.
    """

    def make_factory(worker_index: int) -> Callable:
        def factory(thread_id: int):
            return _worker(spec, structure, thread_id,
                           outcomes[worker_index], stats, tag_sites)
        return factory

    return [make_factory(i) for i in range(spec.num_threads)]


def step_label(op: Op) -> str:
    """Fallback step name for an op without an explicit site label."""
    if op.kind is OpKind.WORK:
        return "work"
    return f"{op.kind.value}.{op.order.value}"


def _tagged(gen, prefix: str):
    """Delegate to ``gen``, re-tagging every yielded op's site.

    Explicit step labels set by the LFD code (e.g. ``link-cas`` in the
    Harris engine) are kept and prefixed; unlabelled ops fall back to
    the ``<kind>.<order>`` step name — either way the resulting site id
    is ``<prefix>.<step>`` and has bounded cardinality regardless of
    run length, which is what makes flamegraphs and run diffs
    line-comparable across mechanisms.
    """
    try:
        op = next(gen)
        while True:
            step = op.site if op.site is not None else step_label(op)
            sent = yield Op(op.kind, op.addr, op.value, op.expected,
                            op.order, op.cycles, f"{prefix}.{step}")
            op = gen.send(sent)
    except StopIteration as stop:
        return stop.value


def _worker(spec: WorkloadSpec, structure: LogFreeStructure,
            thread_id: int, results: List[Outcome],
            stats: List[CoreStats], tag_sites: bool = False):
    """One worker: ops_per_thread operations, 1:1 insert/delete."""
    rng = make_rng(spec.seed, "worker", thread_id)
    key_range = spec.effective_key_range
    lfd = spec.structure
    structure.use_arena(thread_id)
    for op_index in range(spec.ops_per_thread):
        key = rng.randrange(key_range)
        roll = rng.random()
        if roll >= spec.update_ratio:
            gen = structure.contains(key)
            if tag_sites:
                gen = _tagged(gen, f"{lfd}.contains")
            found = yield from gen
            results.append(("contains", key, found))
        elif rng.random() < 0.5:
            value = thread_id * 1_000_000 + op_index + 1
            gen = structure.insert(key, value, tid=thread_id)
            if tag_sites:
                gen = _tagged(gen, f"{lfd}.insert")
            ok = yield from gen
            results.append(("insert", key if spec.structure != "queue"
                            else value, ok))
        else:
            if spec.structure == "queue":
                gen = structure.dequeue()
                if tag_sites:
                    gen = _tagged(gen, f"{lfd}.delete")
                value = yield from gen
                results.append(("delete", -1, value))
            else:
                gen = structure.delete(key)
                if tag_sites:
                    gen = _tagged(gen, f"{lfd}.delete")
                ok = yield from gen
                results.append(("delete", key, ok))
        stats[thread_id].ops_completed += 1
        # Inter-operation application work.
        yield work(1, site=f"{lfd}.interop.work" if tag_sites else None)


# ----------------------------------------------------------------------
# Correctness oracle
# ----------------------------------------------------------------------

def expected_final_keys(spec: WorkloadSpec,
                        outcomes: List[List[Outcome]]) -> Set[int]:
    """The key/value set the structure must hold after the run.

    Interleaving-independent: for set-like structures each key's final
    presence is the initial presence plus (successful inserts -
    successful deletes), which must always be 0 or 1. For the queue it
    is the initial+enqueued values minus the dequeued ones.
    """
    start = initial_keys(spec)
    if spec.structure == "queue":
        enqueued = set(start)
        dequeued = []
        for results in outcomes:
            for op, key, result in results:
                if op == "insert" and result:
                    enqueued.add(key)
                elif op == "delete" and result is not None:
                    dequeued.append(result)
        if len(dequeued) != len(set(dequeued)):
            raise AssertionError("a value was dequeued twice")
        extra = set(dequeued) - enqueued
        if extra:
            raise AssertionError(
                f"dequeued values never enqueued: {sorted(extra)[:5]}")
        return enqueued - set(dequeued)

    net: Dict[int, int] = {key: 1 for key in start}
    for results in outcomes:
        for op, key, result in results:
            if op == "insert" and result:
                net[key] = net.get(key, 0) + 1
            elif op == "delete" and result:
                net[key] = net.get(key, 0) - 1
    final = set()
    for key, count in net.items():
        if count not in (0, 1):
            raise AssertionError(
                f"key {key} has impossible net count {count} "
                "(non-linearizable outcome)")
        if count == 1:
            final.add(key)
    return final
