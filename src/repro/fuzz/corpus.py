"""The fuzzing corpus: coverage-earning schedule mutations.

An entry is a mutation that produced at least one new coverage feature
when it ran. Entries live in memory during a campaign and optionally
persist to an on-disk directory — one JSON file per entry, named by
``<exec_index>-<digest>`` so a directory listing reads as campaign
history, plus a ``coverage.json`` with the final global map. All file
contents are deterministic functions of (seed, budget): bit-identical
corpora across re-runs and ``--jobs`` settings (pinned by tests).
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
from typing import Dict, List, Optional

from repro.fuzz.mutation import ScheduleMutation
from repro.obs.coverage import CoverageMap


@dataclasses.dataclass
class CorpusEntry:
    """One coverage-earning mutation."""

    mutation: ScheduleMutation
    exec_index: int
    parent_digest: Optional[str]
    new_features: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "mutation": [list(nudge) for nudge in self.mutation.nudges],
            "digest": self.mutation.digest(),
            "exec_index": self.exec_index,
            "parent": self.parent_digest,
            "new_features": self.new_features,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CorpusEntry":
        mutation = ScheduleMutation.make(
            (int(d), int(r)) for d, r in data.get("mutation", []))
        return cls(mutation=mutation,
                   exec_index=int(data.get("exec_index", 0)),
                   parent_digest=data.get("parent"),
                   new_features=int(data.get("new_features", 0)))


class Corpus:
    """Ordered collection of coverage-earning mutations."""

    def __init__(self) -> None:
        self.entries: List[CorpusEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, entry: CorpusEntry) -> None:
        self.entries.append(entry)

    def select(self, rng: random.Random) -> CorpusEntry:
        """Pick a parent for the next mutation (uniform; the coverage
        gate already biases the corpus toward interesting schedules)."""
        if not self.entries:
            raise ValueError("corpus is empty")
        return self.entries[rng.randrange(len(self.entries))]

    def digests(self) -> List[str]:
        return [entry.mutation.digest() for entry in self.entries]

    # -- persistence ---------------------------------------------------

    def save(self, directory: str, coverage: CoverageMap) -> List[str]:
        """Write every entry plus the global coverage map; returns the
        written paths (relative file names, sorted write order)."""
        os.makedirs(directory, exist_ok=True)
        written = []
        for entry in self.entries:
            name = (f"{entry.exec_index:06d}-"
                    f"{entry.mutation.digest()}.json")
            path = os.path.join(directory, name)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(entry.to_dict(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            written.append(name)
        cov_path = os.path.join(directory, "coverage.json")
        with open(cov_path, "w", encoding="utf-8") as handle:
            json.dump({"features": coverage.to_list()}, handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        written.append("coverage.json")
        return written

    @classmethod
    def load(cls, directory: str) -> "Corpus":
        corpus = cls()
        if not os.path.isdir(directory):
            return corpus
        for name in sorted(os.listdir(directory)):
            if name == "coverage.json" or not name.endswith(".json"):
                continue
            with open(os.path.join(directory, name), "r",
                      encoding="utf-8") as handle:
                corpus.add(CorpusEntry.from_dict(json.load(handle)))
        corpus.entries.sort(key=lambda e: e.exec_index)
        return corpus


def load_coverage(directory: str) -> CoverageMap:
    """The saved global coverage map of a corpus directory."""
    path = os.path.join(directory, "coverage.json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError:
        return CoverageMap()
    return CoverageMap.from_list(data.get("features", []))
