"""Thread-side operation vocabulary for workload code.

Workloads are written as Python *generator coroutines*: every memory
access is a ``yield`` of an :class:`Op`, and the scheduler sends back
the result (the loaded value, or a ``(success, old_value)`` pair for a
CAS). The yield points are exactly the places where the scheduler may
interleave another hardware thread — i.e. workloads run with memory-op
granularity concurrency, like the binary-instrumented workloads of the
paper's Pin-based setup.

Example::

    def increment(counter_addr):
        while True:
            old = yield load(counter_addr, MemOrder.ACQUIRE)
            ok, _ = yield cas(counter_addr, old, old + 1,
                              MemOrder.RELEASE)
            if ok:
                return old + 1
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.consistency.events import MemOrder

Word = Optional[int]


class OpKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    CAS = "cas"
    XCHG = "xchg"
    WORK = "work"       # pure compute: consumes cycles, touches nothing


class Op:
    """One operation yielded by workload code to the scheduler.

    ``site`` is an optional provenance step label (e.g. ``link-cas``):
    workload code may name the algorithmic step an op implements, and
    the harness prefixes it with the structure and operation name to
    form the stable site id the :mod:`repro.obs.provenance` flamegraphs
    group by. Sites never influence execution — they are metadata read
    only by the (opt-in) provenance tracker.

    A plain __slots__ class, not a dataclass: workloads allocate one
    Op per memory access (millions per benchmark run), and a frozen
    dataclass pays ``object.__setattr__`` per field.
    """

    __slots__ = ("kind", "addr", "value", "expected", "order", "cycles",
                 "site")

    def __init__(self, kind: OpKind, addr: int = 0, value: Word = None,
                 expected: Word = None, order: MemOrder = MemOrder.PLAIN,
                 cycles: int = 0, site: Optional[str] = None) -> None:
        self.kind = kind
        self.addr = addr
        self.value = value
        self.expected = expected
        self.order = order
        self.cycles = cycles
        self.site = site

    def _key(self):
        return (self.kind, self.addr, self.value, self.expected,
                self.order, self.cycles, self.site)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Op:
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"Op(kind={self.kind!r}, addr={self.addr:#x}, "
                f"value={self.value!r}, expected={self.expected!r}, "
                f"order={self.order!r}, cycles={self.cycles}, "
                f"site={self.site!r})")


_READ = OpKind.READ
_WRITE = OpKind.WRITE
_CAS = OpKind.CAS
_XCHG = OpKind.XCHG
_WORK = OpKind.WORK
_PLAIN = MemOrder.PLAIN
_RELEASE = MemOrder.RELEASE
_ACQ_REL = MemOrder.ACQ_REL


# The helpers below build the Op via __new__ + direct slot stores:
# they are the workload side's per-memory-access allocation, and the
# extra __init__ frame is measurable at bench scale.
_new = object.__new__


def load(addr: int, order: MemOrder = _PLAIN,
         site: Optional[str] = None) -> Op:
    """A load; the yield returns the value read."""
    op = _new(Op)
    op.kind = _READ
    op.addr = addr
    op.value = None
    op.expected = None
    op.order = order
    op.cycles = 0
    op.site = site
    return op


def store(addr: int, value: Word,
          order: MemOrder = _PLAIN,
          site: Optional[str] = None) -> Op:
    """A store; the yield returns None."""
    op = _new(Op)
    op.kind = _WRITE
    op.addr = addr
    op.value = value
    op.expected = None
    op.order = order
    op.cycles = 0
    op.site = site
    return op


def cas(addr: int, expected: Word, value: Word,
        order: MemOrder = _RELEASE,
        site: Optional[str] = None) -> Op:
    """Compare-and-swap; the yield returns ``(success, old_value)``."""
    op = _new(Op)
    op.kind = _CAS
    op.addr = addr
    op.value = value
    op.expected = expected
    op.order = order
    op.cycles = 0
    op.site = site
    return op


def xchg(addr: int, value: Word,
         order: MemOrder = _ACQ_REL,
         site: Optional[str] = None) -> Op:
    """Atomic exchange; the yield returns the old value."""
    op = _new(Op)
    op.kind = _XCHG
    op.addr = addr
    op.value = value
    op.expected = None
    op.order = order
    op.cycles = 0
    op.site = site
    return op


def work(cycles: int, site: Optional[str] = None) -> Op:
    """Pure computation: advances the thread clock only."""
    op = _new(Op)
    op.kind = _WORK
    op.addr = 0
    op.value = None
    op.expected = None
    op.order = _PLAIN
    op.cycles = cycles
    op.site = site
    return op
