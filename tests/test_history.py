"""Tests for the benchmark history / regression dashboard.

The contract: snapshots flatten to classified scalar metrics, noisy
metrics only regress past the noise threshold, deterministic metrics
regress on any increase, boolean contracts regress on any flip to
false — and the CLI exits nonzero exactly when something regressed.
"""

import json

import pytest

from repro.bench.history import (
    NOISE_THRESHOLD,
    classify,
    compare_metric,
    compare_snapshot,
    flatten,
    main as history_main,
    render_dashboard,
)


class TestFlatten:
    def test_nested_dicts_become_dotted_metrics(self):
        flat = flatten({"a": {"b": 1, "c": {"d": 2.5}}, "e": True})
        assert flat == {"a.b": 1, "a.c.d": 2.5, "e": True}

    def test_lists_become_info_strings(self):
        flat = flatten({"workloads": ["a", "b"]})
        assert flat == {"workloads": "a,b"}

    def test_none_is_dropped(self):
        assert flatten({"a": None, "b": 1}) == {"b": 1}


class TestClassify:
    @pytest.mark.parametrize("name,value,kind", [
        ("serial_seconds", 4.0, "timing"),
        ("figures.fig5.seconds", 4.0, "timing"),
        ("cache.speedup_warm_over_cold", 100.0, "quality"),
        ("cache.hit_rate", 1.0, "quality"),
        ("identical_results", True, "contract"),
        ("fig5_makespan.hashmap.lrp", 123456, "exact"),
        ("suite.jobs", 20, "info"),
        ("cpu_count", 8, "info"),
        ("workloads", "a,b", "info"),
    ])
    def test_kinds(self, name, value, kind):
        assert classify(name, value) == kind

    @pytest.mark.parametrize("name,value,kind", [
        # BENCH_mc.json exploration counters: descriptive scale facts,
        # not regressions — a new litmus program changing the totals
        # must never gate CI.
        ("programs.mp3_chain.schedules_explored", 10, "info"),
        ("programs.mp3_chain.states_visited", 63, "info"),
        ("programs.chain4.interleavings", 277200, "info"),
        ("programs.chain4.backtrack_points", 77, "info"),
        ("programs.bcast4.sleep_blocked", 0, "info"),
        ("programs.bcast4.num_threads", 4, "info"),
        ("programs.bcast4.num_ops", 8, "info"),
        ("totals.reduction", 4756.2, "info"),
        # ... while the selftest wall time stays a gated timing metric.
        ("totals.seconds", 1.7, "timing"),
    ])
    def test_mc_exploration_counters_are_info(self, name, value, kind):
        assert classify(name, value) == kind

    @pytest.mark.parametrize("name,value,kind", [
        # BENCH_kv.json SLO metrics: latency percentiles and RTO gate
        # with a tolerance (lower is better), throughput as quality
        # (higher is better) — never as zero-tolerance exact values,
        # and never as wall-clock timings.
        ("kv.lrp.p50", 210, "latency"),
        ("kv.lrp.p99", 5200, "latency"),
        ("kv.lrp.p999", 9100, "latency"),
        ("kv.bb.rto.mean_cycles", 60000, "latency"),
        ("kv.bb.durable_latency.p99", 7000, "latency"),
        ("kv.lrp.throughput", 0.41, "quality"),
        # A wall-clock name always stays a timing, even when it also
        # mentions latency — no cross-gating between the two families.
        ("kv.latency_probe_seconds", 2.0, "timing"),
        ("kv.smoke_seconds", 2.0, "timing"),
    ])
    def test_kv_slo_metrics_gate_with_tolerance(self, name, value, kind):
        assert classify(name, value) == kind


class TestCompareMetric:
    def test_timing_within_noise_is_ok(self):
        delta = compare_metric("t_seconds", "timing", 10.0, 12.0, 0.5)
        assert delta.status == "ok"

    def test_timing_past_threshold_regresses(self):
        delta = compare_metric("t_seconds", "timing", 10.0, 16.0, 0.5)
        assert delta.status == "regressed"
        assert delta.change == pytest.approx(0.6)

    def test_timing_improvement(self):
        assert compare_metric("t_seconds", "timing", 10.0, 4.0,
                              0.5).status == "improved"

    def test_latency_lower_is_better_with_tolerance(self):
        # Within the noise threshold: drift, not a regression.
        assert compare_metric("kv.lrp.p99", "latency", 1000, 1200,
                              0.5).status == "ok"
        # Past it: a real SLO regression.
        assert compare_metric("kv.lrp.p99", "latency", 1000, 1600,
                              0.5).status == "regressed"
        # Large improvements register as such.
        assert compare_metric("kv.bb.rto.mean_cycles", "latency",
                              1000, 400, 0.5).status == "improved"

    def test_throughput_higher_is_better(self):
        assert compare_metric("kv.lrp.throughput", "quality", 1.0, 0.4,
                              0.5).status == "regressed"
        assert compare_metric("kv.lrp.throughput", "quality", 1.0, 1.6,
                              0.5).status == "improved"

    def test_quality_direction_is_inverted(self):
        assert compare_metric("speedup", "quality", 10.0, 4.0,
                              0.5).status == "regressed"
        assert compare_metric("speedup", "quality", 10.0, 16.0,
                              0.5).status == "improved"

    def test_exact_regresses_on_any_increase(self):
        assert compare_metric("makespan", "exact", 1000, 1001,
                              0.5).status == "regressed"
        assert compare_metric("makespan", "exact", 1000, 999,
                              0.5).status == "improved"
        assert compare_metric("makespan", "exact", 1000, 1000,
                              0.5).status == "ok"

    def test_contract_flip_to_false_regresses(self):
        assert compare_metric("ok", "contract", True, False,
                              0.5).status == "regressed"
        assert compare_metric("ok", "contract", False, True,
                              0.5).status == "improved"
        assert compare_metric("ok", "contract", True, True,
                              0.5).status == "ok"

    def test_new_and_removed(self):
        assert compare_metric("m", "timing", None, 1.0,
                              0.5).status == "new"
        assert compare_metric("m", "timing", 1.0, None,
                              0.5).status == "removed"

    def test_zero_baseline(self):
        assert compare_metric("m", "exact", 0, 0, 0.5).status == "ok"
        assert compare_metric("m", "exact", 0, 5,
                              0.5).status == "regressed"


class TestCompareSnapshot:
    def test_info_never_gates(self):
        comparison = compare_snapshot(
            "s.json", {"cpu_count": 1}, {"cpu_count": 64})
        assert not comparison.regressions

    def test_missing_baseline_reports_new(self):
        comparison = compare_snapshot("s.json", None,
                                      {"serial_seconds": 1.0})
        assert comparison.baseline_missing
        assert comparison.deltas[0].status == "new"
        assert not comparison.regressions


SNAPSHOT = {
    "serial_seconds": 4.0,
    "identical_results": True,
    "fig5_makespan": {"hashmap": {"lrp": 100000}},
    "cpu_count": 1,
}


def write_fixture(tmp_path, *, regress=False):
    """A snapshot + baseline pair, optionally with regressions."""
    baseline_dir = tmp_path / "baselines"
    baseline_dir.mkdir()
    snapshot_path = tmp_path / "BENCH_fixture.json"
    (baseline_dir / "BENCH_fixture.json").write_text(
        json.dumps(SNAPSHOT))
    current = dict(SNAPSHOT)
    if regress:
        current["serial_seconds"] = 40.0            # 10x slower
        current["identical_results"] = False        # broken contract
        current["fig5_makespan"] = {"hashmap": {"lrp": 100001}}
    snapshot_path.write_text(json.dumps(current))
    return snapshot_path, baseline_dir


class TestCLI:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        snapshot, baselines = write_fixture(tmp_path)
        rc = history_main(["--snapshots", str(snapshot),
                           "--baseline-dir", str(baselines)])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_synthetic_regression_exits_nonzero(self, tmp_path, capsys):
        snapshot, baselines = write_fixture(tmp_path, regress=True)
        out_path = tmp_path / "REPORT.md"
        rc = history_main(["--snapshots", str(snapshot),
                           "--baseline-dir", str(baselines),
                           "--output", str(out_path)])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().err
        report = out_path.read_text()
        assert "REGRESSIONS DETECTED" in report
        assert "`serial_seconds`" in report
        assert "`identical_results`" in report
        assert "`fig5_makespan.hashmap.lrp`" in report

    def test_update_baseline_then_clean(self, tmp_path):
        snapshot, baselines = write_fixture(tmp_path, regress=True)
        assert history_main(["--snapshots", str(snapshot),
                             "--baseline-dir", str(baselines),
                             "--update-baseline"]) == 0
        assert history_main(["--snapshots", str(snapshot),
                             "--baseline-dir", str(baselines)]) == 0

    def test_missing_snapshot_errors(self, tmp_path, capsys):
        rc = history_main(["--snapshots", str(tmp_path / "nope.json")])
        assert rc == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_repo_snapshot_round_trips(self, capsys):
        """The committed BENCH_runner.json compares clean against the
        committed baseline copy."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        snapshot = root / "BENCH_runner.json"
        if not snapshot.exists():  # e.g. after `make clean`
            pytest.skip("BENCH_runner.json not present")
        rc = history_main(["--snapshots", str(snapshot),
                           "--baseline-dir",
                           str(root / "benchmarks" / "baselines")])
        assert rc == 0


class TestDashboardRendering:
    def test_empty_dashboard(self):
        text = render_dashboard([])
        assert "No `BENCH_*.json` snapshots" in text

    def test_threshold_shown(self):
        comparison = compare_snapshot("s.json", SNAPSHOT, SNAPSHOT)
        text = render_dashboard([comparison],
                                threshold=NOISE_THRESHOLD)
        assert "±50%" in text
        assert "| `serial_seconds` | timing |" in text
