"""Chrome trace-event collection and export.

The collector records *spans* (complete events, phase ``X``) and
*instants* (phase ``i``) on named tracks and serializes them into the
Chrome trace-event JSON format, loadable in ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_. One simulated cycle maps to one
microsecond of trace time (the format's ``ts`` unit), so durations read
directly as cycles.

Tracks group by kind into separate "processes" so the viewers lay the
timeline out usefully:

* ``core<i>``   — one row per hardware thread (op spans);
* ``stall-c<i>``— persist-stall spans charged to thread ``i``;
* ``engine-c<i>``/``epochs-c<i>`` — persist-engine / epoch-drain spans;
* ``nvm-ch<j>`` — one row per memory controller (persist spans).

Events are exported sorted by ``(pid, tid, ts)``; within a track the
``ts`` stream is therefore monotone (a guarantee the obs tests pin).
"""

from __future__ import annotations

import json
import os
from typing import Dict, IO, Iterable, List, Optional, Tuple, Union

#: Track-name prefix -> (pid, process name). Unknown prefixes land in
#: the catch-all "sim" process.
_PROCESS_GROUPS = (
    ("core", 1, "cores"),
    ("stall-", 2, "persist stalls"),
    ("engine-", 3, "persist engines"),
    ("epochs-", 3, "persist engines"),
    ("nvm-", 4, "nvm channels"),
)
_DEFAULT_PID = 9
_DEFAULT_PROCESS = "sim"


class TraceCollector:
    """Accumulates trace events for one simulation run."""

    __slots__ = ("_events", "_tracks")

    def __init__(self) -> None:
        self._events: List[dict] = []
        # track name -> (pid, tid)
        self._tracks: Dict[str, Tuple[int, int]] = {}

    def __len__(self) -> int:
        return len(self._events)

    def _track(self, name: str) -> Tuple[int, int]:
        ids = self._tracks.get(name)
        if ids is None:
            pid = _DEFAULT_PID
            for prefix, group_pid, _label in _PROCESS_GROUPS:
                if name.startswith(prefix):
                    pid = group_pid
                    break
            ids = self._tracks[name] = (pid, len(self._tracks) + 1)
        return ids

    def span(self, track: str, name: str, ts: int, dur: int,
             cat: str = "sim", args: Optional[dict] = None) -> None:
        """A complete event: ``[ts, ts + dur]`` on ``track``."""
        pid, tid = self._track(track)
        event = {"name": name, "cat": cat, "ph": "X",
                 "ts": ts, "dur": dur, "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self._events.append(event)

    def instant(self, track: str, name: str, ts: int,
                cat: str = "sim", args: Optional[dict] = None) -> None:
        """A point-in-time marker on ``track``."""
        pid, tid = self._track(track)
        event = {"name": name, "cat": cat, "ph": "i", "ts": ts,
                 "pid": pid, "tid": tid, "s": "t"}
        if args:
            event["args"] = args
        self._events.append(event)

    # -- export --------------------------------------------------------

    def chrome_events(self) -> List[dict]:
        """All events in Chrome trace-event form, metadata first.

        Data events are sorted by ``(pid, tid, ts)``: per track the
        timestamps are monotone regardless of emission order (different
        subsystems emit at their own simulated times).
        """
        metadata: List[dict] = []
        seen_pids = set()
        for name, (pid, tid) in sorted(self._tracks.items(),
                                       key=lambda kv: kv[1]):
            if pid not in seen_pids:
                seen_pids.add(pid)
                label = _DEFAULT_PROCESS
                for prefix, group_pid, group_label in _PROCESS_GROUPS:
                    if group_pid == pid:
                        label = group_label
                        break
                metadata.append({"name": "process_name", "ph": "M",
                                 "pid": pid, "tid": 0,
                                 "args": {"name": label}})
            metadata.append({"name": "thread_name", "ph": "M",
                             "pid": pid, "tid": tid,
                             "args": {"name": name}})
        data = sorted(self._events,
                      key=lambda e: (e["pid"], e["tid"], e["ts"],
                                     e.get("dur", 0)))
        return metadata + data


def write_chrome_trace(events: List[dict],
                       destination: Union[str, IO[str]]) -> None:
    """Write events as a ``chrome://tracing``-loadable JSON document."""
    document = {"traceEvents": events, "displayTimeUnit": "ms",
                "metadata": {"tool": "repro.obs",
                             "time_unit": "1 ts = 1 simulated cycle"}}
    if hasattr(destination, "write"):
        json.dump(document, destination)  # type: ignore[arg-type]
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.write("\n")


def dump_summary_traces(summaries: Iterable, out_dir: str) -> List[str]:
    """Write one trace file per trace-carrying run summary.

    Summaries without trace events (obs disabled, or collected without
    ``collect_trace``) are skipped. Returns the paths written, named
    ``<structure>-<mechanism>-t<threads>-<nvm_mode>.json`` (the mode
    keeps cached/uncached sweeps of the same runs from colliding).
    """
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    for summary in summaries:
        obs = getattr(summary, "obs", None)
        if not obs or "trace_events" not in obs:
            continue
        mode = getattr(summary.config.nvm_mode, "value",
                       summary.config.nvm_mode)
        path = os.path.join(
            out_dir,
            f"{summary.spec.structure}-{summary.mechanism}"
            f"-t{summary.spec.num_threads}-{mode}.json")
        write_chrome_trace(obs["trace_events"], path)
        written.append(path)
    return written
