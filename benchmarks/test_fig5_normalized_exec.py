"""Figure 5: execution time normalized to NOP (cached mode, 32 threads).

Paper's claims, asserted as *shape* (our substrate is a behavioral
simulator, so the bands are wider than the paper's exact percentages):

* BB outperforms SB (paper: 24-68%, average 52%);
* LRP outperforms or matches BB on average (paper: 14-44%, avg 33%);
* LRP stays close to volatile execution (paper: 2-8%).
"""

import pytest
from conftest import run_once

from repro.bench.figures import run_figure5


@pytest.fixture(scope="module")
def fig5():
    return run_figure5(scale="quick")


def test_figure5_runs(benchmark):
    result = run_once(benchmark, run_figure5, scale="quick")
    print("\n" + result.render())
    for workload in result.workloads:
        for mech in result.mechanisms:
            benchmark.extra_info[f"{workload}/{mech}"] = round(
                result.normalized(workload, mech), 3)


class TestFigure5Shape:
    def test_sb_is_never_best(self, fig5):
        for workload in fig5.workloads:
            sb = fig5.normalized(workload, "sb")
            assert sb >= fig5.normalized(workload, "bb") - 0.05
            assert sb >= fig5.normalized(workload, "lrp") - 0.05

    def test_bb_beats_sb_on_average(self, fig5):
        assert fig5.mean_improvement("sb", "bb") > 0.05

    def test_lrp_beats_bb_on_average(self, fig5):
        assert fig5.mean_improvement("bb", "lrp") > 0.0

    def test_lrp_close_to_nop_on_index_structures(self, fig5):
        """Paper: LRP is within 2-8% of volatile execution. Our queue
        deviates (documented in EXPERIMENTS.md); the other four LFDs
        must stay within ~10%."""
        for workload in ("linkedlist", "hashmap", "bstree", "skiplist"):
            assert fig5.normalized(workload, "lrp") < 1.12, workload

    def test_write_intensive_gap_larger_than_read_intensive(self, fig5):
        """Section 6.4: the LRP-over-BB gap is smaller for the
        read-heavy linked list than for the write-intensive hashmap."""
        list_gain = fig5.improvement("linkedlist", "bb", "lrp")
        hash_gain = fig5.improvement("hashmap", "bb", "lrp")
        assert hash_gain > list_gain
