"""Private L1 data cache with MESI state and LRP per-line metadata.

Each line carries, beyond its coherence state:

* ``pending_words`` — dirty word values not yet persisted to NVM, each
  tagged with the youngest store event that produced it (coalescing);
* ``min_epoch`` — the epoch of the *earliest* unpersisted write to the
  line (Section 5.2.1, Figure 3b);
* ``release_bit`` — whether the line holds a value written by a release.

The same two metadata fields serve the BB mechanism (per-line epoch-id
of cache-based buffered epoch persistency, Section 2.2.1) — this is
faithful to the paper, which frames LRP's metadata as an extension of
the cache-based BEP approach.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.common.compat import DATACLASS_SLOTS
from repro.common.params import MachineConfig

if TYPE_CHECKING:
    from repro.obs import Observer

Word = Optional[int]


class MESIState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


# Hot-path aliases: member access on the Enum class goes through
# EnumType.__getattr__; the simulator resolves states millions of times
# per run, so the inner loops bind these once.
MODIFIED = MESIState.MODIFIED
EXCLUSIVE = MESIState.EXCLUSIVE
SHARED = MESIState.SHARED
INVALID = MESIState.INVALID


@dataclasses.dataclass(**DATACLASS_SLOTS)
class CacheLine:
    """One L1 cache line (tag + coherence + persistency metadata)."""

    addr: int                      # line-aligned base address
    state: MESIState = INVALID
    # Persistency metadata -------------------------------------------------
    pending_words: Dict[int, Tuple[Word, int]] = dataclasses.field(
        default_factory=dict)      # word addr -> (value, store event id)
    min_epoch: Optional[int] = None
    release_bit: bool = False
    # Replacement ----------------------------------------------------------
    lru_tick: int = 0

    @property
    def has_pending(self) -> bool:
        """True if the line holds not-yet-persisted writes."""
        return bool(self.pending_words)

    @property
    def is_released(self) -> bool:
        """Line is dirty and its newest synchronizing write is a release."""
        return bool(self.pending_words) and self.release_bit

    @property
    def is_only_written(self) -> bool:
        """Line is dirty with regular writes only (paper terminology)."""
        return bool(self.pending_words) and not self.release_bit

    def record_write(self, word_addr: int, value: Word, event_id: int,
                     epoch: int) -> None:
        """Merge a store into the line's pending (unpersisted) words."""
        if not self.pending_words:
            self.min_epoch = epoch
        self.pending_words[word_addr] = (value, event_id)

    def take_persist_payload(self) -> Dict[int, Tuple[Word, int]]:
        """Snapshot-and-clear the pending words (line persists now)."""
        payload = self.pending_words
        self.pending_words = {}
        self.min_epoch = None
        self.release_bit = False
        return payload


class L1Cache:
    """Set-associative, LRU, write-back private L1."""

    def __init__(self, core_id: int, config: MachineConfig,
                 obs: Optional["Observer"] = None) -> None:
        self.core_id = core_id
        self.obs = obs
        self._config = config
        self._num_sets = config.l1_num_sets
        self._assoc = config.l1_assoc
        self._sets: List[Dict[int, CacheLine]] = [
            {} for _ in range(self._num_sets)
        ]
        self._tick = 0
        # line_bytes is a power of two (validated by MachineConfig);
        # when the set count is too, the set index is shift-and-mask.
        self._line_shift = config.line_offset_bits
        num_sets = self._num_sets
        self._set_mask = (num_sets - 1
                          if num_sets & (num_sets - 1) == 0 else None)

    def _set_index(self, line_addr: int) -> int:
        if self._set_mask is not None:
            return (line_addr >> self._line_shift) & self._set_mask
        return (line_addr >> self._line_shift) % self._num_sets

    def _touch(self, line: CacheLine) -> None:
        self._tick += 1
        line.lru_tick = self._tick

    # ------------------------------------------------------------------
    # Lookup / fill / evict
    # ------------------------------------------------------------------

    def lookup(self, line_addr: int, *, touch: bool = True
               ) -> Optional[CacheLine]:
        """Return the resident line, or None on a miss."""
        line = self._sets[self._set_index(line_addr)].get(line_addr)
        if line is not None and touch:
            self._tick += 1
            line.lru_tick = self._tick
        return line

    def select_victim(self, line_addr: int) -> Optional[CacheLine]:
        """The LRU line that a fill of ``line_addr`` would displace."""
        cache_set = self._sets[self._set_index(line_addr)]
        if len(cache_set) < self._assoc:
            return None
        return min(cache_set.values(), key=lambda l: l.lru_tick)

    def fill(self, line_addr: int, state: MESIState) -> CacheLine:
        """Install a line (caller must have evicted the victim first)."""
        cache_set = self._sets[self._set_index(line_addr)]
        if line_addr in cache_set:
            raise ValueError(f"line {line_addr:#x} already resident")
        if len(cache_set) >= self._assoc:
            raise ValueError("set full: evict the victim before filling")
        line = CacheLine(addr=line_addr, state=state)
        cache_set[line_addr] = line
        self._touch(line)
        if self.obs is not None:
            self.obs.count("l1.fills")
            self.obs.observe("l1.set_occupancy", len(cache_set))
        return line

    def remove(self, line_addr: int) -> CacheLine:
        """Take a line out of the cache (eviction or invalidation)."""
        cache_set = self._sets[self._set_index(line_addr)]
        line = cache_set.pop(line_addr, None)
        if line is None:
            raise KeyError(f"line {line_addr:#x} not resident")
        return line

    # ------------------------------------------------------------------
    # Scans (persist engine, drain)
    # ------------------------------------------------------------------

    def iter_lines(self) -> Iterator[CacheLine]:
        """All resident lines (the persist engine's L1 scan)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def pending_lines(self) -> List[CacheLine]:
        """All lines holding unpersisted writes."""
        return [line for line in self.iter_lines() if line.has_pending]

    def resident_count(self) -> int:
        return sum(len(s) for s in self._sets)
