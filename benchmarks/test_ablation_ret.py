"""Ablation: Release Epoch Table sizing (Section 5.2.1 design choice).

The paper provisions a 32-entry RET per L1 and claims it "adequately
over-provisions for the needs of most programs". The ablation sweeps
the RET size: tiny RETs force frequent watermark drains (early release
persists — still off the critical path), so performance stays flat
while the drain count falls steeply toward the paper's 32 entries.
"""

from conftest import run_once

from repro.bench.figures import run_ret_ablation


def test_ret_ablation(benchmark):
    result = run_once(benchmark, run_ret_ablation, "hashmap")
    print("\n" + result.render())
    benchmark.extra_info["ret_sizes"] = result.ret_sizes
    benchmark.extra_info["normalized"] = [round(v, 3)
                                          for v in result.normalized]
    benchmark.extra_info["drains"] = result.watermark_drains

    # Watermark drains decrease monotonically with RET size.
    drains = result.watermark_drains
    assert all(drains[i] >= drains[i + 1] for i in range(len(drains) - 1))
    # The paper's 32-entry RET needs (almost) no watermark drains.
    paper_index = result.ret_sizes.index(32)
    assert drains[paper_index] <= drains[0] // 4 + 1
    # Performance is insensitive (drains are off the critical path).
    assert max(result.normalized) - min(result.normalized) < 0.10
