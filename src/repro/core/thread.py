"""Thread-side operation vocabulary for workload code.

Workloads are written as Python *generator coroutines*: every memory
access is a ``yield`` of an :class:`Op`, and the scheduler sends back
the result (the loaded value, or a ``(success, old_value)`` pair for a
CAS). The yield points are exactly the places where the scheduler may
interleave another hardware thread — i.e. workloads run with memory-op
granularity concurrency, like the binary-instrumented workloads of the
paper's Pin-based setup.

Example::

    def increment(counter_addr):
        while True:
            old = yield load(counter_addr, MemOrder.ACQUIRE)
            ok, _ = yield cas(counter_addr, old, old + 1,
                              MemOrder.RELEASE)
            if ok:
                return old + 1
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.common.compat import DATACLASS_SLOTS
from repro.consistency.events import MemOrder

Word = Optional[int]


class OpKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    CAS = "cas"
    XCHG = "xchg"
    WORK = "work"       # pure compute: consumes cycles, touches nothing


@dataclasses.dataclass(frozen=True, **DATACLASS_SLOTS)
class Op:
    """One operation yielded by workload code to the scheduler."""

    kind: OpKind
    addr: int = 0
    value: Word = None
    expected: Word = None
    order: MemOrder = MemOrder.PLAIN
    cycles: int = 0


def load(addr: int, order: MemOrder = MemOrder.PLAIN) -> Op:
    """A load; the yield returns the value read."""
    return Op(OpKind.READ, addr=addr, order=order)


def store(addr: int, value: Word,
          order: MemOrder = MemOrder.PLAIN) -> Op:
    """A store; the yield returns None."""
    return Op(OpKind.WRITE, addr=addr, value=value, order=order)


def cas(addr: int, expected: Word, value: Word,
        order: MemOrder = MemOrder.RELEASE) -> Op:
    """Compare-and-swap; the yield returns ``(success, old_value)``."""
    return Op(OpKind.CAS, addr=addr, value=value, expected=expected,
              order=order)


def xchg(addr: int, value: Word,
         order: MemOrder = MemOrder.ACQ_REL) -> Op:
    """Atomic exchange; the yield returns the old value."""
    return Op(OpKind.XCHG, addr=addr, value=value, order=order)


def work(cycles: int) -> Op:
    """Pure computation: advances the thread clock only."""
    return Op(OpKind.WORK, cycles=cycles)
