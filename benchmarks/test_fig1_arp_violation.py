"""Figure 1 / Section 3: ARP cannot recover an LFD insert; RP can.

Reproduces the paper's motivating example as an experiment: the
linked-list insert of Figure 1 runs under each mechanism, and the
model-level predicates judge which persist orders each persistency
model admits.
"""

from conftest import run_once

from repro.consistency.litmus import (
    figure1_initial_memory,
    figure1_insert,
    figure1_sequential_schedule,
    run_interleaving,
)
from repro.persistency.rp_model import arp_allows, rp_allows


def _figure1_verdicts():
    trace = run_interleaving(figure1_insert(),
                             figure1_sequential_schedule(),
                             init=figure1_initial_memory())
    link_cas = next(e for e in trace.events
                    if e.is_release and e.thread_id == 0)
    link_only = [link_cas.event_id]        # crash: link but no fields
    program_order = [e.event_id for e in trace.writes()]
    return {
        "arp_allows_link_before_fields": arp_allows(trace, link_only),
        "rp_allows_link_before_fields": rp_allows(trace, link_only),
        "arp_allows_program_order": arp_allows(trace, program_order),
        "rp_allows_program_order": rp_allows(trace, program_order),
    }


def test_figure1_arp_weakness(benchmark):
    verdicts = run_once(benchmark, _figure1_verdicts)
    print("\nFigure 1 verdicts:", verdicts)
    # The paper's argument, verbatim:
    assert verdicts["arp_allows_link_before_fields"] is True
    assert verdicts["rp_allows_link_before_fields"] is False
    assert verdicts["arp_allows_program_order"] is True
    assert verdicts["rp_allows_program_order"] is True
    benchmark.extra_info.update(verdicts)
