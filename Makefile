# Developer entry points. Everything runs from the repo root with the
# src/ layout on PYTHONPATH; no install step required.
#
#   make test          - full tier-1 suite
#   make smoke         - fast suite (skips @slow)
#   make selftest      - runner + obs end-to-end self-tests
#   make figures       - regenerate the paper figures (quick scale)
#   make trace         - example Chrome/Perfetto trace
#   make bench-report  - benchmark dashboard vs stored baselines
#                        (exits nonzero on regression)
#   make clean         - remove caches and generated artifacts

PY       := PYTHONPATH=src python
PYTEST   := $(PY) -m pytest

.PHONY: test smoke selftest figures trace bench-report clean

# Full tier-1 suite (what CI gates on).
test:
	$(PYTEST) -x -q

# Fast feedback loop: skip the tests marked @pytest.mark.slow
# (recovery campaigns, hypothesis property sweeps, cross-mechanism
# interleaving checks).
smoke:
	$(PYTEST) -q -m "not slow"

# End-to-end self-tests: the parallel-runner equivalence suite and the
# observability stack (bit-identity, trace export, attribution).
selftest:
	$(PY) -m repro.exp --selftest --quiet
	$(PY) -m repro.obs --selftest

# Regenerate the paper's evaluation figures (quick scale).
figures:
	$(PY) -m repro.bench.figures --scale quick

# Example Chrome/Perfetto trace of a small LRP run.
trace:
	$(PY) -m repro.obs trace lrp-trace.json --mechanism lrp

# Cross-run benchmark regression dashboard: refresh the runner
# snapshot, compare every BENCH_*.json against benchmarks/baselines/,
# write BENCH_REPORT.md, and fail on regression.
bench-report:
	$(PY) -m repro.exp --selftest --quiet --obs
	$(PY) -m repro.bench.history --output BENCH_REPORT.md

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks
	rm -f BENCH_runner.json BENCH_REPORT.md lrp-trace.json
	find . -name __pycache__ -type d -exec rm -rf {} +
