"""Persist-order audit: re-verify RP guarantees over finished runs.

``python -m repro.obs audit`` runs workloads under one mechanism and
replays the recorded execution through the verification layer of
:mod:`repro.persistency.checker`:

* the **persist-order check** — Release Persistency demands
  ``W1 hb-> W2  =>  W1 p-> W2`` (Section 4.1), checked pairwise over
  the RP-rule happens-before closure against the NVM persist log;
* the **consistent-cut check** — crash images at sampled persist-log
  prefixes must satisfy Izraelevitz & Scott's recovery criterion
  (every visible write has all hb-predecessors reflected).

Mechanisms that claim Release Persistency (``enforces_rp``: SB, BB,
LRP) must audit clean; NOP and ARP are *expected* to violate — that
asymmetry is the paper's Figure 1 argument, and the audit reports it
rather than failing on it (``--strict`` fails on any violation).

Each violation carries hb-pair provenance (which write pair persisted
backwards, and at which log indices), so a failed audit names the
offending stores rather than just counting them.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.consistency.events import Trace
from repro.core.recovery import crash_points
from repro.core.simulator import SimulationResult
from repro.memory.nvm import NVMController
from repro.persistency import mechanism_by_name
from repro.persistency.checker import RPChecker, Violation


@dataclasses.dataclass
class AuditReport:
    """Verdict of auditing one run against the RP model."""

    workload: str
    mechanism: str
    #: Whether the mechanism *claims* Release Persistency.
    enforces_rp: bool
    #: hb-ordered write pairs the order check covered.
    pairs_checked: int
    order_violations: List[Violation]
    #: ``(prefix length, violations)`` per sampled crash cut.
    cut_results: List[Tuple[int, List[Violation]]]
    persist_count: int
    makespan: int

    @property
    def cut_violations(self) -> int:
        return sum(len(v) for _, v in self.cut_results)

    @property
    def total_violations(self) -> int:
        return len(self.order_violations) + self.cut_violations

    @property
    def clean(self) -> bool:
        return self.total_violations == 0

    @property
    def failed(self) -> bool:
        """A mechanism that promises RP but does not deliver it."""
        return self.enforces_rp and not self.clean

    def summary(self) -> str:
        if self.clean:
            verdict = "OK"
        elif self.enforces_rp:
            verdict = "FAILED"
        else:
            verdict = "violations (expected: no RP guarantee)"
        return (f"{self.workload:<10} {self.mechanism:<4} "
                f"pairs={self.pairs_checked:<6} "
                f"order_violations={len(self.order_violations):<3} "
                f"cuts={len(self.cut_results)} "
                f"cut_violations={self.cut_violations:<3} {verdict}")

    def detail_lines(self, limit: int = 5) -> List[str]:
        """hb-pair provenance for the first ``limit`` violations."""
        lines = []
        for violation in self.order_violations[:limit]:
            lines.append(f"  order: {violation}")
        remaining = limit - len(lines)
        for prefix, violations in self.cut_results:
            for violation in violations:
                if remaining <= 0:
                    break
                lines.append(f"  cut@{prefix}: {violation}")
                remaining -= 1
        shown = len(lines)
        if self.total_violations > shown:
            lines.append(f"  ... {self.total_violations - shown} more")
        return lines


def audit_execution(trace: Trace, nvm: NVMController, *,
                    workload: str = "?", mechanism: str = "?",
                    enforces_rp: bool = True, boundary_event: int = 0,
                    cut_samples: int = 8, cut_seed: int = 0,
                    makespan: int = 0) -> AuditReport:
    """Audit a recorded execution (trace + persist log) against RP.

    The testable core: callers may hand-craft traces and persist logs
    (e.g. an intentionally inverted log) to prove the audit detects
    what it claims to detect.
    """
    checker = RPChecker(trace, nvm, boundary_event=boundary_event)
    order = checker.check_order()
    pairs = sum(1 for earlier, _later in checker.happens_before.write_pairs()
                if _later.event_id >= boundary_event)
    log_length = len(nvm.persist_log())
    cut_results = [
        (prefix, checker.check_cut(prefix))
        for prefix in crash_points(log_length, cut_samples, seed=cut_seed)
    ]
    return AuditReport(workload=workload, mechanism=mechanism,
                       enforces_rp=enforces_rp, pairs_checked=pairs,
                       order_violations=order, cut_results=cut_results,
                       persist_count=nvm.persist_count,
                       makespan=makespan)


def audit_simulation(result: SimulationResult, *,
                     cut_samples: int = 8,
                     cut_seed: int = 0) -> AuditReport:
    """Audit a finished :func:`~repro.core.simulator.simulate` run."""
    mechanism_cls = mechanism_by_name(result.mechanism)
    return audit_execution(
        result.trace, result.nvm,
        workload=result.spec.structure,
        mechanism=result.mechanism,
        enforces_rp=mechanism_cls.enforces_rp,
        boundary_event=result.machine.boundary_event,
        cut_samples=cut_samples, cut_seed=cut_seed,
        makespan=result.makespan)
