"""Unit and property tests for the L1 cache and line metadata."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.l1cache import CacheLine, L1Cache, MESIState
from repro.common.params import MachineConfig


def _cache(sets=4, assoc=2):
    config = MachineConfig(l1_size_bytes=sets * assoc * 64,
                           l1_assoc=assoc)
    return L1Cache(0, config)


class TestCacheLineMetadata:
    def test_clean_by_default(self):
        line = CacheLine(addr=0x1000)
        assert not line.has_pending
        assert not line.is_released
        assert not line.is_only_written

    def test_first_write_stamps_min_epoch(self):
        line = CacheLine(addr=0x1000, state=MESIState.MODIFIED)
        line.record_write(0x1000, 5, event_id=1, epoch=7)
        assert line.min_epoch == 7
        assert line.is_only_written

    def test_later_write_keeps_min_epoch(self):
        line = CacheLine(addr=0x1000, state=MESIState.MODIFIED)
        line.record_write(0x1000, 5, event_id=1, epoch=7)
        line.record_write(0x1008, 6, event_id=2, epoch=9)
        assert line.min_epoch == 7

    def test_coalescing_keeps_youngest_value(self):
        line = CacheLine(addr=0x1000, state=MESIState.MODIFIED)
        line.record_write(0x1000, 5, event_id=1, epoch=7)
        line.record_write(0x1000, 8, event_id=3, epoch=7)
        assert line.pending_words[0x1000] == (8, 3)

    def test_released_classification(self):
        line = CacheLine(addr=0x1000, state=MESIState.MODIFIED)
        line.record_write(0x1000, 5, event_id=1, epoch=7)
        line.release_bit = True
        assert line.is_released
        assert not line.is_only_written

    def test_take_persist_payload_clears(self):
        line = CacheLine(addr=0x1000, state=MESIState.MODIFIED)
        line.record_write(0x1000, 5, event_id=1, epoch=7)
        line.release_bit = True
        payload = line.take_persist_payload()
        assert payload == {0x1000: (5, 1)}
        assert not line.has_pending
        assert line.min_epoch is None
        assert not line.release_bit


class TestL1Lookup:
    def test_miss_returns_none(self):
        assert _cache().lookup(0x1000) is None

    def test_fill_then_hit(self):
        cache = _cache()
        cache.fill(0x1000, MESIState.EXCLUSIVE)
        line = cache.lookup(0x1000)
        assert line is not None
        assert line.state is MESIState.EXCLUSIVE

    def test_double_fill_rejected(self):
        cache = _cache()
        cache.fill(0x1000, MESIState.SHARED)
        with pytest.raises(ValueError):
            cache.fill(0x1000, MESIState.SHARED)

    def test_fill_full_set_rejected(self):
        cache = _cache(sets=1, assoc=2)
        cache.fill(0x0, MESIState.SHARED)
        cache.fill(0x40, MESIState.SHARED)
        with pytest.raises(ValueError):
            cache.fill(0x80, MESIState.SHARED)

    def test_remove_missing_rejected(self):
        with pytest.raises(KeyError):
            _cache().remove(0x1000)


class TestVictimSelection:
    def test_no_victim_when_room(self):
        cache = _cache(sets=1, assoc=2)
        cache.fill(0x0, MESIState.SHARED)
        assert cache.select_victim(0x40) is None

    def test_lru_victim(self):
        cache = _cache(sets=1, assoc=2)
        cache.fill(0x0, MESIState.SHARED)
        cache.fill(0x40, MESIState.SHARED)
        cache.lookup(0x0)  # touch: 0x40 is now LRU
        victim = cache.select_victim(0x80)
        assert victim.addr == 0x40

    def test_lookup_without_touch_preserves_lru(self):
        cache = _cache(sets=1, assoc=2)
        cache.fill(0x0, MESIState.SHARED)
        cache.fill(0x40, MESIState.SHARED)
        cache.lookup(0x0, touch=False)
        victim = cache.select_victim(0x80)
        assert victim.addr == 0x0

    def test_victim_same_set_only(self):
        cache = _cache(sets=2, assoc=1)
        cache.fill(0x0, MESIState.SHARED)    # set 0
        cache.fill(0x40, MESIState.SHARED)   # set 1
        victim = cache.select_victim(0x80)   # set 0
        assert victim.addr == 0x0


class TestScans:
    def test_pending_lines(self):
        cache = _cache()
        a = cache.fill(0x0, MESIState.MODIFIED)
        cache.fill(0x40, MESIState.SHARED)
        a.record_write(0x0, 1, event_id=0, epoch=1)
        pending = cache.pending_lines()
        assert [l.addr for l in pending] == [0x0]

    def test_resident_count(self):
        cache = _cache()
        cache.fill(0x0, MESIState.SHARED)
        cache.fill(0x40, MESIState.SHARED)
        assert cache.resident_count() == 2


class TestLRUProperty:
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_lru(self, accesses):
        """The cache behaves exactly like a reference LRU model."""
        cache = _cache(sets=1, assoc=4)
        reference = []  # most recent last
        for line_no in accesses:
            addr = line_no * 64
            line = cache.lookup(addr)
            if line is None:
                victim = cache.select_victim(addr)
                if victim is not None:
                    assert reference[0] == victim.addr
                    cache.remove(victim.addr)
                    reference.pop(0)
                cache.fill(addr, MESIState.SHARED)
                reference.append(addr)
            else:
                reference.remove(addr)
                reference.append(addr)
            assert cache.resident_count() == len(reference)
