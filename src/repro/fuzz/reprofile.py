"""Replayable counterexample files.

A repro file is a self-contained JSON description of one minimized
counterexample: workload spec, machine config, mechanism, schedule
mutation, crash prefix, and the recorded verdict. Simulations are
deterministic, so replaying the file re-derives the *same* violation
— ``python -m repro.fuzz --replay FILE`` exits 0 iff the recorded
verdict reproduces bit-for-bit (kind and first problem line).

The file is the hand-off artifact: a failing CI fuzz campaign drops
repro files, and anyone can replay them locally without the campaign.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
from typing import Dict, List, Optional

from repro.common.params import MachineConfig, NVMMode
from repro.core.simulator import SimulationResult, simulate
from repro.fuzz.mutation import ScheduleMutation
from repro.workloads.harness import WorkloadSpec

FORMAT = "repro-fuzz-repro-v1"


def config_to_dict(config: MachineConfig) -> Dict[str, object]:
    """JSON-able dump of a machine config (enums by value)."""
    data = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        data[field.name] = value.value if isinstance(value, enum.Enum) \
            else value
    return data


def config_from_dict(data: Dict[str, object]) -> MachineConfig:
    kwargs = dict(data)
    if "nvm_mode" in kwargs:
        kwargs["nvm_mode"] = NVMMode(kwargs["nvm_mode"])
    return MachineConfig(**kwargs)


@dataclasses.dataclass
class ReproFile:
    """One minimized counterexample, ready to serialize/replay."""

    workload: Dict[str, object]
    mechanism: str
    config: Dict[str, object]
    mutation: List[List[int]]
    prefix: int
    verdict: Dict[str, object]
    campaign: Dict[str, object]

    # -- (de)serialization --------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": FORMAT,
            "workload": self.workload,
            "mechanism": self.mechanism,
            "config": self.config,
            "mutation": self.mutation,
            "prefix": self.prefix,
            "verdict": self.verdict,
            "campaign": self.campaign,
        }

    def save(self, path: str) -> None:
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ReproFile":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("format") != FORMAT:
            raise ValueError(
                f"{path}: not a fuzz repro file "
                f"(format={data.get('format')!r})")
        return cls(workload=data["workload"],
                   mechanism=data["mechanism"],
                   config=data["config"],
                   mutation=[list(n) for n in data["mutation"]],
                   prefix=int(data["prefix"]),
                   verdict=data["verdict"],
                   campaign=data.get("campaign", {}))

    # -- replay --------------------------------------------------------

    def run(self) -> SimulationResult:
        """Re-simulate the counterexample's exact run."""
        spec = WorkloadSpec(**self.workload)
        config = config_from_dict(self.config)
        mutation = ScheduleMutation.make(
            (int(d), int(r)) for d, r in self.mutation)
        return simulate(spec, self.mechanism, config,
                        schedule_nudges=mutation.as_dict())

    def replay(self) -> Dict[str, object]:
        """Re-derive the verdict at the recorded crash prefix."""
        result = self.run()
        log_len = len(result.nvm.persist_log())
        if not 0 <= self.prefix <= log_len:
            return {"kind": "mismatch",
                    "problems": [f"prefix {self.prefix} out of range "
                                 f"[0, {log_len}]"]}
        if self.verdict.get("kind") == "continuation":
            return self._replay_continuation(result)
        report = result.structure.validate_image(
            result.nvm.image_after_prefix(self.prefix))
        if report.ok:
            return {"kind": "recovered", "problems": []}
        verdict: Dict[str, object] = {
            "kind": "structural",
            "problems": [str(p) for p in report.problems[:3]],
        }
        if result.config.record_trace:
            from repro.persistency.checker import RPChecker

            checker = RPChecker(result.trace, result.nvm,
                                boundary_event=result.machine
                                .boundary_event)
            verdict["cut_violations"] = len(
                checker.check_cut(self.prefix))
        return verdict

    def _replay_continuation(self, result) -> Dict[str, object]:
        from repro.core.replay import RecoveryReplayError, \
            recover_and_continue

        params = dict(self.verdict.get("continuation", {}))
        try:
            recover_and_continue(result, self.prefix, **params)
        except RecoveryReplayError as exc:
            return {"kind": "continuation", "problems": [str(exc)],
                    "continuation": params}
        return {"kind": "recovered", "problems": []}

    def verdict_matches(self, replayed: Dict[str, object]) -> bool:
        """Same violation: kind matches, and the first problem line
        (the validator's primary diagnosis) is identical."""
        if replayed.get("kind") != self.verdict.get("kind"):
            return False
        mine = list(self.verdict.get("problems", []))
        theirs = list(replayed.get("problems", []))
        return (mine[:1] == theirs[:1])


def replay_repro(path: str) -> Dict[str, object]:
    """Load, replay and judge a repro file.

    Returns ``{"ok": bool, "recorded": ..., "replayed": ...}``.
    """
    repro = ReproFile.load(path)
    replayed = repro.replay()
    return {
        "ok": repro.verdict_matches(replayed),
        "recorded": repro.verdict,
        "replayed": replayed,
        "mechanism": repro.mechanism,
        "prefix": repro.prefix,
        "nudges": len(repro.mutation),
    }
