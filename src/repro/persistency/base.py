"""Common machinery for persistency mechanisms.

A :class:`PersistencyMechanism` receives hooks from the machine for

* executed stores (plain / release / RMW) and acquires,
* coherence side effects (L1 eviction, remote downgrade/invalidation),
* the end-of-run drain.

Each hook returns the number of *stall cycles* charged to the acting
thread (for stores/acquires/evictions) or to the **requesting** thread
(for downgrades — e.g. LRP invariant I2 blocks the acquirer, not the
releaser). Hooks issue line persists to the NVM controller and keep the
bookkeeping needed for Figure 6: a persist counts as a *critical-path
writeback* the first time some thread actually waits on its ack.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.coherence.directory import CoherenceFabric
from repro.coherence.l1cache import CacheLine, MESIState
from repro.common.params import MachineConfig
from repro.common.stats import CoreStats
from repro.consistency.events import MemoryEvent
from repro.memory.nvm import NVMController, PersistRecord
from repro.obs import Histogram, Observer

Word = Optional[int]


class PersistencyMechanism:
    """Base class: no persistency actions at all (see also NOP)."""

    name = "base"
    #: Whether the mechanism guarantees Release Persistency (Section 4).
    enforces_rp = False

    def __init__(self, config: MachineConfig, nvm: NVMController,
                 fabric: CoherenceFabric, stats: List[CoreStats],
                 obs: Optional[Observer] = None) -> None:
        self.config = config
        self.nvm = nvm
        self.fabric = fabric
        self.stats = stats
        self.obs = obs
        if obs is not None and obs.provenance is not None:
            obs.provenance.mechanism = self.name
        self._critical_seqs: Set[int] = set()
        self._record_core: Dict[int, int] = {}
        # Per-core map of line addr -> the most recent in-flight persist
        # record (issued, possibly not yet acknowledged).
        self._inflight: List[Dict[int, PersistRecord]] = [
            {} for _ in range(config.num_cores)
        ]
        # Per-core in-flight persists of the core's own writes, tagged
        # with the epoch of the line's earliest write. Barriers (and
        # LRP's persist engine) must wait for these too: a write may
        # have been persisted early by a coherence event, at a later
        # simulated time than the thread's own clock.
        self._issued: List[List[Tuple[int, PersistRecord]]] = [
            [] for _ in range(config.num_cores)
        ]
        # Pre-resolved observability endpoints for the per-persist /
        # per-stall narration: name building, registry lookups and
        # method dispatch per event are measurable at paper scale (the
        # telemetry wall-gate in BENCH_obsfast.json), so the hot sites
        # below write straight into the counter dict / histogram /
        # window dicts. Histograms and series stay lazily created so
        # the export carries exactly the entries the plain Observer
        # API would have created.
        if obs is not None:
            self._pq_names = [f"pqdepth.c{i}"
                              for i in range(config.num_cores)]
            self._stall_tick_names = [f"stall.c{i}"
                                      for i in range(config.num_cores)]
            self._nvm_tick_names = [
                f"nvm.lines.ch{ch}"
                for ch in range(config.num_memory_controllers)]
            self._stall_count_names: Dict[str, str] = {}
            self._obs_counters = obs.metrics.counters
            self._obs_histograms = obs.metrics.histograms
            self._hist_latency: Optional[Histogram] = None
            self._hist_inflight: Optional[Histogram] = None
            timeline = obs.timeline
            self._timeline = timeline
            self._tl_interval = (timeline.interval
                                 if timeline is not None else 0)
            # Per-core / per-channel window dicts, bound on first use.
            self._pq_series: List[Optional[Dict[int, int]]] = (
                [None] * config.num_cores)
            self._stall_series: List[Optional[Dict[int, int]]] = (
                [None] * config.num_cores)
            self._nvm_series: List[Optional[Dict[int, int]]] = (
                [None] * config.num_memory_controllers)

    # ------------------------------------------------------------------
    # Hooks (override in subclasses). All times are absolute cycles.
    # ------------------------------------------------------------------

    def on_write(self, core: int, line: CacheLine, event: MemoryEvent,
                 now: int) -> int:
        """A plain store is about to be recorded into ``line``."""
        self._apply_store(core, line, event, epoch=0)
        return 0

    def on_release(self, core: int, line: CacheLine, event: MemoryEvent,
                   now: int) -> int:
        """A release store (or successful release-RMW write) performs."""
        self._apply_store(core, line, event, epoch=0)
        return 0

    def on_rmw(self, core: int, line: CacheLine, event: MemoryEvent,
               now: int) -> int:
        """A successful RMW performs (ordering read off the event)."""
        if event.order.has_release:
            return self.on_release(core, line, event, now)
        return self.on_write(core, line, event, now)

    #: Contract flag for the batch engine: on_acquire implementations
    #: must not dereference their ``event`` argument (they may only use
    #: ``core``, ``now`` and ``sync_source``). Every mechanism in the
    #: tree satisfies this, which lets the batch engine skip building
    #: the MemoryEvent for acquire loads when trace recording is off
    #: (it passes ``event=None``). An override that needs event fields
    #: must set this False on its class; the fast-vs-reference
    #: equivalence tests will catch a stale flag.
    acquire_ignores_event = True

    def on_acquire(self, core: int, event: MemoryEvent, now: int,
                   sync_source: Optional[int] = None) -> int:
        """An acquire load (or the read half of an acquire-RMW) performs.

        ``sync_source`` is the core whose release this acquire reads
        from (None when the acquire does not synchronize) — only ARP's
        buffer barrier needs it.
        """
        return 0

    def on_evict(self, core: int, line: CacheLine, now: int) -> int:
        """``line`` is displaced from ``core``'s L1 (may hold pending)."""
        return 0

    def on_downgrade(self, owner: int, line: CacheLine,
                     to_state: MESIState, requester: int, now: int) -> int:
        """A remote request demotes ``owner``'s line; stall hits requester."""
        return 0

    def drain(self, now: int) -> int:
        """Persist everything still buffered (checkpoint / end of run)."""
        return 0

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _apply_store(self, core: int, line: CacheLine, event: MemoryEvent,
                     epoch: int) -> None:
        """Merge the store's value into the line's pending words."""
        line.record_write(event.addr, event.value, event.event_id, epoch)
        obs = self.obs
        if obs is not None and obs.provenance is not None:
            obs.provenance.note_store(core, line.addr)

    def _issue_line(self, core: int, line: CacheLine, now: int, *,
                    after: int = 0,
                    ordered_after: Optional[PersistRecord] = None,
                    trigger: str = "drain",
                    edge: Optional[Tuple[int, int]] = None
                    ) -> Optional[PersistRecord]:
        """Persist a line's pending words; clears them. None if clean."""
        if not line.pending_words:
            return None
        epoch = line.min_epoch or 0
        payload = line.take_persist_payload()
        record = self.nvm.issue_persist(line.addr, payload, now,
                                        after=after,
                                        ordered_after=ordered_after)
        self._record_core[record.issue_seq] = core
        self._inflight[core][line.addr] = record
        self._issued[core].append((epoch, record))
        self.stats[core].persists_issued += 1
        self.stats[core].writebacks_total += 1
        obs = self.obs
        if obs is not None:
            duration = record.complete_time - record.issue_time
            channel = self.nvm.channel_for(line.addr)
            depth = len(self._issued[core])
            counters = self._obs_counters
            counters["persist.lines"] = counters.get("persist.lines",
                                                     0) + 1
            hist = self._hist_latency
            if hist is None:
                hist = self._obs_histograms.get("persist.latency")
                if hist is None:
                    hist = self._obs_histograms["persist.latency"] = \
                        Histogram()
                self._hist_latency = hist
            hist.observe(duration)
            hist = self._hist_inflight
            if hist is None:
                hist = self._obs_histograms.get("persist.inflight")
                if hist is None:
                    hist = self._obs_histograms["persist.inflight"] = \
                        Histogram()
                self._hist_inflight = hist
            hist.observe(depth)
            timeline = self._timeline
            if timeline is not None:
                # Inlined gauge (pqdepth window max) + tick (per-
                # channel line count); both keyed by issue time.
                window = record.issue_time // self._tl_interval
                series = self._pq_series[core]
                if series is None:
                    name = self._pq_names[core]
                    series = timeline.gauges.get(name)
                    if series is None:
                        series = timeline.gauges[name] = {}
                    self._pq_series[core] = series
                if depth > series.get(window, -1):
                    series[window] = depth
                series = self._nvm_series[channel]
                if series is None:
                    name = self._nvm_tick_names[channel]
                    series = timeline.series.get(name)
                    if series is None:
                        series = timeline.series[name] = {}
                    self._nvm_series[channel] = series
                series[window] = series.get(window, 0) + 1
            if obs.trace is not None:
                obs.span(f"nvm-ch{channel}", f"persist c{core}",
                         record.issue_time, duration, cat="persist")
            if obs.provenance is not None:
                obs.provenance.note_persist(core, record, trigger, edge)
        return record

    def _issue_lines(self, core: int, lines: Iterable[CacheLine],
                     now: int, *, after: int = 0,
                     ordered_after: Optional[PersistRecord] = None,
                     trigger: str = "drain",
                     edge: Optional[Tuple[int, int]] = None
                     ) -> List[PersistRecord]:
        """Persist many lines' pending words as one NVM batch.

        Bit-identical to calling :meth:`_issue_line` per line in order
        (the batch shares the ``after``/``ordered_after`` constraints,
        so the channel accounting has a closed form). With an observer
        attached the per-line path is kept, so every obs/provenance
        callback fires in exactly the order it always did.
        """
        dirty = [line for line in lines if line.pending_words]
        if not dirty:
            return []
        if self.obs is not None or len(dirty) < 2:
            records = []
            for line in dirty:
                record = self._issue_line(core, line, now, after=after,
                                          ordered_after=ordered_after,
                                          trigger=trigger, edge=edge)
                if record is not None:
                    records.append(record)
            return records
        epochs = []
        items = []
        for line in dirty:
            epochs.append(line.min_epoch or 0)
            items.append((line.addr, line.take_persist_payload()))
        records = self.nvm.issue_persist_batch(
            items, now, after=after, ordered_after=ordered_after)
        record_core = self._record_core
        inflight = self._inflight[core]
        issued = self._issued[core]
        for epoch, record in zip(epochs, records):
            record_core[record.issue_seq] = core
            inflight[record.line_addr] = record
            issued.append((epoch, record))
        stats = self.stats[core]
        stats.persists_issued += len(records)
        stats.writebacks_total += len(records)
        return records

    def _wait_for(self, waiter: int, now: int,
                  records: Iterable[Optional[PersistRecord]],
                  block_line: Optional[int] = None,
                  reason: str = "persist") -> int:
        """Block ``waiter`` until all ``records`` ack; returns the stall.

        Any record actually waited on is promoted to a critical-path
        writeback (counted once, against its issuing core).
        ``block_line`` additionally holds the line in a directory
        transient state until the acks, so that *other* threads cannot
        consume the not-yet-durable value either.
        """
        ready = now
        for record in records:
            if record is None:
                continue
            if record.complete_time > now:
                self._mark_critical(record)
            ready = max(ready, record.complete_time)
        if block_line is not None and ready > now:
            self.fabric.block_line_until(block_line, ready)
        return self._charge_stall(waiter, now, ready, reason)

    def _wait_until(self, waiter: int, now: int, ready: int,
                    reason: str = "persist") -> int:
        """Block ``waiter`` until absolute time ``ready``."""
        return self._charge_stall(waiter, now, ready, reason)

    def _charge_stall(self, waiter: int, now: int, ready: int,
                      reason: str = "persist") -> int:
        stall = max(0, ready - now)
        if stall:
            stats = self.stats[waiter]
            stats.persist_stall_cycles += stall
            stats.stall_reasons[reason] = (
                stats.stall_reasons.get(reason, 0) + stall)
            obs = self.obs
            if obs is not None:
                # Same value as the stats charge, so the obs stall
                # counters reconcile with persist_stall_cycles exactly.
                name = self._stall_count_names.get(reason)
                if name is None:
                    name = self._stall_count_names[reason] = \
                        f"stall.{reason}"
                counters = self._obs_counters
                counters[name] = counters.get(name, 0) + stall
                timeline = self._timeline
                if timeline is not None:
                    window = now // self._tl_interval
                    series = self._stall_series[waiter]
                    if series is None:
                        tick_name = self._stall_tick_names[waiter]
                        series = timeline.series.get(tick_name)
                        if series is None:
                            series = timeline.series[tick_name] = {}
                        self._stall_series[waiter] = series
                    series[window] = series.get(window, 0) + stall
                if obs.trace is not None:
                    obs.span(f"stall-c{waiter}", reason, now, stall,
                             cat="stall")
                if obs.provenance is not None:
                    obs.provenance.note_stall(reason, stall)
        return stall

    def _mark_critical(self, record: PersistRecord) -> None:
        if record.issue_seq in self._critical_seqs:
            return
        self._critical_seqs.add(record.issue_seq)
        issuer = self._record_core.get(record.issue_seq)
        if issuer is not None:
            self.stats[issuer].writebacks_critical += 1
            if self.obs is not None:
                self.obs.count("persist.critical_writebacks")
                if self.obs.provenance is not None:
                    self.obs.provenance.note_critical(record.issue_seq)

    def _inflight_record(self, core: int, line_addr: int,
                         now: int) -> Optional[PersistRecord]:
        """An in-flight (not yet acknowledged) persist of the line, if any."""
        record = self._inflight[core].get(line_addr)
        if record is not None and record.complete_time <= now:
            del self._inflight[core][line_addr]
            return None
        return record

    def _outstanding(self, core: int, now: int,
                     below_epoch: Optional[int] = None
                     ) -> List[PersistRecord]:
        """In-flight persists of the core's writes that a barrier (or
        the persist engine) must still wait for.

        ``below_epoch`` restricts the wait to persists of lines whose
        earliest write belongs to an older epoch — LRP's one-sided
        semantics only order a release after *earlier* writes.
        Acknowledged entries are pruned as a side effect.
        """
        live: List[Tuple[int, PersistRecord]] = []
        result: List[PersistRecord] = []
        for epoch, record in self._issued[core]:
            if record.complete_time <= now:
                continue
            live.append((epoch, record))
            if below_epoch is None or epoch < below_epoch:
                result.append(record)
        self._issued[core] = live
        return result

    def _block_if_inflight(self, core: int, line_addr: int,
                           now: int) -> None:
        """Eviction of a line whose persist is still in flight: put the
        directory entry in a transient state blocking requests for the
        line until the ack (the PutM handling of Section 5.2.3) — so no
        other thread can consume the value before it is durable."""
        record = self._inflight_record(core, line_addr, now)
        if record is not None:
            self.fabric.block_line_until(line_addr, record.complete_time)

    def _retire_inflight(self, core: int, now: int) -> None:
        """Drop in-flight entries whose ack time has passed."""
        table = self._inflight[core]
        for addr in [a for a, r in table.items() if r.complete_time <= now]:
            del table[addr]
