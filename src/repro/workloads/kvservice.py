"""KV-server service workload: an open-loop client request generator.

The harness in :mod:`repro.workloads.harness` drives the paper's
fixed-op benchmark loops; this module drives the ROADMAP's
production-shaped story instead — a persistent KV *service* under
skewed, bursty client traffic:

* **GET / PUT / DEL request mix** over the existing log-free
  structures (GET = ``contains``, PUT = ``insert``, DEL = ``delete``),
  so the harness correctness oracle
  (:func:`repro.workloads.harness.expected_final_keys`) applies
  unchanged;
* **zipfian key skew** (cached cumulative table + bisect per draw,
  ranks mapped to keys through a seeded permutation so the hot keys
  are spread over the address space);
* **value-size distribution**: PUTs pay a deterministic serialization
  charge of one compute cycle per line of value payload, so large
  values lengthen the request without perturbing persist traffic;
* **bursty arrivals, deterministically seeded**: the arrival process
  is *virtual* — requests carry arrival timestamps reconstructed by
  :func:`arrival_times` from the spec alone, and the SLO layer
  (:mod:`repro.obs.slo`) replays the measured service times against
  them coordination-omission-free. The simulator itself runs the
  clients closed-loop, which keeps the schedule (and therefore every
  makespan and persist log) bit-identical whether or not anyone is
  measuring.

Every request ends with a one-cycle boundary op carrying
:data:`repro.obs.spans.REQUEST_BOUNDARY` as its site; with spans
enabled the execution loops record its pre-advance clock, from which
the span layer reconstructs dispatch/completion per request.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.rng import make_rng
from repro.common.stats import CoreStats
from repro.core.thread import work
from repro.lfds import LogFreeStructure
from repro.obs.spans import REQUEST_BOUNDARY
from repro.workloads.harness import Outcome, _tagged

#: Cycles of serialization work per line (64 B) of PUT value payload.
SERIALIZE_CYCLES_PER_LINE = 1


@dataclasses.dataclass(frozen=True)
class KVServiceSpec:
    """One KV-service configuration.

    Deliberately attribute-compatible with
    :class:`~repro.workloads.harness.WorkloadSpec` where the setup
    pipeline cares (``structure``, ``num_threads``, ``initial_size``,
    ``seed``, ``effective_key_range``), so structure construction,
    pre-population and the setup-prototype cache work unchanged;
    :func:`repro.core.simulator.simulate` only dispatches on the spec
    type to pick the worker builder.
    """

    structure: str = "hashmap"
    num_threads: int = 8
    initial_size: int = 1024
    requests_per_thread: int = 64
    #: Fraction of requests that are GETs; the remainder splits 1:1
    #: into PUTs and DELs, keeping the store near its initial size.
    read_ratio: float = 0.9
    #: Zipfian skew exponent (0 = uniform; ~0.99 = YCSB-style skew).
    zipf_theta: float = 0.99
    key_range: Optional[int] = None  # default: 2 * initial_size
    #: PUT value payload bounds (bytes); sizes are drawn log-uniformly.
    value_bytes_min: int = 64
    value_bytes_max: int = 4096
    #: Virtual arrival process: mean inter-arrival gap per client
    #: (cycles), with bursts of ``burst_len`` requests every
    #: ``burst_period`` requests arriving ``burst_factor``x faster.
    mean_interarrival: int = 400
    burst_factor: float = 8.0
    burst_period: int = 64
    burst_len: int = 16
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError("need at least one client")
        if self.requests_per_thread < 1:
            raise ValueError("need at least one request per client")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if self.zipf_theta < 0.0:
            raise ValueError("zipf_theta must be non-negative")
        if self.structure == "queue":
            raise ValueError("KV service needs a keyed structure; "
                             "'queue' has no GET/DEL-by-key")
        if self.initial_size < 0:
            raise ValueError("initial_size must be non-negative")
        if not 0 < self.value_bytes_min <= self.value_bytes_max:
            raise ValueError("need 0 < value_bytes_min <= value_bytes_max")
        if self.mean_interarrival < 1:
            raise ValueError("mean_interarrival must be >= 1 cycle")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1 (a burst "
                             "shortens gaps)")
        if not 0 <= self.burst_len <= self.burst_period:
            raise ValueError("need 0 <= burst_len <= burst_period")

    @property
    def effective_key_range(self) -> int:
        if self.key_range is not None:
            return self.key_range
        return max(2 * self.initial_size, 2)

    @property
    def total_requests(self) -> int:
        return self.num_threads * self.requests_per_thread


# ----------------------------------------------------------------------
# Zipfian key popularity
# ----------------------------------------------------------------------

_ZIPF_CACHE: Dict[Tuple[int, float], List[float]] = {}
_PERM_CACHE: Dict[Tuple[int, int], List[int]] = {}
_CACHE_MAX = 8


def zipf_cdf(key_range: int, theta: float) -> List[float]:
    """Cumulative popularity of ranks 0..key_range-1 (cached)."""
    cache_key = (key_range, round(theta, 9))
    table = _ZIPF_CACHE.get(cache_key)
    if table is None:
        weights = [1.0 / (rank + 1) ** theta for rank in range(key_range)]
        total = sum(weights)
        table = []
        acc = 0.0
        for weight in weights:
            acc += weight
            table.append(acc / total)
        table[-1] = 1.0  # guard against float undershoot
        if len(_ZIPF_CACHE) >= _CACHE_MAX:
            _ZIPF_CACHE.clear()
        _ZIPF_CACHE[cache_key] = table
    return table


def key_permutation(key_range: int, seed: int) -> List[int]:
    """Rank -> key map: a seeded shuffle, so the popular ranks land on
    keys spread across the whole range (and across hash buckets)
    instead of clustering at 0 (cached)."""
    cache_key = (key_range, seed)
    perm = _PERM_CACHE.get(cache_key)
    if perm is None:
        perm = list(range(key_range))
        make_rng(seed, "kvperm").shuffle(perm)
        if len(_PERM_CACHE) >= _CACHE_MAX:
            _PERM_CACHE.clear()
        _PERM_CACHE[cache_key] = perm
    return perm


# ----------------------------------------------------------------------
# The virtual open-loop arrival process
# ----------------------------------------------------------------------

def arrival_times(spec: KVServiceSpec, thread_id: int) -> List[int]:
    """Deterministic request arrival cycles for one client thread.

    Exponential inter-arrival gaps with mean ``mean_interarrival``;
    the first ``burst_len`` requests of every ``burst_period``-request
    window arrive ``burst_factor``x faster — the mid-burst crash of
    the RTO experiment lands inside one of these. Derived purely from
    the spec: the simulator never reads these timestamps, the SLO
    layer replays measured service times against them.
    """
    rng = make_rng(spec.seed, "kvarrival", thread_id)
    arrivals: List[int] = []
    now = 0.0
    for index in range(spec.requests_per_thread):
        mean = float(spec.mean_interarrival)
        if index % spec.burst_period < spec.burst_len:
            mean /= spec.burst_factor
        now += rng.expovariate(1.0 / mean)
        arrivals.append(int(now))
    return arrivals


# ----------------------------------------------------------------------
# Client workers
# ----------------------------------------------------------------------

def value_cycles(value_bytes: int) -> int:
    """Serialization charge for a PUT payload (cycles)."""
    lines = (value_bytes + 63) // 64
    return lines * SERIALIZE_CYCLES_PER_LINE


def build_workers(spec: KVServiceSpec, structure: LogFreeStructure,
                  outcomes: List[List[Outcome]],
                  stats: List[CoreStats],
                  tag_sites: bool = False) -> List[Callable]:
    """Client coroutine factories, one per hardware thread."""

    def make_factory(worker_index: int) -> Callable:
        def factory(thread_id: int):
            return _client(spec, structure, thread_id,
                           outcomes[worker_index], stats, tag_sites)
        return factory

    return [make_factory(i) for i in range(spec.num_threads)]


def _client(spec: KVServiceSpec, structure: LogFreeStructure,
            thread_id: int, results: List[Outcome],
            stats: List[CoreStats], tag_sites: bool = False):
    """One client: requests_per_thread GET/PUT/DEL requests.

    Outcomes use the harness vocabulary (``contains``/``insert``/
    ``delete``) so :func:`expected_final_keys` verifies final state
    unchanged. Every request ends with the REQUEST_BOUNDARY work op —
    yielded directly (never through ``_tagged``) so the site marker
    keeps its identity even with provenance tagging on.
    """
    rng = make_rng(spec.seed, "kvclient", thread_id)
    cdf = zipf_cdf(spec.effective_key_range, spec.zipf_theta)
    perm = key_permutation(spec.effective_key_range, spec.seed)
    lfd = spec.structure
    structure.use_arena(thread_id)
    for req_index in range(spec.requests_per_thread):
        rank = bisect.bisect_left(cdf, rng.random())
        key = perm[rank]
        roll = rng.random()
        if roll < spec.read_ratio:
            gen = structure.contains(key)
            if tag_sites:
                gen = _tagged(gen, f"{lfd}.contains")
            found = yield from gen
            results.append(("contains", key, found))
        elif rng.random() < 0.5:
            # PUT: insert, then serialize the value payload. Sizes are
            # log-uniform over the configured bounds — a heavy-ish
            # tail without unbounded draws.
            value_bytes = int(math.exp(rng.uniform(
                math.log(spec.value_bytes_min),
                math.log(spec.value_bytes_max))))
            value = thread_id * 1_000_000 + req_index + 1
            gen = structure.insert(key, value, tid=thread_id)
            if tag_sites:
                gen = _tagged(gen, f"{lfd}.insert")
            ok = yield from gen
            results.append(("insert", key, ok))
            yield work(value_cycles(value_bytes),
                       site=f"{lfd}.put.serialize" if tag_sites else None)
        else:
            gen = structure.delete(key)
            if tag_sites:
                gen = _tagged(gen, f"{lfd}.delete")
            ok = yield from gen
            results.append(("delete", key, ok))
        stats[thread_id].ops_completed += 1
        # Request boundary: always the request's final op, so its
        # pre-advance clock is the request completion cycle.
        yield work(1, site=REQUEST_BOUNDARY)
