"""Unit and property tests for repro.memory.address."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.address import (
    WORD_BYTES,
    HeapAllocator,
    line_address,
    line_index,
    word_aligned,
    words_in_line,
)


class TestLineMath:
    def test_line_address_masks_offset(self):
        assert line_address(0x1000, 64) == 0x1000
        assert line_address(0x103F, 64) == 0x1000
        assert line_address(0x1040, 64) == 0x1040

    def test_line_index(self):
        assert line_index(0, 64) == 0
        assert line_index(64, 64) == 1
        assert line_index(130, 64) == 2

    def test_words_in_line(self):
        words = list(words_in_line(0x1000, 64))
        assert len(words) == 8
        assert words[0] == 0x1000
        assert words[-1] == 0x1038

    def test_word_aligned(self):
        assert word_aligned(0x1000)
        assert not word_aligned(0x1001)

    @given(st.integers(0, 1 << 48))
    def test_line_address_idempotent(self, addr):
        la = line_address(addr, 64)
        assert line_address(la, 64) == la
        assert la <= addr < la + 64


class TestHeapAllocator:
    def test_sequential_allocations_are_contiguous(self):
        alloc = HeapAllocator(base=0x1000, line_bytes=64)
        a = alloc.alloc(3)
        b = alloc.alloc(2)
        assert b == a + 3 * WORD_BYTES

    def test_line_align_skips_to_boundary(self):
        alloc = HeapAllocator(base=0x1000, line_bytes=64)
        alloc.alloc(3)  # 24 bytes into the line
        b = alloc.alloc(1, line_align=True)
        assert b % 64 == 0
        assert b == 0x1040

    def test_line_align_noop_at_boundary(self):
        alloc = HeapAllocator(base=0x1000, line_bytes=64)
        assert alloc.alloc(1, line_align=True) == 0x1000

    def test_bytes_allocated(self):
        alloc = HeapAllocator(base=0x1000, line_bytes=64)
        alloc.alloc(4)
        assert alloc.bytes_allocated == 32

    def test_rejects_zero_words(self):
        with pytest.raises(ValueError):
            HeapAllocator().alloc(0)

    def test_rejects_unaligned_base(self):
        with pytest.raises(ValueError):
            HeapAllocator(base=0x1008, line_bytes=64)

    def test_arenas_are_disjoint(self):
        alloc = HeapAllocator(base=0x1000, line_bytes=64)
        a0 = alloc.arena(0)
        a1 = alloc.arena(1)
        block0 = [a0.alloc(8) for _ in range(100)]
        block1 = [a1.alloc(8) for _ in range(100)]
        shared = [alloc.alloc(8) for _ in range(100)]
        spans = []
        for addrs in (block0, block1, shared):
            spans.append((min(addrs), max(addrs) + 64))
        for i in range(3):
            for j in range(i + 1, 3):
                lo1, hi1 = spans[i]
                lo2, hi2 = spans[j]
                assert hi1 <= lo2 or hi2 <= lo1

    def test_arena_negative_id_rejected(self):
        with pytest.raises(ValueError):
            HeapAllocator().arena(-1)

    @given(st.lists(st.tuples(st.integers(1, 20), st.booleans()),
                    min_size=1, max_size=60))
    def test_allocations_never_overlap(self, requests):
        alloc = HeapAllocator(base=0x4000, line_bytes=64)
        taken = []
        for words, align in requests:
            addr = alloc.alloc(words, line_align=align)
            assert addr % WORD_BYTES == 0
            for start, end in taken:
                assert addr >= end or addr + words * WORD_BYTES <= start
            taken.append((addr, addr + words * WORD_BYTES))
