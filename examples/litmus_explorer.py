#!/usr/bin/env python3
"""Explore the Figure 1 litmus test across interleavings and models.

Enumerates interleavings of the paper's two-thread linked-list insert,
and for each one enumerates crash states (prefixes of a program-order
persist sequence plus the adversarial "link only" state), reporting
which persistency model — ARP or RP — admits each state.

The punchline printed at the end: ARP admits crash states in which a
node is reachable but uninitialized; RP admits none.

Run:  python examples/litmus_explorer.py
"""

import itertools

from repro.consistency.litmus import (
    all_interleavings,
    figure1_initial_memory,
    figure1_insert,
    run_interleaving,
)
from repro.persistency.rp_model import arp_allows, rp_allows


def main() -> None:
    program = figure1_insert()
    init = figure1_initial_memory()

    arp_only_states = 0
    both = 0
    neither = 0
    schedules = list(itertools.islice(all_interleavings(program), 40))
    print(f"exploring {len(schedules)} interleavings of the Figure 1 "
          "insert ...\n")

    for index, schedule in enumerate(schedules):
        trace = run_interleaving(program, schedule, init=init)
        writes = [e.event_id for e in trace.writes()]
        # Candidate crash states: every subset is too many; check all
        # single-write states and all program-order prefixes.
        candidates = [writes[:k] for k in range(len(writes) + 1)]
        candidates += [[w] for w in writes]
        for state in candidates:
            arp_ok = arp_allows(trace, state)
            rp_ok = rp_allows(trace, state)
            if rp_ok:
                assert arp_ok, "RP must be stronger than ARP"
            if arp_ok and rp_ok:
                both += 1
            elif arp_ok:
                arp_only_states += 1
            else:
                neither += 1

    print(f"crash states allowed by both models : {both}")
    print(f"allowed by ARP but forbidden by RP  : {arp_only_states}")
    print(f"forbidden by both                   : {neither}\n")
    if arp_only_states:
        print("ARP admits crash states that RP forbids — exactly the "
              "gap that breaks null recovery of log-free structures "
              "(Section 3 of the paper).")


if __name__ == "__main__":
    main()
