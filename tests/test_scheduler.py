"""Tests for the generator-coroutine scheduler and Machine execution."""

import pytest

from repro.common.params import MachineConfig
from repro.consistency.events import MemOrder
from repro.core.machine import Machine
from repro.core.scheduler import Scheduler, SimThread
from repro.core.thread import Op, OpKind, cas, load, store, work, xchg

CFG = MachineConfig(num_cores=4)


def _scheduler(workers, config=CFG, mech="nop"):
    machine = Machine(config, mech)
    return Scheduler(machine, workers), machine


class TestSimThread:
    def test_result_delivery(self):
        def gen():
            value = yield store(0x8, 42)
            assert value is None
            got = yield load(0x8)
            assert got == 42

        sched, machine = _scheduler([lambda tid: gen()])
        sched.run()
        assert machine.trace.load(0x8) == 42

    def test_stop_iteration_finishes_thread(self):
        def gen():
            yield store(0x8, 1)

        sched, _ = _scheduler([lambda tid: gen()])
        sched.run()
        assert all(t.done for t in sched.threads)


class TestSchedulingOrder:
    def test_min_clock_first(self):
        """A thread stalled by a long op yields to faster threads."""
        order = []

        def slow(tid):
            yield work(1000)
            order.append(("slow", tid))
            yield work(1)

        def fast(tid):
            for _ in range(3):
                order.append(("fast", tid))
                yield work(10)

        sched, _ = _scheduler([slow, fast])
        sched.run()
        # All three fast steps happen before the slow thread's second
        # step (its clock jumped to 1000).
        slow_index = order.index(("slow", 0))
        assert slow_index >= 3

    def test_makespan_is_max_clock(self):
        def worker(cycles):
            def gen(tid):
                yield work(cycles)
            return gen

        sched, _ = _scheduler([worker(100), worker(700)])
        assert sched.run() >= 700

    def test_too_many_workers_rejected(self):
        config = MachineConfig(num_cores=1)
        with pytest.raises(ValueError):
            _scheduler([lambda t: iter(()), lambda t: iter(())],
                       config=config)

    def test_max_ops_guard(self):
        def forever(tid):
            while True:
                yield work(1)

        sched, _ = _scheduler([forever])
        sched.max_ops = 100
        with pytest.raises(RuntimeError):
            sched.run()

    def test_max_ops_enforced_at_exact_budget(self):
        """The guard trips as soon as op max_ops+1 is attempted — a
        worker issuing exactly max_ops ops completes cleanly."""
        def five_ops(tid):
            for _ in range(5):
                yield work(1)

        sched, _ = _scheduler([lambda tid: five_ops(tid)])
        sched.max_ops = 5
        sched.run()  # exactly at the budget: no livelock report

        sched, _ = _scheduler([lambda tid: five_ops(tid)])
        sched.max_ops = 4
        with pytest.raises(RuntimeError, match="max_ops=4"):
            sched.run()

    def test_max_ops_never_executes_more_than_budget(self):
        executed = []

        def forever(tid):
            while True:
                yield work(1)
                executed.append(1)

        sched, _ = _scheduler([forever])
        sched.max_ops = 7
        with pytest.raises(RuntimeError):
            sched.run()
        # The op that would exceed the budget was never executed.
        assert len(executed) == 7


class TestScheduleNudges:
    """The fuzzer's priority-nudge hook (repro.fuzz rides on this)."""

    def _racing_writers(self):
        def writer(value):
            def gen(tid):
                yield store(0x8, value)
            return gen
        return [writer(1), writer(2)]

    def test_default_order_is_thread_id(self):
        sched, machine = _scheduler(self._racing_writers())
        sched.run()
        # Equal clocks: thread 0 executes first, thread 1 overwrites.
        assert machine.trace.load(0x8) == 2

    def test_nudge_flips_first_decision(self):
        sched, machine = _scheduler(self._racing_writers())
        sched.set_nudges({0: 1})
        sched.run()
        # Thread 1 ran first, so thread 0's store lands last.
        assert machine.trace.load(0x8) == 1

    def test_rank_wraps_modulo_runnable(self):
        sched, machine = _scheduler(self._racing_writers())
        sched.set_nudges({0: 2})  # 2 % 2 runnable threads == rank 0
        sched.run()
        assert machine.trace.load(0x8) == 2

    def test_set_nudges_copies_and_resets(self):
        sched, machine = _scheduler(self._racing_writers())
        nudges = {0: 1}
        sched.set_nudges(nudges)
        nudges[0] = 0  # caller mutation must not leak in
        sched.set_nudges(None)  # back to the heap path
        sched.run()
        assert machine.trace.load(0x8) == 2

    def test_executed_ops_counts_all_threads(self):
        sched, _ = _scheduler(self._racing_writers())
        sched.set_nudges({})
        sched.run()
        assert sched.executed_ops == 2

    def test_empty_nudges_match_heap_makespan(self):
        def worker(cycles):
            def gen(tid):
                for _ in range(3):
                    yield work(cycles)
            return gen

        plain, _ = _scheduler([worker(10), worker(25)])
        nudged, _ = _scheduler([worker(10), worker(25)])
        nudged.set_nudges({})
        assert plain.run() == nudged.run()

    def test_max_ops_guard_active_under_nudges(self):
        def forever(tid):
            while True:
                yield work(1)

        sched, _ = _scheduler([forever])
        sched.set_nudges({3: 1})
        sched.max_ops = 50
        with pytest.raises(RuntimeError, match="max_ops"):
            sched.run()


class TestMachineOps:
    def test_cas_result_tuple(self):
        m = Machine(CFG, "nop")
        m.execute(0, store(0x8, 5), 0)
        result, _ = m.execute(0, cas(0x8, 5, 6), 10)
        assert result == (True, 5)
        result, _ = m.execute(0, cas(0x8, 5, 7), 20)
        assert result == (False, 6)

    def test_xchg_returns_old(self):
        m = Machine(CFG, "nop")
        m.execute(0, store(0x8, 5), 0)
        result, _ = m.execute(0, xchg(0x8, 9), 10)
        assert result == 5
        assert m.trace.load(0x8) == 9

    def test_work_op_only_costs_cycles(self):
        m = Machine(CFG, "nop")
        result, latency = m.execute(0, work(77), 0)
        assert result is None
        assert latency == 77
        assert len(m.trace) == 0

    def test_failed_cas_does_not_dirty_line(self):
        m = Machine(CFG, "lrp")
        m.execute(0, store(0x8, 5), 0)
        m.execute(1, cas(0x8, 99, 1, MemOrder.RELEASE), 0)
        line = m.fabric.l1s[1].lookup(0x0)
        assert line is not None and not line.has_pending

    def test_stats_counting(self):
        m = Machine(CFG, "nop")
        m.execute(0, store(0x8, 5), 0)
        m.execute(0, load(0x8, MemOrder.ACQUIRE), 10)
        m.execute(0, cas(0x8, 5, 6, MemOrder.RELEASE), 20)
        stats = m.stats[0]
        assert stats.writes == 1
        assert stats.reads == 1
        assert stats.rmws == 1
        assert stats.acquires == 1
        assert stats.releases == 1

    def test_miss_then_hit_latency(self):
        m = Machine(CFG, "nop")
        _, miss = m.execute(0, load(0x8), 0)
        _, hit = m.execute(0, load(0x8), 100)
        assert miss > hit == CFG.l1_hit_cycles

    def test_install_initial_state(self):
        m = Machine(CFG, "nop")
        m.install_initial_state({0x8: 42})
        result, _ = m.execute(0, load(0x8), 0)
        assert result == 42
        assert m.nvm.baseline_image() == {0x8: 42}

    def test_install_after_ops_rejected(self):
        m = Machine(CFG, "nop")
        m.execute(0, store(0x8, 1), 0)
        with pytest.raises(ValueError):
            m.install_initial_state({0x10: 2})

    def test_checkpoint_resets_log_and_boundary(self):
        m = Machine(CFG, "sb")
        m.execute(0, store(0x8, 1), 0)
        m.checkpoint(10_000)
        assert m.boundary_event == 1
        assert m.nvm.persist_log() == []
        assert m.nvm.baseline_image()[0x8] == 1

    def test_sync_source_detection(self):
        m = Machine(CFG, "arp")
        m.execute(0, store(0x8, 1, MemOrder.RELEASE), 0)
        m.execute(1, load(0x8, MemOrder.ACQUIRE), 0)
        # The acquiring thread observed the release: ARP placed a
        # barrier (epoch turnover) on the acquirer.
        assert m.stats[1].barrier_count == 1
