"""Tests for the RP persist-order and consistent-cut checker."""

from repro.common.params import MachineConfig
from repro.consistency.events import MemOrder
from repro.core.machine import Machine
from repro.core.thread import cas, load, store
from repro.memory.nvm import NVMController
from repro.persistency.checker import RPChecker

CFG = MachineConfig(num_cores=4)

LINE_A, LINE_B, LINE_C = 0x1000, 0x2000, 0x3000


def _run(mech, ops):
    m = Machine(CFG, mech)
    clocks = {}
    for core, op in ops:
        now = clocks.get(core, 0)
        _, latency = m.execute(core, op, now)
        clocks[core] = now + latency
    m.finish(max(clocks.values(), default=0) + 10_000)
    return m


FIG1_OPS = [
    (0, store(LINE_A, 1)),
    (0, cas(LINE_B, None, LINE_A, MemOrder.RELEASE)),
    (1, load(LINE_B, MemOrder.ACQUIRE)),
    (1, store(LINE_C, 2)),
]


class TestOrderCheck:
    def test_lrp_order_clean(self):
        m = _run("lrp", FIG1_OPS)
        checker = RPChecker(m.trace, m.nvm)
        assert checker.check_order() == []

    def test_sb_order_clean(self):
        m = _run("sb", FIG1_OPS)
        assert RPChecker(m.trace, m.nvm).check_order() == []

    def test_bb_order_clean(self):
        m = _run("bb", FIG1_OPS)
        assert RPChecker(m.trace, m.nvm).check_order() == []

    def test_synthetic_violation_detected(self):
        """Persist the release strictly before its preceding write."""
        m = Machine(CFG, "nop")
        w = m.trace.record_write(0, LINE_A, 1)
        rel = m.trace.record_write(0, LINE_B, 2, MemOrder.RELEASE)
        # Hand-craft an inverted persist log.
        m.nvm.issue_persist(LINE_B, {LINE_B: (2, rel.event_id)}, now=0)
        m.nvm.issue_persist(LINE_A, {LINE_A: (1, w.event_id)}, now=500)
        violations = RPChecker(m.trace, m.nvm).check_order()
        assert violations
        assert violations[0].earlier.event_id == w.event_id
        assert violations[0].later.event_id == rel.event_id
        assert "hb->" in str(violations[0])

    def test_never_persisted_predecessor_is_violation(self):
        m = Machine(CFG, "nop")
        w = m.trace.record_write(0, LINE_A, 1)
        rel = m.trace.record_write(0, LINE_B, 2, MemOrder.RELEASE)
        m.nvm.issue_persist(LINE_B, {LINE_B: (2, rel.event_id)}, now=0)
        assert RPChecker(m.trace, m.nvm).check_order()

    def test_coalesced_write_counts_as_durable(self):
        """An older same-word write overwritten by an hb-later one is
        covered when the younger value persists."""
        m = Machine(CFG, "nop")
        w1 = m.trace.record_write(0, LINE_A, 1)
        w2 = m.trace.record_write(0, LINE_A, 2)            # same word
        rel = m.trace.record_write(0, LINE_B, 3, MemOrder.RELEASE)
        m.nvm.issue_persist(LINE_A, {LINE_A: (2, w2.event_id)}, now=0)
        m.nvm.issue_persist(LINE_B, {LINE_B: (3, rel.event_id)}, now=0,
                            after=200)
        assert RPChecker(m.trace, m.nvm).check_order() == []

    def test_boundary_events_treated_durable(self):
        m = Machine(CFG, "nop")
        m.trace.record_write(0, LINE_A, 1)
        rel = m.trace.record_write(0, LINE_B, 2, MemOrder.RELEASE)
        m.nvm.issue_persist(LINE_B, {LINE_B: (2, rel.event_id)}, now=0)
        checker = RPChecker(m.trace, m.nvm, boundary_event=1)
        assert checker.check_order() == []


class TestCutCheck:
    def test_every_prefix_of_lrp_run_is_consistent(self):
        m = _run("lrp", FIG1_OPS)
        checker = RPChecker(m.trace, m.nvm)
        for prefix in range(len(m.nvm.persist_log()) + 1):
            assert checker.check_cut(prefix) == []

    def test_inverted_prefix_is_inconsistent(self):
        m = Machine(CFG, "nop")
        w = m.trace.record_write(0, LINE_A, 1)
        rel = m.trace.record_write(0, LINE_B, 2, MemOrder.RELEASE)
        m.nvm.issue_persist(LINE_B, {LINE_B: (2, rel.event_id)}, now=0)
        m.nvm.issue_persist(LINE_A, {LINE_A: (1, w.event_id)}, now=500)
        checker = RPChecker(m.trace, m.nvm)
        assert checker.check_cut(1)       # release without fields
        assert checker.check_cut(2) == [] # both durable: consistent

    def test_durable_index(self):
        m = Machine(CFG, "nop")
        w = m.trace.record_write(0, LINE_A, 1)
        missing = m.trace.record_write(0, LINE_C, 9)
        m.nvm.issue_persist(LINE_A, {LINE_A: (1, w.event_id)}, now=0)
        checker = RPChecker(m.trace, m.nvm)
        assert checker.durable_index(w) == 0
        assert checker.durable_index(missing) == float("inf")
