"""Persist-buffer-based enforcement: DPO and HOPS (Section 2.2.1).

The paper classifies prior full-barrier implementations into two
families: cache-based (our BB) and *persist-buffer-based*, which
"buffer and order writes in per-thread queues added alongside the
cache hierarchy, draining into buffer(s) adjacent to the NVM
controllers":

* **DPO** — delegated persist ordering (Kolli et al., MICRO'16): a
  single buffer at the NVM controller, which "may enforce a global
  order amongst potentially independent epochs from two different
  threads" — modeled as one global ordering chain across all cores.
* **HOPS** (Nalli et al., ASPLOS'17): per-thread buffers alongside the
  controllers — only each thread's own epochs are ordered, plus the
  cross-thread dependencies.

Both are *write-through* with respect to persistence: every store
enqueues a word-granular persist immediately (no cache coalescing —
the §4.2 coalescing argument is exactly about what these designs
give up). Cores never block on barriers; the only stall is
back-pressure when a core's buffer of unacknowledged persists fills
(``persist_buffer_entries``).

Ordering enforced (sufficient for RP):

* intra-thread: epochs (delimited by releases — the full-barrier
  placement of Section 6.2) drain in order, pipelined;
* inter-thread: a synchronizing acquire orders the acquirer's
  subsequent persists behind the releaser's buffer tail; any coherence
  downgrade adds the same (conservative BEP) edge.
"""

from __future__ import annotations

from typing import List, Optional

from repro.coherence.l1cache import CacheLine, MESIState
from repro.consistency.events import MemoryEvent
from repro.memory.nvm import PersistRecord
from repro.persistency.base import PersistencyMechanism


class _PersistBufferMechanism(PersistencyMechanism):
    """Common machinery of the persist-buffer designs."""

    name = "persist-buffer"
    enforces_rp = True
    #: True = one global ordering chain (DPO); False = per-thread (HOPS).
    global_ordering = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        cores = self.config.num_cores
        # Tail of each core's ordering chain (its last enqueued persist
        # of a *previous* epoch constrains the current epoch).
        self._epoch_tail: List[Optional[PersistRecord]] = [None] * cores
        # Youngest persist of the open epoch (becomes the tail at the
        # next barrier).
        self._open_tail: List[Optional[PersistRecord]] = [None] * cores
        # The single controller-side chain (DPO only).
        self._global_tail: Optional[PersistRecord] = None
        # Outstanding (unacked) persists per core, for back-pressure.
        self._outstanding_fifo: List[List[PersistRecord]] = [
            [] for _ in range(cores)
        ]

    # ------------------------------------------------------------------
    # Enqueue path
    # ------------------------------------------------------------------

    def _order_tail(self, core: int) -> Optional[PersistRecord]:
        if self.global_ordering:
            return self._global_tail
        return self._epoch_tail[core]

    def _enqueue(self, core: int, event: MemoryEvent, now: int) -> int:
        """Append a word persist to the core's buffer; returns stall."""
        stall = self._backpressure(core, now)
        line_addr = event.addr & ~(self.config.line_bytes - 1)
        record = self.nvm.issue_persist(
            line_addr, {event.addr: (event.value, event.event_id)},
            now + stall, ordered_after=self._order_tail(core))
        self._record_core[record.issue_seq] = core
        self.stats[core].persists_issued += 1
        self.stats[core].writebacks_total += 1
        obs = self.obs
        if obs is not None and obs.provenance is not None:
            obs.provenance.note_word_persist(core, record,
                                             trigger="store-buffer")
        self._outstanding_fifo[core].append(record)
        open_tail = self._open_tail[core]
        if open_tail is None or record.complete_time > open_tail.complete_time:
            self._open_tail[core] = record
        if self.global_ordering:
            if (self._global_tail is None
                    or record.complete_time
                    > self._global_tail.complete_time):
                self._global_tail = record
        return stall

    def _backpressure(self, core: int, now: int) -> int:
        """Stall while the buffer of unacked persists is full."""
        fifo = self._outstanding_fifo[core]
        self._outstanding_fifo[core] = fifo = [
            r for r in fifo if r.complete_time > now
        ]
        capacity = self.config.persist_buffer_entries
        if len(fifo) < capacity:
            return 0
        gate = sorted(r.complete_time for r in fifo)[len(fifo) - capacity]
        for record in fifo:
            if now < record.complete_time <= gate:
                self._mark_critical(record)
        return self._charge_stall(core, now, gate, reason="buffer-full")

    def _close_epoch(self, core: int) -> None:
        """Subsequent persists are ordered behind everything enqueued."""
        open_tail = self._open_tail[core]
        if open_tail is not None:
            tail = self._epoch_tail[core]
            if tail is None or open_tail.complete_time > tail.complete_time:
                self._epoch_tail[core] = open_tail
        self._open_tail[core] = None

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def on_write(self, core: int, line: CacheLine, event: MemoryEvent,
                 now: int) -> int:
        # Persistency is handled by the buffer; the cache carries no
        # persistency metadata (write-through persists).
        return self._enqueue(core, event, now)

    def on_release(self, core: int, line: CacheLine, event: MemoryEvent,
                   now: int) -> int:
        """Full barriers around the release (Section 6.2 placement)."""
        self.stats[core].barrier_count += 2
        self._close_epoch(core)                 # barrier before
        stall = self._enqueue(core, event, now)
        self._close_epoch(core)                 # barrier after
        return stall

    def on_acquire(self, core: int, event: MemoryEvent, now: int,
                   sync_source: Optional[int] = None) -> int:
        """A synchronizing acquire imports the releaser's ordering."""
        if sync_source is not None and sync_source != core:
            self._import_edge(core, sync_source)
        return 0

    def on_downgrade(self, owner: int, line: CacheLine,
                     to_state: MESIState, requester: int, now: int) -> int:
        """Conservative BEP inter-thread edge on any shared dependency;
        resolved lazily (no blocking) — the requester's future persists
        are ordered behind the owner's buffer."""
        self._import_edge(requester, owner)
        return 0

    def _import_edge(self, target: int, source: int) -> None:
        for tail in (self._epoch_tail[source], self._open_tail[source]):
            if tail is None:
                continue
            own = self._epoch_tail[target]
            if own is None or tail.complete_time > own.complete_time:
                self._epoch_tail[target] = tail

    def drain(self, now: int) -> int:
        # Everything is already enqueued with its ordering; the buffers
        # drain on their own.
        return 0


class DPOMechanism(_PersistBufferMechanism):
    """Delegated Persist Ordering: one buffer at the NVM controller,
    globally ordering epochs across threads."""

    name = "dpo"
    global_ordering = True


class HOPSMechanism(_PersistBufferMechanism):
    """HOPS: per-thread persist buffers at the controllers; only
    intra-thread epochs plus real dependencies are ordered."""

    name = "hops"
    global_ordering = False
