"""Ablation: BST write intensity — Natarajan-Mittal vs tombstone tree.

The paper's biggest LRP-over-BB gain (41%) is on the BST, which it
attributes to write intensity. This ablation runs the same workload on
two lock-free BSTs:

* ``bstree`` — the Natarajan-Mittal external tree the paper uses:
  every insert allocates a leaf + an internal node, every delete
  splices and frees both (flag/tag/splice CAS chain);
* ``bstree_tomb`` — a tombstone-delete tree: one alive-word CAS per
  delete, nodes never freed.

Expectation: the NM tree issues substantially more persists per op and
BB carries a visibly larger overhead on it, while LRP stays near NOP
on both — i.e. write intensity is what opens the LRP-vs-BB gap.
"""

from conftest import run_once

from repro.bench.configs import SCALED_CONFIG
from repro.core.simulator import simulate
from repro.workloads.harness import WorkloadSpec


def _run_pair():
    out = {}
    for structure in ("bstree", "bstree_tomb"):
        spec = WorkloadSpec(structure=structure, num_threads=16,
                            initial_size=16384, ops_per_thread=32,
                            seed=1)
        runs = {m: simulate(spec, mechanism=m, config=SCALED_CONFIG)
                for m in ("nop", "bb", "lrp")}
        nop = runs["nop"].makespan
        out[structure] = {
            "bb": runs["bb"].makespan / nop,
            "lrp": runs["lrp"].makespan / nop,
            "persists_per_op_bb":
                runs["bb"].stats.total_persists
                / max(1, runs["bb"].stats.total_ops),
        }
    return out


def test_bst_write_intensity_ablation(benchmark):
    result = run_once(benchmark, _run_pair)
    print("\nBST write-intensity ablation:", result)
    for structure, row in result.items():
        for key, value in row.items():
            benchmark.extra_info[f"{structure}/{key}"] = round(value, 3)

    nm, tomb = result["bstree"], result["bstree_tomb"]
    # The NM tree really is more write-intensive.
    assert nm["persists_per_op_bb"] > tomb["persists_per_op_bb"]
    # LRP stays near NOP on both trees.
    assert nm["lrp"] < 1.10
    assert tomb["lrp"] < 1.10
    # BB's overhead is larger on the write-intensive tree.
    assert nm["bb"] >= tomb["bb"] - 0.02
