"""BB: Release Persistency through state-of-the-art buffered barriers.

Models the cache-based buffered-epoch-persistency barrier of Joshi et
al. [MICRO'15] as used by the paper's BB comparison point (Section 6.2):

* a barrier is inserted before each release and after each release (and
  before an acquire, if the thread has buffered writes);
* the barrier does **not** stall: it closes the current epoch and
  *proactively flushes* it — persists are issued immediately, chained
  after the previous epoch's ack so epochs persist in order;
* costs appear only on **conflicts** (Section 2.2.1):

  - *intra-thread*: writing a cache line whose previous-epoch flush is
    still in flight stalls until the ack (writes of different epochs
    cannot coalesce in one dirty line — Figure 2a);
  - *intra-thread*: evicting a dirty line of the open epoch persists it
    (after all older epochs) on the critical path of the demand miss;
  - *inter-thread*: a remote request for a dirty/in-flight line blocks
    the requester until the source's current epoch is durable.
"""

from __future__ import annotations

from typing import Dict, List

from repro.coherence.l1cache import CacheLine, MESIState
from repro.consistency.events import MemoryEvent
from repro.persistency.base import PersistencyMechanism


class BBMechanism(PersistencyMechanism):
    """Buffered full persist barrier with proactive flushing."""

    name = "bb"
    enforces_rp = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        cores = self.config.num_cores
        self._epoch: List[int] = [1] * cores
        # Dirty lines of the open (not yet flushed) epoch.
        self._open: List[Dict[int, CacheLine]] = [{} for _ in range(cores)]
        # The latest-completing persist of the flushed epochs: the next
        # epoch's persists are pipeline-ordered after it, and a remote
        # requester waiting for the source epoch waits for its ack.
        self._chain_tail: List[object] = [None] * cores
        # Ack times of recently closed epochs: a core may only have a
        # bounded number outstanding (the hardware's epoch-tag window).
        self._epoch_acks: List[List[int]] = [[] for _ in range(cores)]

    # ------------------------------------------------------------------
    # Stores / acquires
    # ------------------------------------------------------------------

    def on_write(self, core: int, line: CacheLine, event: MemoryEvent,
                 now: int) -> int:
        stall = self._wait_if_inflight(core, line.addr, now)
        self._apply_store(core, line, event, epoch=self._epoch[core])
        self._open[core][line.addr] = line
        return stall

    def on_release(self, core: int, line: CacheLine, event: MemoryEvent,
                   now: int) -> int:
        # Barrier before the release (proactive flush) ...
        stall = self._barrier(core, now)
        # ... the release write (cannot land on a line mid-flush) ...
        stall += self._wait_if_inflight(core, line.addr, now + stall)
        self._apply_store(core, line, event, epoch=self._epoch[core])
        self._open[core][line.addr] = line
        # ... and the barrier after the release.
        stall += self._barrier(core, now + stall)
        return stall

    def on_acquire(self, core: int, event: MemoryEvent, now: int,
                   sync_source=None) -> int:
        if self._open[core]:
            return self._barrier(core, now)
        return 0

    # ------------------------------------------------------------------
    # Coherence-triggered persists
    # ------------------------------------------------------------------

    def on_evict(self, core: int, line: CacheLine, now: int) -> int:
        """Evicting an open-epoch dirty line persists it on the miss path."""
        if not line.pending_words:
            self._block_if_inflight(core, line.addr, now)
            return 0
        self._open[core].pop(line.addr, None)
        if self.config.bb_pipelined_epochs:
            record = self._issue_line(core, line, now,
                                      ordered_after=self._chain_tail[core],
                                      trigger="eviction")
        else:
            record = self._issue_line(core, line, now,
                                      after=self._chain_ack(core),
                                      trigger="eviction")
        self._advance_tail(core, record)
        return self._wait_for(core, now, [record], reason="eviction")

    def on_downgrade(self, owner: int, line: CacheLine,
                     to_state: MESIState, requester: int, now: int) -> int:
        """Inter-thread dependency: requester waits for the source epoch."""
        if line.pending_words:
            ready = self._flush_open(owner, now, trigger="downgrade",
                                     edge=(owner, requester))
            if ready > now:
                self.fabric.block_line_until(line.addr, ready)
            return self._wait_until_marked(requester, now, ready, owner)
        inflight = self._inflight_record(owner, line.addr, now)
        if inflight is not None:
            return self._wait_for(requester, now, [inflight],
                                  block_line=line.addr,
                                  reason="inter-thread")
        return 0

    # ------------------------------------------------------------------
    # The buffered barrier
    # ------------------------------------------------------------------

    def _barrier(self, core: int, now: int) -> int:
        """Close the open epoch and proactively flush it.

        Normally free; stalls only when the core exceeds its bounded
        window of outstanding (unacknowledged) epochs — the hardware
        can only tag a limited number of in-flight epochs, so a burst
        of barriers throttles on the oldest epoch's drain.
        """
        self.stats[core].barrier_count += 1
        if self.obs is not None:
            self.obs.count("bb.barriers")
            self.obs.observe("bb.epoch_lines", len(self._open[core]))
        epoch_ack = self._flush_open(core, now)
        self._epoch[core] += 1
        acks = self._epoch_acks[core]
        acks.append(epoch_ack)
        unacked = [t for t in acks if t > now]
        self._epoch_acks[core] = unacked
        window = self.config.bb_max_outstanding_epochs
        if len(unacked) <= window:
            return 0
        gate = sorted(unacked)[len(unacked) - window - 1]
        return self._wait_until(core, now, gate, reason="epoch-window")

    def _flush_open(self, core: int, now: int,
                    trigger: str = "epoch-drain", edge=None) -> int:
        """Issue persists for the open epoch, gated on the older epochs.

        Epoch ordering in the BB hardware is enforced with per-epoch
        outstanding-flush counters: the next epoch's flush *starts*
        once the previous epoch's acks have all arrived (Joshi et al.'s
        buffered epoch drain). This serial drain of whole epochs is the
        cost of full-barrier over-ordering that LRP's one-sided
        barriers avoid — the crux of the paper's Section 4.2 argument.

        Returns the time at which everything flushed so far is durable.
        """
        flushed = len(self._open[core])
        open_lines = list(self._open[core].values())
        if self.config.bb_pipelined_epochs:
            records = self._issue_lines(core, open_lines, now,
                                        ordered_after=self._chain_tail[core],
                                        trigger=trigger, edge=edge)
        else:
            records = self._issue_lines(core, open_lines, now,
                                        after=self._chain_ack(core),
                                        trigger=trigger, edge=edge)
        for record in records:
            self._advance_tail(core, record)
        self._open[core].clear()
        ack = self._chain_ack(core)
        if self.obs is not None and flushed:
            self.obs.count("bb.epoch_flushes")
            self.obs.tick(f"bb.epoch_drains.c{core}", now)
            self.obs.span(f"epochs-c{core}", f"epoch {self._epoch[core]}",
                          now, max(0, ack - now), cat="epoch-drain",
                          args={"lines": flushed})
        return ack

    def _advance_tail(self, core: int, record) -> None:
        if record is None:
            return
        tail = self._chain_tail[core]
        if tail is None or record.complete_time > tail.complete_time:
            self._chain_tail[core] = record

    def _chain_ack(self, core: int) -> int:
        tail = self._chain_tail[core]
        return 0 if tail is None else tail.complete_time

    def _wait_if_inflight(self, core: int, line_addr: int, now: int) -> int:
        """Stall a write targeting a line whose flush is in flight."""
        record = self._inflight_record(core, line_addr, now)
        if record is None:
            return 0
        return self._wait_for(core, now, [record],
                              reason="write-conflict")

    def _wait_until_marked(self, waiter: int, now: int, ready: int,
                           issuer: int) -> int:
        """Wait for an epoch's durability, marking waited-on persists."""
        for record in self._inflight[issuer].values():
            if now < record.complete_time <= ready:
                self._mark_critical(record)
        return self._wait_until(waiter, now, ready,
                                reason="inter-thread")

    def drain(self, now: int) -> int:
        ready = now
        for core in range(self.config.num_cores):
            ready = max(ready, self._flush_open(core, now,
                                                trigger="drain"))
        return max(0, ready - now)
