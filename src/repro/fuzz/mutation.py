"""Schedule mutations: seeded priority nudges for the scheduler.

The simulator's scheduler always runs the runnable thread with the
smallest ``(clock, thread_id)`` key. A :class:`ScheduleMutation`
perturbs that deterministically: at a given *decision index* (the
machine-wide count of executed operations), pick the ``rank``-th
smallest runnable thread instead of the smallest. A mutation is just a
sorted tuple of ``(decision_index, rank)`` nudges — tiny, canonical,
diffable, and trivially shrinkable by dropping nudges.

Mutations are derived exclusively from RNGs built with
:func:`repro.common.rng.make_rng`, so a campaign seed reproduces the
exact mutation sequence on any machine.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from typing import Dict, Tuple

Nudge = Tuple[int, int]

#: Largest rank a nudge may request; ranks wrap modulo the number of
#: runnable threads at the decision, so small ranks stay meaningful
#: even near the end of a run.
MAX_RANK = 3

#: Cap on nudges per mutation: enough to steer an interleaving into a
#: rare corner, small enough that shrinking stays fast.
MAX_NUDGES = 12

#: Consecutive decisions a burst mutation covers. Most single nudges
#: are no-ops (threads' logical clocks make the schedule insensitive
#: except at contended decisions), so the mutator also fires bursts of
#: adjacent nudges that perturb a whole window of decisions at once;
#: the shrinker then strips the nudges that did not matter.
BURST_SPAN = 4


@dataclasses.dataclass(frozen=True)
class ScheduleMutation:
    """A canonical (sorted, deduplicated) set of priority nudges."""

    nudges: Tuple[Nudge, ...] = ()

    @staticmethod
    def make(nudges) -> "ScheduleMutation":
        """Canonicalize: sort by decision index, one nudge per index."""
        by_index: Dict[int, int] = {}
        for index, rank in nudges:
            by_index[int(index)] = int(rank)
        return ScheduleMutation(tuple(sorted(by_index.items())))

    def as_dict(self) -> Dict[int, int]:
        """The mapping :meth:`Scheduler.set_nudges` consumes."""
        return dict(self.nudges)

    def digest(self) -> str:
        """Stable content digest (corpus file naming)."""
        text = repr(self.nudges).encode("ascii")
        return hashlib.sha256(text).hexdigest()[:16]

    def __len__(self) -> int:
        return len(self.nudges)


def mutate(parent: ScheduleMutation, rng: random.Random,
           decision_space: int) -> ScheduleMutation:
    """One mutation step: perturb ``parent`` into a child mutation.

    Operators (chosen by ``rng``): add a nudge at a fresh decision
    index, add a *burst* of adjacent nudges (a whole window of
    perturbed decisions — single nudges are usually no-ops away from
    contended decisions), drop a nudge, re-rank a nudge, or move a
    nudge to a nearby decision. ``decision_space`` bounds the index
    range — the executed op count of the unperturbed baseline run
    (nudges past the end of a shorter perturbed run are harmless
    no-ops).
    """
    if decision_space < 1:
        return parent
    nudges = list(parent.nudges)
    ops = ["add", "burst"]
    if nudges:
        ops += ["drop", "rerank", "shift"]
    op = rng.choice(ops)
    if op in ("add", "burst") and len(nudges) >= MAX_NUDGES:
        op = "rerank" if nudges else "add"
    if op == "add":
        index = rng.randrange(decision_space)
        rank = rng.randint(1, MAX_RANK)
        nudges.append((index, rank))
    elif op == "burst":
        start = rng.randrange(decision_space)
        span = min(BURST_SPAN, MAX_NUDGES - len(nudges))
        for offset in range(span):
            index = start + offset
            if index < decision_space:
                nudges.append((index, rng.randint(1, MAX_RANK)))
    elif op == "drop":
        nudges.pop(rng.randrange(len(nudges)))
    elif op == "rerank":
        pos = rng.randrange(len(nudges))
        index, _rank = nudges[pos]
        nudges[pos] = (index, rng.randint(1, MAX_RANK))
    else:  # shift
        pos = rng.randrange(len(nudges))
        index, rank = nudges[pos]
        delta = rng.randint(-8, 8) or 1
        nudges[pos] = (max(0, min(decision_space - 1, index + delta)),
                       rank)
    return ScheduleMutation.make(nudges)
