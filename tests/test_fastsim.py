"""Fast-vs-reference equivalence matrix for the batch engine.

The batch engine (:mod:`repro.core.fastsim`) promises the *same
execution bit for bit* as the reference scheduler loop — same
makespans, same per-core stats, same persist streams, same memory
images, same recorded events. These tests pin that promise across
every persistency mechanism and every workload, with trace recording
both off (the figures configuration, where the inline read path and
the event-free acquire contract are active) and on (every MemoryEvent
must still be built).

They also pin the engine's refusals: schedule nudges, observers and
the ``max_ops`` valve must take the reference path, so fuzz replays
and coverage maps cannot diverge no matter what ``REPRO_FASTSIM`` says.
"""

import dataclasses
import hashlib

import pytest

from repro.common.params import MachineConfig
from repro.core import fastsim
from repro.core.simulator import clear_setup_cache, simulate
from repro.lfds import WORKLOAD_NAMES
from repro.obs import Observer, coverage_from_obs
from repro.persistency import MECHANISMS
from repro.workloads.harness import WorkloadSpec

ALL_MECHANISMS = ["nop", "sb", "bb", "arp", "dpo", "hops", "lrp"]

#: Tiny but adversarial: 2-way 1KB L1s force constant misses,
#: evictions, upgrades and cross-core downgrades.
SMALL_CONFIG = dict(l1_size_bytes=1024, l1_assoc=2,
                    num_memory_controllers=2, compute_cycles_per_op=2)


def _spec(structure, seed=7, ops=10):
    return WorkloadSpec(structure=structure, num_threads=4,
                        initial_size=32, ops_per_thread=ops, seed=seed)


def _fingerprint(result, record):
    """Everything observable about a run, hashed."""
    h = hashlib.sha256()
    h.update(repr((result.makespan, result.executed_ops)).encode())
    h.update(repr(dataclasses.asdict(result.stats)).encode())
    for core_stats in result.machine.stats:
        h.update(repr(dataclasses.asdict(core_stats)).encode())
    for rec in result.nvm.persist_log():
        h.update(repr(rec).encode())
    h.update(repr(sorted(result.trace.memory_snapshot().items())).encode())
    h.update(repr(result.outcomes).encode())
    if record:
        for event in result.trace.events:
            h.update(repr(event._key()).encode())
    return h.hexdigest()


def _run(structure, mechanism, *, fast, record, monkeypatch,
         observer=None, nudges=None, no_numpy=False, ops=10):
    monkeypatch.setenv("REPRO_FASTSIM", "1" if fast else "0")
    if no_numpy:
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    else:
        monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
    clear_setup_cache()
    config = MachineConfig(record_trace=record, **SMALL_CONFIG)
    return simulate(_spec(structure, ops=ops), mechanism, config,
                    observer=observer, schedule_nudges=nudges)


@pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
@pytest.mark.parametrize("structure", WORKLOAD_NAMES)
@pytest.mark.parametrize("record", [False, True],
                         ids=["norecord", "record"])
def test_fast_matches_reference(structure, mechanism, record,
                                monkeypatch):
    fast = _run(structure, mechanism, fast=True, record=record,
                monkeypatch=monkeypatch)
    ref = _run(structure, mechanism, fast=False, record=record,
               monkeypatch=monkeypatch)
    assert _fingerprint(fast, record) == _fingerprint(ref, record)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_fast_matches_reference_across_seeds(seed, monkeypatch):
    for fast in (True, False):
        monkeypatch.setenv("REPRO_FASTSIM", "1" if fast else "0")
        clear_setup_cache()
        config = MachineConfig(record_trace=False, **SMALL_CONFIG)
        result = simulate(_spec("hashmap", seed=seed), "lrp", config)
        if fast:
            want = _fingerprint(result, record=False)
        else:
            assert _fingerprint(result, record=False) == want


# ----------------------------------------------------------------------
# Refusals: observation channels force the reference path
# ----------------------------------------------------------------------

def test_observer_and_provenance_identical_either_way(monkeypatch):
    """Coverage maps and provenance are REPRO_FASTSIM-invariant."""
    exports = []
    for fast in (True, False):
        obs = Observer(provenance=True)
        result = _run("hashmap", "lrp", fast=fast, record=False,
                      monkeypatch=monkeypatch, observer=obs)
        exports.append((_fingerprint(result, record=False),
                        obs.export()))
    (fp_fast, export_fast), (fp_ref, export_ref) = exports
    assert fp_fast == fp_ref
    assert export_fast["metrics"] == export_ref["metrics"]
    cov_fast = coverage_from_obs(export_fast)
    cov_ref = coverage_from_obs(export_ref)
    assert cov_fast.new_features(cov_ref) == 0
    assert cov_ref.new_features(cov_fast) == 0


def test_fuzz_nudges_identical_either_way(monkeypatch):
    """A nudged (fuzz-replay) schedule is REPRO_FASTSIM-invariant."""
    fingerprints = []
    for fast in (True, False):
        result = _run("queue", "lrp", fast=fast, record=True,
                      monkeypatch=monkeypatch, nudges={0: 3, 5: 1, 9: 2})
        fingerprints.append(_fingerprint(result, record=True))
    assert fingerprints[0] == fingerprints[1]


def test_eligibility_refusals(monkeypatch):
    monkeypatch.setenv("REPRO_FASTSIM", "1")

    class FakeMachine:
        obs = None

    class FakeScheduler:
        _nudges = None
        max_ops = None
        machine = FakeMachine()

    sched = FakeScheduler()
    assert fastsim.eligible(sched)
    sched.max_ops = 100
    assert not fastsim.eligible(sched)
    sched.max_ops = None
    sched._nudges = {0: 1}
    assert not fastsim.eligible(sched)
    sched._nudges = None
    sched.machine.obs = object()
    assert not fastsim.eligible(sched)
    sched.machine.obs = None
    monkeypatch.setenv("REPRO_FASTSIM", "0")
    assert not fastsim.eligible(sched)


def test_scheduler_delegates_to_fastsim(monkeypatch):
    """Scheduler.run actually uses the batch engine when eligible."""
    calls = []
    original = fastsim.run

    def spy(scheduler):
        calls.append(scheduler)
        return original(scheduler)

    monkeypatch.setattr(fastsim, "run", spy)
    monkeypatch.setenv("REPRO_FASTSIM", "1")
    clear_setup_cache()
    config = MachineConfig(record_trace=False, **SMALL_CONFIG)
    simulate(_spec("hashmap"), "lrp", config)
    assert calls


# ----------------------------------------------------------------------
# The event-free acquire contract
# ----------------------------------------------------------------------

def test_every_mechanism_declares_acquire_ignores_event():
    """The batch engine passes event=None to on_acquire when recording
    is off; each mechanism class must uphold (and declare) that its
    hook never dereferences the event. The equivalence matrix above
    would catch a stale flag behaviorally; this pins the declaration."""
    for name, cls in MECHANISMS.items():
        assert cls.acquire_ignores_event is True, name


# ----------------------------------------------------------------------
# numpy-optional: both table backends are bit-identical
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mechanism", ["bb", "lrp"])
def test_numpy_fallback_identical(mechanism, monkeypatch):
    """REPRO_NO_NUMPY=1 (pure-array fallback) changes nothing."""
    with_numpy = _run("hashmap", mechanism, fast=True, record=False,
                      monkeypatch=monkeypatch, no_numpy=False)
    fp_with = _fingerprint(with_numpy, record=False)
    without = _run("hashmap", mechanism, fast=True, record=False,
                   monkeypatch=monkeypatch, no_numpy=True)
    assert fp_with == _fingerprint(without, record=False)


def test_paper_scale_sizing():
    """--scale paper runs the paper's element counts outright."""
    from repro.bench.configs import SCALES, figure_spec

    assert "paper" in SCALES
    for structure in ("hashmap", "bstree", "skiplist"):
        spec = figure_spec(structure, scale="paper")
        assert spec.initial_size >= 65536, structure
        assert spec.num_threads == 32
        assert spec.ops_per_thread > \
            figure_spec(structure, scale="full").ops_per_thread


def test_persist_batch_matches_sequential(monkeypatch):
    """issue_persist_batch == per-record issue_persist, both backends."""
    from repro.memory.nvm import NVMController

    config = MachineConfig(**SMALL_CONFIG)
    items = [(addr * config.line_bytes,
              {addr * config.line_bytes: (addr, 0)})
             for addr in range(1, 41)]   # >=16 lines: vectorized path
    for no_numpy in (False, True):
        if no_numpy:
            monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        else:
            monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
        batched = NVMController(config)
        records = batched.issue_persist_batch(items, 100, after=120)
        sequential = NVMController(config)
        expected = [sequential.issue_persist(addr, words, 100, after=120)
                    for addr, words in items]
        assert ([(r.line_addr, r.issue_time, r.complete_time)
                 for r in records]
                == [(r.line_addr, r.issue_time, r.complete_time)
                    for r in expected])
