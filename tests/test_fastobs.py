"""Batched telemetry (FastObs) reconciliation and edge-case pins.

The batch engine used to refuse any observed run; now metrics and
timeline observers ride the fast path through the flat-table
accumulator of :mod:`repro.obs.fastobs`. These tests pin the contract
that makes that safe:

* the full 7-mechanism x 5-structure matrix produces *identical*
  ``Observer.export()`` dicts (counter for counter, window for window)
  and identical makespans on both engines, with the fast run actually
  staying on the fast path;
* the quick-scale Figure 5 grid keeps every one of its 20 makespans
  byte-identical with telemetry on;
* refusals stay machine-readable: trace/provenance observers fall back
  with the right :class:`~repro.core.fastsim.Refusal` value threaded
  onto ``SimulationResult.fastsim_fallback``, metrics/timeline
  observers don't fall back at all;
* the merge arithmetic FastObs leans on — additive timeline folds,
  histogram folding including the ``clamped`` tally — cannot be told
  apart from streaming observation.
"""

import pytest

from repro.common.params import MachineConfig
from repro.core import fastsim
from repro.core.simulator import clear_setup_cache, simulate
from repro.obs import Observer
from repro.obs.fastobs import fold_histogram
from repro.obs.metrics import Histogram
from repro.obs.timeline import SPARK_BLOCKS, TimelineSampler, sparkline
from repro.workloads.harness import WorkloadSpec

ALL_MECHANISMS = ("nop", "sb", "bb", "arp", "dpo", "hops", "lrp")
ALL_STRUCTURES = ("linkedlist", "hashmap", "bstree", "skiplist", "queue")

#: Tiny but adversarial: 2-way 1KB L1s force constant misses,
#: evictions, upgrades and cross-core downgrades, so every FastObs
#: table (coherence slots, occupancy/block-wait histograms, downgrade/
#: eviction timeline windows) sees traffic.
SMALL_CONFIG = dict(num_cores=4, l1_size_bytes=1024, l1_assoc=2,
                    num_memory_controllers=2, compute_cycles_per_op=2)


def _small_spec(structure):
    return WorkloadSpec(structure=structure, num_threads=4,
                        initial_size=64, ops_per_thread=12, seed=1)


def _observed_run(structure, mechanism, *, fast, interval, monkeypatch,
                  config=None):
    monkeypatch.setenv("REPRO_FASTSIM", "1" if fast else "0")
    clear_setup_cache()
    observer = (Observer(timeline_interval=interval)
                if interval else Observer())
    result = simulate(_small_spec(structure), mechanism,
                      config or MachineConfig(**SMALL_CONFIG),
                      observer=observer)
    return result, observer


# ----------------------------------------------------------------------
# Exact reconciliation: fast export == reference export
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_fast_export_identical(structure, mechanism, monkeypatch):
    """Counter-for-counter, window-for-window equality, fast path on."""
    ref, ref_obs = _observed_run(structure, mechanism, fast=False,
                                 interval=500, monkeypatch=monkeypatch)
    fst, fst_obs = _observed_run(structure, mechanism, fast=True,
                                 interval=500, monkeypatch=monkeypatch)
    assert fst.fastsim_fallback is None
    assert fst.makespan == ref.makespan
    assert fst_obs.export() == ref_obs.export()


@pytest.mark.parametrize("interval", [None, 1, 7, 100000])
def test_fast_export_identical_across_intervals(interval, monkeypatch):
    """Metrics-only plus pathological window widths: 1-cycle windows
    (every quantum straddles), 7 (odd, never divides a quantum), and
    one window swallowing the whole run."""
    for mechanism in ("lrp", "hops"):
        ref, ref_obs = _observed_run("hashmap", mechanism, fast=False,
                                     interval=interval,
                                     monkeypatch=monkeypatch)
        fst, fst_obs = _observed_run("hashmap", mechanism, fast=True,
                                     interval=interval,
                                     monkeypatch=monkeypatch)
        assert fst.fastsim_fallback is None
        assert fst.makespan == ref.makespan
        assert fst_obs.export() == ref_obs.export()


@pytest.mark.slow
def test_fig5_quick_makespans_identical_with_telemetry(monkeypatch):
    """All 20 quick-scale Figure 5 makespans, telemetry ON, both
    engines byte-identical — the paper's headline grid must not shift
    by a cycle when it is being watched."""
    from repro.bench.configs import (SCALED_CONFIG, bench_config,
                                     figure_spec)

    config = bench_config(SCALED_CONFIG)
    cells = [(workload, mechanism)
             for workload in ALL_STRUCTURES
             for mechanism in ("nop", "sb", "bb", "lrp")]
    makespans = {}
    for fast in (True, False):
        monkeypatch.setenv("REPRO_FASTSIM", "1" if fast else "0")
        clear_setup_cache()
        for workload, mechanism in cells:
            observer = Observer(timeline_interval=1000)
            result = simulate(figure_spec(workload, scale="quick"),
                              mechanism, config, observer=observer)
            if fast:
                assert result.fastsim_fallback is None, (workload,
                                                         mechanism)
                makespans[(workload, mechanism)] = result.makespan
            else:
                assert makespans[(workload, mechanism)] \
                    == result.makespan, (workload, mechanism)
    assert len(makespans) == 20
    clear_setup_cache()


# ----------------------------------------------------------------------
# Refusals: machine-readable reasons, threaded onto the result
# ----------------------------------------------------------------------

def test_metrics_observer_takes_fast_path(monkeypatch):
    result, _ = _observed_run("hashmap", "lrp", fast=True,
                              interval=None, monkeypatch=monkeypatch)
    assert result.fastsim_fallback is None


def test_trace_observer_falls_back_with_reason(monkeypatch):
    monkeypatch.setenv("REPRO_FASTSIM", "1")
    clear_setup_cache()
    result = simulate(_small_spec("hashmap"), "lrp",
                      MachineConfig(**SMALL_CONFIG),
                      observer=Observer(trace=True))
    assert result.fastsim_fallback \
        == fastsim.Refusal.OBSERVER_TRACE.value == "observer-trace"


def test_provenance_observer_falls_back_with_reason(monkeypatch):
    monkeypatch.setenv("REPRO_FASTSIM", "1")
    clear_setup_cache()
    result = simulate(_small_spec("hashmap"), "lrp",
                      MachineConfig(**SMALL_CONFIG),
                      observer=Observer(provenance=True))
    assert result.fastsim_fallback \
        == fastsim.Refusal.OBSERVER_PROVENANCE.value \
        == "observer-provenance"


def test_env_disabled_reason(monkeypatch):
    monkeypatch.setenv("REPRO_FASTSIM", "0")
    clear_setup_cache()
    result = simulate(_small_spec("hashmap"), "lrp",
                      MachineConfig(**SMALL_CONFIG))
    assert result.fastsim_fallback \
        == fastsim.Refusal.ENV_DISABLED.value == "env-disabled"
    clear_setup_cache()


def test_unknown_observer_object_refused(monkeypatch):
    """Anything without the Observer surface forces the reference loop
    — an opaque observer could be watching per-op state FastObs never
    materializes."""
    monkeypatch.setenv("REPRO_FASTSIM", "1")

    class FakeMachine:
        obs = object()

    class FakeScheduler:
        _nudges = None
        max_ops = None
        machine = FakeMachine()

    assert fastsim.check(FakeScheduler()) \
        is fastsim.Refusal.OBSERVER_UNKNOWN


def test_refusal_debug_print(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_FASTSIM", "1")
    monkeypatch.setenv("REPRO_FASTSIM_DEBUG", "1")
    clear_setup_cache()
    simulate(_small_spec("hashmap"), "lrp", MachineConfig(**SMALL_CONFIG),
             observer=Observer(trace=True))
    assert "observer-trace" in capsys.readouterr().err


def test_fallback_reason_reaches_run_summary(monkeypatch):
    from repro.exp.runner import Job, execute_job

    monkeypatch.setenv("REPRO_FASTSIM", "1")
    monkeypatch.delenv("REPRO_HEARTBEAT_DIR", raising=False)
    clear_setup_cache()
    job = Job(spec=_small_spec("hashmap"), mechanism="lrp",
              config=MachineConfig(**SMALL_CONFIG), collect_trace=True)
    summary = execute_job(job)
    assert summary.fastsim_fallback == "observer-trace"
    clear_setup_cache()


# ----------------------------------------------------------------------
# Merge arithmetic: histogram folding and timeline window merges
# ----------------------------------------------------------------------

def test_fold_histogram_matches_streaming():
    """Batched (value, count) folding == calling observe() count times,
    including min/max/total/bucket state."""
    values = [1, 1, 2, 3, 5, 8, 13, 21, 0, 7, 7, 7]
    streamed = Histogram()
    for value in values:
        streamed.observe(value)
    pairs = {}
    for value in values:
        pairs[value] = pairs.get(value, 0) + 1
    folded = Histogram()
    fold_histogram(folded, sorted(pairs.items()))
    assert folded.to_dict() == streamed.to_dict()


def test_fold_histogram_propagates_clamped():
    """Negative observations keep their clamped tally through a fold."""
    streamed = Histogram()
    for value in (-3, -3, 4, -1, 9):
        streamed.observe(value)
    folded = Histogram()
    fold_histogram(folded, [(-3, 2), (-1, 1), (4, 1), (9, 1)])
    assert folded.clamped == streamed.clamped == 3
    assert folded.to_dict() == streamed.to_dict()


def test_fold_histogram_skips_zero_counts():
    hist = Histogram()
    fold_histogram(hist, [(5, 0), (7, 0)])
    assert hist.count == 0
    assert hist.min is None and hist.max is None
    assert not hist.buckets


def test_timeline_merge_disjoint_windows():
    """Merging samplers whose windows never overlap is a pure union."""
    early = TimelineSampler(100)
    early.tick("compute.c0", 50, 7)
    early.tick("compute.c0", 150, 3)
    late = TimelineSampler(100)
    late.tick("compute.c0", 950, 11)
    late.gauge("pqdepth.c0", 950, 4)
    early.merge(late)
    assert early.series["compute.c0"] == {0: 7, 1: 3, 9: 11}
    assert early.gauges["pqdepth.c0"] == {9: 4}
    # Windows 2..8 were never touched: dense() zero-fills them.
    assert early.dense("compute.c0") == [7, 3, 0, 0, 0, 0, 0, 0, 0, 11]


def test_timeline_merge_overlapping_windows_add_and_max():
    base = TimelineSampler(100)
    base.tick("mem.c1", 120, 5)
    base.gauge("pqdepth.c1", 120, 9)
    other = TimelineSampler(100)
    other.tick("mem.c1", 130, 6)
    other.gauge("pqdepth.c1", 130, 2)
    base.merge(other)
    assert base.series["mem.c1"] == {1: 11}
    assert base.gauges["pqdepth.c1"] == {1: 9}


def test_timeline_merge_rejects_interval_mismatch():
    with pytest.raises(ValueError):
        TimelineSampler(100).merge(TimelineSampler(200))


def test_sparkline_empty_and_all_zero_windows():
    """A gap of empty windows renders as the flat baseline glyph, an
    empty series as the empty string — never an exception."""
    assert sparkline([]) == ""
    assert sparkline([0, 0, 0, 0]) == SPARK_BLOCKS[0] * 4
    # Zero windows inside a live series stay at the baseline.
    line = sparkline([0, 8, 0, 8, 0])
    assert line[0] == line[2] == line[4] == SPARK_BLOCKS[0]
    assert line[1] == line[3] != SPARK_BLOCKS[0]


def test_flush_is_idempotent_and_additive(monkeypatch):
    """A defensive double flush cannot double-count, and counters other
    components already wrote to the Observer survive the fold."""
    from repro.obs.fastobs import FastObs

    observer = Observer(timeline_interval=100)
    observer.metrics.count("persist.lines", 42)
    fobs = FastObs(observer, num_cores=2, assoc=2)
    fobs.ops[0] = 3
    fobs.mem_ops[0] = 2
    fobs.tl_compute_window[0] = 1
    fobs.tl_compute_acc[0] = 12
    fobs.tl_mem_out[0].append((0, 9))
    fobs.flush()
    fobs.flush()
    counters = observer.metrics.counters
    assert counters["persist.lines"] == 42
    assert counters["sched.compute_cycles.c0"] == 12
    assert counters["sched.mem_cycles.c0"] == 9
    assert observer.timeline.series["compute.c0"] == {1: 12}
    assert observer.timeline.series["mem.c0"] == {0: 9}
    # Core 1 never ran an op: no counters may spring into existence.
    assert "sched.compute_cycles.c1" not in counters
    assert "sched.mem_cycles.c1" not in counters
