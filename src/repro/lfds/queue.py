"""The ``queue`` workload: the Michael–Scott lock-free FIFO queue.

The classic nonblocking queue [PODC'96], exactly as the paper uses it:
a dummy-headed singly-linked list with ``head``/``tail`` pointer words;
enqueue links at the tail with a release-CAS and (with helping) swings
the tail; dequeue swings the head with a release-CAS.

Persistency pattern: enqueue writes the node's fields with plain
stores, then publishes with a single release-CAS of ``tail.next`` —
the Figure 1 insert pattern in its purest form.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.consistency.events import MemOrder
from repro.core.thread import cas, load, store
from repro.lfds.base import (
    LogFreeStructure,
    NULL,
    OpGen,
    RecoveryReport,
    Word,
    alloc_header_write,
    field,
    free_header_write,
    header_addr,
)
from repro.memory.address import HeapAllocator

# Node layout: [value, next]
VALUE, NEXT = 0, 1
NODE_WORDS = 2


class MichaelScottQueue(LogFreeStructure):
    """Nonblocking FIFO queue (Michael & Scott, PODC'96)."""

    name = "queue"

    def __init__(self, allocator: HeapAllocator,
                 max_nodes: int = 1 << 22) -> None:
        super().__init__(allocator)
        self.head_ptr = allocator.alloc(1, line_align=True)
        self.tail_ptr = allocator.alloc(1, line_align=True)
        self._max_nodes = max_nodes
        self._initial_dummy: Optional[int] = None

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def enqueue(self, value: int, tid=None) -> OpGen:
        node = self._alloc_node(NODE_WORDS, tid)
        yield alloc_header_write(node, NODE_WORDS)
        yield store(field(node, VALUE), value)
        yield store(field(node, NEXT), NULL)
        while True:
            last = yield load(self.tail_ptr, MemOrder.ACQUIRE)
            nxt = yield load(field(last, NEXT), MemOrder.ACQUIRE)
            tail_check = yield load(self.tail_ptr, MemOrder.ACQUIRE)
            if last != tail_check:
                continue
            if nxt == NULL:
                ok, _ = yield cas(field(last, NEXT), NULL, node,
                                  MemOrder.RELEASE)
                if ok:
                    # Swing the tail (best effort; others may help).
                    yield cas(self.tail_ptr, last, node, MemOrder.RELEASE)
                    return True
            else:
                # Help a lagging enqueuer swing the tail.
                yield cas(self.tail_ptr, last, nxt, MemOrder.RELEASE)

    def dequeue(self) -> OpGen:
        """Returns the dequeued value, or None if the queue is empty."""
        while True:
            first = yield load(self.head_ptr, MemOrder.ACQUIRE)
            last = yield load(self.tail_ptr, MemOrder.ACQUIRE)
            nxt = yield load(field(first, NEXT), MemOrder.ACQUIRE)
            head_check = yield load(self.head_ptr, MemOrder.ACQUIRE)
            if first != head_check:
                continue
            if first == last:
                if nxt == NULL:
                    return None
                yield cas(self.tail_ptr, last, nxt, MemOrder.RELEASE)
                continue
            value = yield load(field(nxt, VALUE))
            ok, _ = yield cas(self.head_ptr, first, nxt, MemOrder.RELEASE)
            if ok:
                # The retired sentinel is freed (malloc-metadata store).
                yield free_header_write(first)
                return value

    # The harness drives every LFD through insert/delete/contains.
    def insert(self, key: int, value: int, tid=None) -> OpGen:
        result = yield from self.enqueue(value, tid)
        return result

    def delete(self, key: int) -> OpGen:
        result = yield from self.dequeue()
        return result is not None

    def contains(self, key: int) -> OpGen:
        """Non-linearizable scan (only used by tests)."""
        curr = yield load(self.head_ptr, MemOrder.ACQUIRE)
        steps = 0
        while curr != NULL and steps < self._max_nodes:
            steps += 1
            value = yield load(field(curr, VALUE))
            if value == key and steps > 1:   # skip the dummy
                return True
            curr = yield load(field(curr, NEXT), MemOrder.ACQUIRE)
        return False

    # ------------------------------------------------------------------
    # Direct-memory build
    # ------------------------------------------------------------------

    def build_initial(self, values: Iterable[int],
                      memory: Dict[int, Word]) -> None:
        dummy = self.allocator.alloc(NODE_WORDS + 1, line_align=True) + 8
        self._initial_dummy = dummy
        memory[header_addr(dummy)] = NODE_WORDS
        memory[field(dummy, VALUE)] = 0
        chain: List[int] = [dummy]
        for value in values:
            node = self.allocator.alloc(NODE_WORDS + 1,
                                        line_align=True) + 8
            memory[header_addr(node)] = NODE_WORDS
            memory[field(node, VALUE)] = value
            chain.append(node)
        for i, node in enumerate(chain):
            memory[field(node, NEXT)] = (
                chain[i + 1] if i + 1 < len(chain) else NULL)
        memory[self.head_ptr] = dummy
        memory[self.tail_ptr] = chain[-1]

    # ------------------------------------------------------------------
    # Recovery validation
    # ------------------------------------------------------------------

    def validate_image(self, image: Dict[int, Word]) -> RecoveryReport:
        problems: List[str] = []
        count = 0
        values: Set[int] = set()
        head = image.get(self.head_ptr)
        tail = image.get(self.tail_ptr)
        if head is None:
            problems.append("head pointer never persisted")
        if tail is None:
            problems.append("tail pointer never persisted")
        tail_seen = False
        curr = head if head is not None else NULL
        first = True
        while curr != NULL and not problems:
            count += 1
            if count > self._max_nodes:
                problems.append("queue chain exceeds bound (cycle?)")
                break
            value = image.get(field(curr, VALUE))
            nxt = image.get(field(curr, NEXT))
            if nxt is None or value is None:
                problems.append(
                    f"node {curr:#x} is linked into the queue but its "
                    "fields never persisted (inconsistent cut)")
                break
            if curr == tail:
                tail_seen = True
            if not first:
                values.add(value)
            first = False
            curr = nxt
        if not problems and tail is not None and not tail_seen:
            problems.append(
                f"tail {tail:#x} is not reachable from head "
                "(persisted tail overtook the chain)")
        return RecoveryReport(structure=self.name, ok=not problems,
                              problems=problems, reachable_nodes=count,
                              live_keys=values)

    def collect_keys(self, memory: Dict[int, Word]) -> Set[int]:
        """Multigoal: the set of values currently queued."""
        return self.validate_image(memory).live_keys or set()
