"""Whole-program model checking: explore, judge, confirm, report.

:func:`check_program` runs one litmus program through the DPOR
explorer (or brute-force enumeration, for the equivalence pins) and
folds the per-trace judgements of :mod:`repro.mc.judge` into one
:class:`MechanismVerdict` per mechanism:

* RP-enforcing mechanisms (SB/BB/LRP) are **proven clean** — no crash
  state of any Mazurkiewicz trace breaks consistency;
* weak mechanisms (ARP/NOP) must instead produce a concrete witness:
  a schedule plus persist sequence whose inconsistency the stock
  :class:`~repro.persistency.checker.RPChecker` confirms on a
  materialized persist log, written as a fuzzer-compatible repro file
  (``python -m repro.fuzz --replay`` replays it).

Every explored trace is additionally cross-checked against the
independent Px86-derived axioms (:mod:`repro.mc.px86`) and against
RPChecker's consistent-cut verdict on every execution-order crash
prefix — two machinery-level oracles that must never disagree with
the model predicates.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.consistency.happens_before import HappensBefore
from repro.consistency.litmus import all_interleavings, run_interleaving
from repro.persistency import mechanism_by_name
from repro.persistency.rp_model import arp_allows
from repro.mc.dpor import DPORStats, explore_program
from repro.mc.judge import CrashWitness, cut_violations, judge_trace
from repro.mc.programs import LitmusProgram, get_program
from repro.mc.px86 import px86_write_pairs

#: The paper's comparison set, in presentation order.
DEFAULT_MECHANISMS: Tuple[str, ...] = ("sb", "bb", "lrp", "arp", "nop")


@dataclasses.dataclass
class MechanismVerdict:
    """One mechanism's verdict over every explored trace."""

    mechanism: str
    expected_clean: bool        # enforces_rp => must be clean
    clean: bool
    traces_checked: int
    #: For a violated mechanism: the first witness found, confirmed by
    #: RPChecker on a materialized log.
    schedule: Optional[List[int]] = None
    witness: Optional[CrashWitness] = None
    confirmed_cut_violations: int = 0
    problems: List[str] = dataclasses.field(default_factory=list)
    mechanism_allows: Optional[bool] = None
    repro_path: Optional[str] = None

    @property
    def contract_ok(self) -> bool:
        """Figure-1 contract: enforcing => clean, weak => confirmed
        witness."""
        if self.expected_clean:
            return self.clean
        return (not self.clean and self.witness is not None
                and self.confirmed_cut_violations > 0)

    def summary(self) -> str:
        if self.clean:
            status = f"clean over {self.traces_checked} traces"
        else:
            status = (f"VIOLATED (schedule {self.schedule}, "
                      f"{self.confirmed_cut_violations} cut violations)")
        expect = "must hold" if self.expected_clean else "expected weak"
        return f"{self.mechanism:<4} [{expect}] {status}"


@dataclasses.dataclass
class ProgramCheck:
    """Everything :func:`check_program` learned about one program."""

    program: str
    method: str                 # "dpor" | "brute"
    hb_mode: str
    stats: DPORStats
    verdicts: Dict[str, MechanismVerdict]
    px86_agreements: int
    px86_traces: int
    prefix_cuts_clean: int      # traces whose every exec-order prefix
    prefix_traces: int          # ... passes the RPChecker cut check
    seconds: float

    @property
    def contract_ok(self) -> bool:
        return (all(v.contract_ok for v in self.verdicts.values())
                and self.px86_agreements == self.px86_traces
                and self.prefix_cuts_clean == self.prefix_traces)

    def clean_map(self) -> Dict[str, bool]:
        """The mechanism -> clean verdict bits (method-invariant)."""
        return {name: verdict.clean
                for name, verdict in self.verdicts.items()}


def _witness_repro_path(out_dir: str, program: str, mechanism: str) -> str:
    return os.path.join(out_dir, f"ce-mc-{program}-{mechanism}.json")


def check_program(program: Union[str, LitmusProgram],
                  mechanisms: Sequence[str] = DEFAULT_MECHANISMS,
                  method: str = "dpor",
                  hb_mode: str = "rp",
                  out_dir: Optional[str] = None,
                  cross_check: bool = True) -> ProgramCheck:
    """Model-check one litmus program under the given mechanisms."""
    if isinstance(program, str):
        program = get_program(program)
    if method not in ("dpor", "brute"):
        raise ValueError(f"unknown exploration method {method!r}")
    started = time.perf_counter()
    threads = program.program()
    init = program.initial_memory()
    if method == "dpor":
        schedules, stats = explore_program(threads)
    else:
        schedules = [list(s) for s in all_interleavings(threads)]
        stats = DPORStats(interleavings=len(schedules),
                          schedules_explored=len(schedules))

    verdicts = {
        name: MechanismVerdict(
            mechanism=name,
            expected_clean=mechanism_by_name(name).enforces_rp,
            clean=True, traces_checked=0)
        for name in mechanisms
    }
    px86_agreements = 0
    prefix_cuts_clean = 0
    traces = 0

    for schedule in schedules:
        trace = run_interleaving(threads, schedule, init=dict(init))
        hb = HappensBefore.from_trace(trace, mode=hb_mode)
        traces += 1
        judgements = judge_trace(trace, list(mechanisms), hb=hb)
        for name in mechanisms:
            verdict = verdicts[name]
            verdict.traces_checked += 1
            judgement = judgements[name]
            if judgement.clean or not verdict.clean:
                continue
            # First witness for this mechanism: confirm it with the
            # stock consistent-cut checker on a materialized log.
            witness = judgement.witness
            count, problems = cut_violations(
                trace, list(witness.persist_sequence), hb=hb)
            verdict.clean = False
            verdict.schedule = list(schedule)
            verdict.witness = witness
            verdict.confirmed_cut_violations = count
            verdict.problems = problems
            if name.lower() == "arp":
                verdict.mechanism_allows = arp_allows(
                    trace, list(witness.persist_sequence))
            else:
                # The state is guarantee-closed by construction.
                verdict.mechanism_allows = True
        if cross_check:
            if _px86_agrees(trace, hb, hb_mode):
                px86_agreements += 1
            if _prefix_cuts_ok(trace, hb):
                prefix_cuts_clean += 1

    if out_dir:
        for verdict in verdicts.values():
            if verdict.witness is None:
                continue
            path = _witness_repro_path(out_dir, program.name,
                                       verdict.mechanism)
            _write_witness_repro(program, verdict, hb_mode, method, path)
            verdict.repro_path = path

    return ProgramCheck(
        program=program.name, method=method, hb_mode=hb_mode,
        stats=stats, verdicts=verdicts,
        px86_agreements=px86_agreements,
        px86_traces=traces if cross_check else 0,
        prefix_cuts_clean=prefix_cuts_clean,
        prefix_traces=traces if cross_check else 0,
        seconds=round(time.perf_counter() - started, 3))


def _px86_agrees(trace, hb: HappensBefore, hb_mode: str) -> bool:
    """Px86 axioms == RP obligations on this trace (rp mode only —
    the rc-mode closure deliberately orders more than Px86 does)."""
    if hb_mode != "rp":
        return True
    rp_pairs = {(earlier.event_id, later.event_id)
                for earlier, later in hb.write_pairs()}
    return px86_write_pairs(trace) == rp_pairs


def _prefix_cuts_ok(trace, hb: HappensBefore) -> bool:
    """Every execution-order crash prefix passes RPChecker's cut check.

    Execution-order prefixes are exactly the crash states an
    RP-enforcing mechanism can expose (hb never orders against event
    order), so each must come back consistent.
    """
    writes = [e.event_id for e in trace.events if e.is_write_effect]
    for prefix_len in range(len(writes) + 1):
        count, _problems = cut_violations(trace, writes[:prefix_len],
                                          hb=hb)
        if count:
            return False
    return True


def _write_witness_repro(program: LitmusProgram,
                         verdict: MechanismVerdict, hb_mode: str,
                         method: str, path: str) -> None:
    from repro.fuzz.reprofile import LitmusReproFile

    witness = verdict.witness
    repro = LitmusReproFile(
        program=program.name,
        mechanism=verdict.mechanism,
        schedule=list(verdict.schedule),
        persist_sequence=list(witness.persist_sequence),
        verdict={
            "kind": "litmus-cut",
            "problems": list(verdict.problems),
            "cut_violations": verdict.confirmed_cut_violations,
        },
        hb_mode=hb_mode,
        source={
            "explorer": method,
            "visible_event": witness.visible_event,
            "missing_event": witness.missing_event,
            "mechanism_allows": verdict.mechanism_allows,
        })
    repro.save(path)
