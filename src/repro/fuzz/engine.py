"""The fuzzing campaign driver.

One campaign is a pure function of ``(workload, mechanism, seed,
budget)``:

1. execution 0 runs the unperturbed schedule, seeding the corpus and
   measuring the decision-index space the nudges range over;
2. the remaining budget runs in fixed-size batches fanned out through
   the :mod:`repro.exp` process-pool runner — mutations are generated
   *before* each batch from per-execution RNG streams, and summaries
   are processed in submission order, so ``--jobs`` changes wall time
   but never a single result;
3. every execution's coverage is merged into the campaign map; runs
   that earned new features enter the corpus as future mutation
   parents;
4. raw findings (failing crash prefixes) are shrunk to locally minimal
   counterexamples, confirmed against the RP consistent-cut checker,
   and serialized as replayable repro files.

The exit contract mirrors the paper's Figure 1: campaigns against
RP-enforcing mechanisms (``enforces_rp``) must find nothing — any
counterexample is a genuine mechanism bug and fails loudly; campaigns
against ARP/NOP must find (and shrink) at least one, or the fuzzer
itself has lost its teeth.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

from repro.common.params import MachineConfig
from repro.common.rng import make_rng
from repro.core.simulator import SimulationResult, simulate
from repro.exp.progress import NullProgress, ProgressReporter
from repro.exp.runner import ExperimentRunner, Job, RunSummary
from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.leg import FuzzLegSpec
from repro.fuzz.mutation import ScheduleMutation, mutate
from repro.fuzz.reprofile import ReproFile, config_to_dict
from repro.fuzz.shrink import ShrunkCounterexample, shrink_counterexample
from repro.obs.coverage import CoverageMap
from repro.persistency import mechanism_by_name
from repro.workloads.harness import WorkloadSpec

#: Executions per runner batch. Fixed (never derived from ``jobs``):
#: corpus evolution happens at batch boundaries, so the batch size is
#: part of the campaign's deterministic definition.
BATCH_SIZE = 8


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines one fuzzing campaign."""

    workload: str = "hashmap"
    mechanism: str = "arp"
    seed: int = 1
    budget: int = 48
    jobs: int = 1
    num_threads: int = 4
    initial_size: int = 64
    ops_per_thread: int = 8
    crash_samples: int = 16
    continuation_checks: int = 0
    max_counterexamples: int = 2
    corpus_dir: Optional[str] = None
    out_dir: Optional[str] = None
    verbose: bool = False

    def spec(self) -> WorkloadSpec:
        return WorkloadSpec(structure=self.workload,
                            num_threads=self.num_threads,
                            initial_size=self.initial_size,
                            ops_per_thread=self.ops_per_thread,
                            seed=self.seed)

    def machine_config(self) -> MachineConfig:
        # Small L1 keeps evictions/downgrades frequent (the triggers
        # the coverage map is keyed on); the retained trace lets the
        # shrinker confirm counterexamples against the cut checker.
        return MachineConfig(num_cores=max(8, self.num_threads),
                             l1_size_bytes=4 * 1024,
                             record_trace=True)


@dataclasses.dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    config: CampaignConfig
    executions: int
    coverage: CoverageMap
    corpus: Corpus
    #: Raw findings: one dict per failing (execution, prefix) pair.
    candidates: List[Dict[str, object]]
    #: Minimized, checker-confirmed counterexamples (with repro paths).
    counterexamples: List[Dict[str, object]]
    seconds: float
    written: List[str] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.candidates

    @property
    def enforces_rp(self) -> bool:
        return mechanism_by_name(self.config.mechanism).enforces_rp

    @property
    def contract_ok(self) -> bool:
        """The Figure-1 expectation: enforcing mechanisms find
        nothing; weak mechanisms yield >= 1 minimized counterexample."""
        if self.enforces_rp:
            return self.clean
        return bool(self.counterexamples)

    def report(self) -> Dict[str, object]:
        return {
            "workload": self.config.workload,
            "mechanism": self.config.mechanism,
            "enforces_rp": self.enforces_rp,
            "seed": self.config.seed,
            "budget": self.config.budget,
            "executions": self.executions,
            "coverage_features": len(self.coverage),
            "corpus_size": len(self.corpus),
            "candidates": len(self.candidates),
            "counterexamples": [
                {key: value for key, value in ce.items()
                 if key != "mutation"}
                for ce in self.counterexamples
            ],
            "clean": self.clean,
            "contract_ok": self.contract_ok,
            "seconds": round(self.seconds, 3),
            "execs_per_sec": round(self.executions / self.seconds, 2)
            if self.seconds else None,
        }


def _job(config: CampaignConfig, mutation: ScheduleMutation,
         exec_index: int) -> Job:
    return Job(
        spec=config.spec(),
        mechanism=config.mechanism,
        config=config.machine_config(),
        schedule_nudges=mutation.nudges if len(mutation) else None,
        fuzz=FuzzLegSpec(crash_samples=config.crash_samples,
                         crash_seed=config.seed,
                         exec_index=exec_index,
                         continuation_checks=config.continuation_checks),
    )


def run_campaign(config: CampaignConfig) -> CampaignResult:
    """Run one coverage-guided campaign to completion."""
    if config.budget < 1:
        raise ValueError("budget must be >= 1")
    start = time.perf_counter()
    progress = ProgressReporter() if config.verbose else NullProgress()
    runner = ExperimentRunner(jobs=config.jobs, progress=progress)

    coverage = CoverageMap()
    corpus = Corpus()
    candidates: List[Dict[str, object]] = []
    mutations: Dict[int, ScheduleMutation] = {}

    # Execution 0: the unperturbed baseline seeds corpus + coverage
    # and measures the decision space.
    baseline = ScheduleMutation()
    mutations[0] = baseline
    [summary] = runner.run([_job(config, baseline, 0)], label="fuzz:0")
    decision_space = max(1, int(summary.fuzz["executed_ops"]))
    _ingest(summary, baseline, 0, None, coverage, corpus, candidates)

    exec_index = 1
    while exec_index < config.budget:
        batch_indices = list(range(
            exec_index, min(exec_index + BATCH_SIZE, config.budget)))
        jobs: List[Job] = []
        parents: Dict[int, str] = {}
        for index in batch_indices:
            rng = make_rng(config.seed, "mutate", index)
            parent = corpus.select(rng)
            child = mutate(parent.mutation, rng, decision_space)
            mutations[index] = child
            parents[index] = parent.mutation.digest()
            jobs.append(_job(config, child, index))
        summaries = runner.run(jobs, label=f"fuzz:{batch_indices[0]}")
        for index, summary in zip(batch_indices, summaries):
            _ingest(summary, mutations[index], index, parents[index],
                    coverage, corpus, candidates)
        exec_index = batch_indices[-1] + 1

    counterexamples = _shrink_candidates(config, candidates)
    written: List[str] = []
    if config.out_dir:
        for ce in counterexamples:
            path = _write_repro(config, ce)
            ce["repro_path"] = path
            written.append(path)
    if config.corpus_dir:
        written.extend(corpus.save(config.corpus_dir, coverage))

    return CampaignResult(
        config=config, executions=config.budget, coverage=coverage,
        corpus=corpus, candidates=candidates,
        counterexamples=counterexamples,
        seconds=time.perf_counter() - start, written=written)


def _ingest(summary: RunSummary, mutation: ScheduleMutation,
            exec_index: int, parent_digest: Optional[str],
            coverage: CoverageMap, corpus: Corpus,
            candidates: List[Dict[str, object]]) -> None:
    """Fold one execution's summary into the campaign state."""
    leg = summary.fuzz or {}
    run_cov = CoverageMap.from_list(leg.get("coverage", []))
    new = coverage.merge(run_cov)
    if new > 0 or exec_index == 0:
        corpus.add(CorpusEntry(mutation=mutation, exec_index=exec_index,
                               parent_digest=parent_digest,
                               new_features=new))
    for failure in leg.get("failures", []):
        candidates.append({
            "exec_index": exec_index,
            "mutation": mutation,
            "kind": failure["kind"],
            "prefix": int(failure["prefix"]),
            "problems": list(failure.get("problems", [])),
            "continuation": failure.get("continuation"),
        })


def _shrink_candidates(config: CampaignConfig,
                       candidates: List[Dict[str, object]]
                       ) -> List[Dict[str, object]]:
    """Shrink + confirm up to ``max_counterexamples`` raw findings.

    Structural findings shrink (the common case); linearizability and
    continuation findings are passed through unshrunk — they implicate
    the schedule itself or the post-crash replay, where dropping
    nudges has no defined oracle short of a full re-exploration.
    """
    spec = config.spec()
    machine_cfg = config.machine_config()

    def run(mutation: ScheduleMutation) -> SimulationResult:
        return simulate(spec, config.mechanism, machine_cfg,
                        schedule_nudges=(mutation.as_dict()
                                         if len(mutation) else None))

    out: List[Dict[str, object]] = []
    seen_digests = set()
    emitted = set()
    for candidate in candidates:
        if len(out) >= config.max_counterexamples:
            break
        mutation: ScheduleMutation = candidate["mutation"]
        if candidate["kind"] != "structural":
            verdict = {"kind": candidate["kind"],
                       "problems": candidate["problems"]}
            if candidate.get("continuation"):
                verdict["continuation"] = candidate["continuation"]
            out.append({**candidate, "shrunk": False,
                        "nudges": len(mutation), "verdict": verdict})
            continue
        digest = mutation.digest()
        if digest in seen_digests:
            continue
        seen_digests.add(digest)
        shrunk = shrink_counterexample(mutation, candidate["prefix"], run)
        if shrunk is None:
            raise AssertionError(
                f"non-reproducible finding at exec "
                f"{candidate['exec_index']}: the oracle is "
                "non-deterministic — this is a fuzzer bug")
        confirmed = _confirm(config, run, shrunk, candidate)
        # Distinct raw findings often shrink to the same minimum
        # (typically the empty mutation + first failing prefix);
        # report each minimal counterexample once.
        key = (confirmed["mutation"].digest(), confirmed["prefix"],
               tuple(confirmed["problems"][:1]))
        if key in emitted:
            continue
        emitted.add(key)
        out.append(confirmed)
    return out


def _confirm(config: CampaignConfig, run, shrunk: ShrunkCounterexample,
             candidate: Dict[str, object]) -> Dict[str, object]:
    """Re-run the shrunk pair and attach the checker's verdict."""
    result = run(shrunk.mutation)
    report = result.structure.validate_image(
        result.nvm.image_after_prefix(shrunk.prefix))
    if report.ok:
        raise AssertionError(
            "shrunk counterexample stopped failing on re-run — "
            "the shrinker is unsound")
    verdict: Dict[str, object] = {
        "kind": "structural",
        "problems": [str(p) for p in report.problems[:3]],
    }
    if result.config.record_trace:
        from repro.persistency.checker import RPChecker

        checker = RPChecker(result.trace, result.nvm,
                            boundary_event=result.machine.boundary_event)
        verdict["cut_violations"] = len(checker.check_cut(shrunk.prefix))
    return {
        "exec_index": candidate["exec_index"],
        "kind": "structural",
        "mutation": shrunk.mutation,
        "nudges": len(shrunk.mutation),
        "prefix": shrunk.prefix,
        "original_nudges": shrunk.original_nudges,
        "original_prefix": shrunk.original_prefix,
        "probes": shrunk.probes,
        "strictly_smaller": shrunk.strictly_smaller,
        "shrunk": True,
        "verdict": verdict,
        "problems": verdict["problems"],
    }


def _write_repro(config: CampaignConfig,
                 ce: Dict[str, object]) -> str:
    import os

    mutation: ScheduleMutation = ce["mutation"]
    repro = ReproFile(
        workload=dataclasses.asdict(config.spec()),
        mechanism=config.mechanism,
        config=config_to_dict(config.machine_config()),
        mutation=[list(nudge) for nudge in mutation.nudges],
        prefix=int(ce["prefix"]),
        verdict=dict(ce["verdict"]),
        campaign={"seed": config.seed, "budget": config.budget,
                  "exec_index": ce["exec_index"],
                  "workload": config.workload},
    )
    name = f"ce-{config.mechanism}-{mutation.digest()}-p{ce['prefix']}.json"
    path = os.path.join(config.out_dir, name)
    repro.save(path)
    return path
