"""Private L1 data cache with MESI state and LRP per-line metadata.

Each line carries, beyond its coherence state:

* ``pending_words`` — dirty word values not yet persisted to NVM, each
  tagged with the youngest store event that produced it (coalescing);
* ``min_epoch`` — the epoch of the *earliest* unpersisted write to the
  line (Section 5.2.1, Figure 3b);
* ``release_bit`` — whether the line holds a value written by a release.

The same two metadata fields serve the BB mechanism (per-line epoch-id
of cache-based buffered epoch persistency, Section 2.2.1) — this is
faithful to the paper, which frames LRP's metadata as an extension of
the cache-based BEP approach.

Storage layout: coherence state and LRU ticks live in flat per-slot
tables (``state_codes`` bytearray / ``lru`` list, one entry per way of
every set) so the batch engine (:mod:`repro.core.fastsim`) can test
hit/miss and MESI state with two integer loads. :class:`CacheLine`
remains the object API over that storage — while a line is resident it
is a *view* attached to its slot (``state``/``lru_tick`` read the
tables); on ``remove`` it detaches, capturing its final table state, so
eviction/invalidation handlers that inspect the line afterwards see
exactly what the old dict-of-objects design gave them.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.common.params import MachineConfig

if TYPE_CHECKING:
    from repro.obs import Observer

Word = Optional[int]


class MESIState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


# Hot-path aliases: member access on the Enum class goes through
# EnumType.__getattr__; the simulator resolves states millions of times
# per run, so the inner loops bind these once.
MODIFIED = MESIState.MODIFIED
EXCLUSIVE = MESIState.EXCLUSIVE
SHARED = MESIState.SHARED
INVALID = MESIState.INVALID

# Table encoding of MESI state. Code 0 is reserved for "slot empty" so
# a one-byte load answers both residency and state questions.
EMPTY_CODE = 0
MODIFIED_CODE = 1
EXCLUSIVE_CODE = 2
SHARED_CODE = 3
INVALID_CODE = 4

STATE_TO_CODE = {
    MODIFIED: MODIFIED_CODE,
    EXCLUSIVE: EXCLUSIVE_CODE,
    SHARED: SHARED_CODE,
    INVALID: INVALID_CODE,
}
CODE_TO_STATE = (None, MODIFIED, EXCLUSIVE, SHARED, INVALID)


class CacheLine:
    """One L1 cache line (tag + coherence + persistency metadata).

    Constructible standalone (unit tests build free-floating lines);
    inside an :class:`L1Cache` it is attached to a slot and its
    ``state``/``lru_tick`` are backed by the cache's flat tables.
    """

    __slots__ = ("addr", "pending_words", "min_epoch", "release_bit",
                 "_cache", "_slot", "_state", "_lru_tick")

    def __init__(self, addr: int, state: MESIState = INVALID,
                 pending_words: Optional[Dict[int, Tuple[Word, int]]] = None,
                 min_epoch: Optional[int] = None,
                 release_bit: bool = False, lru_tick: int = 0) -> None:
        self.addr = addr               # line-aligned base address
        # Persistency metadata: word addr -> (value, store event id)
        self.pending_words: Dict[int, Tuple[Word, int]] = (
            {} if pending_words is None else pending_words)
        self.min_epoch = min_epoch
        self.release_bit = release_bit
        self._cache: Optional["L1Cache"] = None
        self._slot = -1
        self._state = state
        self._lru_tick = lru_tick

    def __repr__(self) -> str:
        return (f"CacheLine(addr={self.addr:#x}, state={self.state.value},"
                f" pending={len(self.pending_words)})")

    # -- table-backed fields ----------------------------------------------

    @property
    def state(self) -> MESIState:
        cache = self._cache
        if cache is not None:
            return CODE_TO_STATE[cache.state_codes[self._slot]]
        return self._state

    @state.setter
    def state(self, value: MESIState) -> None:
        cache = self._cache
        if cache is not None:
            cache.state_codes[self._slot] = STATE_TO_CODE[value]
        else:
            self._state = value

    @property
    def lru_tick(self) -> int:
        cache = self._cache
        if cache is not None:
            return cache.lru[self._slot]
        return self._lru_tick

    @lru_tick.setter
    def lru_tick(self, value: int) -> None:
        cache = self._cache
        if cache is not None:
            cache.lru[self._slot] = value
        else:
            self._lru_tick = value

    def _attach(self, cache: "L1Cache", slot: int) -> None:
        cache.state_codes[slot] = STATE_TO_CODE[self._state]
        cache.lru[slot] = self._lru_tick
        cache.lines[slot] = self
        self._cache = cache
        self._slot = slot

    def _detach(self) -> None:
        cache = self._cache
        slot = self._slot
        self._state = CODE_TO_STATE[cache.state_codes[slot]]
        self._lru_tick = cache.lru[slot]
        cache.state_codes[slot] = EMPTY_CODE
        cache.lines[slot] = None
        self._cache = None
        self._slot = -1

    # -- persistency metadata ---------------------------------------------

    @property
    def has_pending(self) -> bool:
        """True if the line holds not-yet-persisted writes."""
        return bool(self.pending_words)

    @property
    def is_released(self) -> bool:
        """Line is dirty and its newest synchronizing write is a release."""
        return bool(self.pending_words) and self.release_bit

    @property
    def is_only_written(self) -> bool:
        """Line is dirty with regular writes only (paper terminology)."""
        return bool(self.pending_words) and not self.release_bit

    def record_write(self, word_addr: int, value: Word, event_id: int,
                     epoch: int) -> None:
        """Merge a store into the line's pending (unpersisted) words."""
        if not self.pending_words:
            self.min_epoch = epoch
        self.pending_words[word_addr] = (value, event_id)

    def take_persist_payload(self) -> Dict[int, Tuple[Word, int]]:
        """Snapshot-and-clear the pending words (line persists now)."""
        payload = self.pending_words
        self.pending_words = {}
        self.min_epoch = None
        self.release_bit = False
        return payload


class L1Cache:
    """Set-associative, LRU, write-back private L1.

    Way slots are numbered ``set * assoc + way``; ``state_codes[slot]``
    (0 = empty) and ``lru[slot]`` are the authoritative coherence /
    replacement state, ``lines[slot]`` the attached view objects, and
    ``_sets[set]`` maps resident line addr -> slot in insertion order
    (scan order must match the old per-set dict storage so persist
    streams are bit-identical).
    """

    def __init__(self, core_id: int, config: MachineConfig,
                 obs: Optional["Observer"] = None) -> None:
        self.core_id = core_id
        self.obs = obs
        self._config = config
        self._num_sets = config.l1_num_sets
        self._assoc = config.l1_assoc
        num_slots = self._num_sets * self._assoc
        self.state_codes = bytearray(num_slots)
        self.lru: List[int] = [0] * num_slots
        self.lines: List[Optional[CacheLine]] = [None] * num_slots
        self._sets: List[Dict[int, int]] = [
            {} for _ in range(self._num_sets)
        ]
        self._tick = 0
        # line_bytes is a power of two (validated by MachineConfig);
        # when the set count is too, the set index is shift-and-mask.
        self._line_shift = config.line_offset_bits
        num_sets = self._num_sets
        self._set_mask = (num_sets - 1
                          if num_sets & (num_sets - 1) == 0 else None)

    def _set_index(self, line_addr: int) -> int:
        if self._set_mask is not None:
            return (line_addr >> self._line_shift) & self._set_mask
        return (line_addr >> self._line_shift) % self._num_sets

    # ------------------------------------------------------------------
    # Lookup / fill / evict
    # ------------------------------------------------------------------

    def lookup(self, line_addr: int, *, touch: bool = True
               ) -> Optional[CacheLine]:
        """Return the resident line, or None on a miss."""
        slot = self._sets[self._set_index(line_addr)].get(line_addr)
        if slot is None:
            return None
        if touch:
            self._tick += 1
            self.lru[slot] = self._tick
        return self.lines[slot]

    def select_victim(self, line_addr: int) -> Optional[CacheLine]:
        """The LRU line that a fill of ``line_addr`` would displace."""
        cache_set = self._sets[self._set_index(line_addr)]
        if len(cache_set) < self._assoc:
            return None
        slot = min(cache_set.values(), key=self.lru.__getitem__)
        return self.lines[slot]

    def fill(self, line_addr: int, state: MESIState) -> CacheLine:
        """Install a line (caller must have evicted the victim first)."""
        set_index = self._set_index(line_addr)
        cache_set = self._sets[set_index]
        if line_addr in cache_set:
            raise ValueError(f"line {line_addr:#x} already resident")
        if len(cache_set) >= self._assoc:
            raise ValueError("set full: evict the victim before filling")
        codes = self.state_codes
        slot = set_index * self._assoc
        while codes[slot]:
            slot += 1
        # Fused construct-and-attach (one fill per miss at bench scale):
        # equivalent to CacheLine(line_addr, state) + _attach(self, slot).
        line = CacheLine.__new__(CacheLine)
        line.addr = line_addr
        line.pending_words = {}
        line.min_epoch = None
        line.release_bit = False
        line._state = state
        line._lru_tick = 0
        line._cache = self
        line._slot = slot
        codes[slot] = STATE_TO_CODE[state]
        self.lines[slot] = line
        cache_set[line_addr] = slot
        self._tick += 1
        self.lru[slot] = self._tick
        if self.obs is not None:
            self.obs.count("l1.fills")
            self.obs.observe("l1.set_occupancy", len(cache_set))
        return line

    def remove(self, line_addr: int) -> CacheLine:
        """Take a line out of the cache (eviction or invalidation)."""
        cache_set = self._sets[self._set_index(line_addr)]
        slot = cache_set.pop(line_addr, None)
        if slot is None:
            raise KeyError(f"line {line_addr:#x} not resident")
        line = self.lines[slot]
        line._detach()
        return line

    # ------------------------------------------------------------------
    # Scans (persist engine, drain)
    # ------------------------------------------------------------------

    def iter_lines(self) -> Iterator[CacheLine]:
        """All resident lines (the persist engine's L1 scan)."""
        lines = self.lines
        for cache_set in self._sets:
            for slot in cache_set.values():
                yield lines[slot]

    def pending_lines(self) -> List[CacheLine]:
        """All lines holding unpersisted writes."""
        return [line for line in self.iter_lines() if line.has_pending]

    def resident_count(self) -> int:
        return sum(len(s) for s in self._sets)
