"""Reproduction of every figure in the paper's evaluation (Section 6).

Each ``run_*`` function executes the simulations behind one paper
figure and returns a structured result that can render itself as the
same rows/series the paper reports. The pytest benchmarks under
``benchmarks/`` call these; ``python -m repro.bench.figures`` runs the
whole evaluation from the command line.

All simulations go through the :mod:`repro.exp` runner: every figure
row is an independent deterministic job, so the suite fans out across
CPU cores (``--jobs N``) and re-runs hit the content-addressed result
cache (disable with ``--no-cache``). Results are identical to serial
execution by construction; pass ``runner=`` to pin a specific
:class:`~repro.exp.runner.ExperimentRunner`.

Absolute numbers differ from the paper (our substrate is a behavioral
Python simulator, not Pin on a testbed); the *shape* — who wins, by
roughly what factor — is the reproduction target. EXPERIMENTS.md
records paper-vs-measured for every figure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.bench.configs import (
    FIGURE8_THREADS,
    FIGURE_MECHANISMS,
    KV_FIGURE_MECHANISMS,
    SCALED_CONFIG,
    bench_config,
    figure_spec,
    kv_figure_spec,
    uncached,
)
from repro.bench.report import render_series, render_table
from repro.common.params import MachineConfig
from repro.exp.runner import (
    ExperimentRunner,
    Job,
    RunSummary,
    get_default_runner,
)
from repro.lfds import WORKLOAD_NAMES
from repro.workloads.harness import WorkloadSpec


# ----------------------------------------------------------------------
# Figures 5 and 7: normalized execution time
# ----------------------------------------------------------------------

@dataclasses.dataclass
class NormalizedExecutionResult:
    """Execution time of each mechanism normalized to NOP, per LFD."""

    title: str
    workloads: List[str]
    mechanisms: List[str]
    results: Dict[str, Dict[str, RunSummary]]

    def normalized(self, workload: str, mechanism: str) -> float:
        nop = self.results[workload]["nop"].makespan
        return self.results[workload][mechanism].makespan / nop

    def improvement(self, workload: str, slower: str,
                    faster: str) -> float:
        """Fractional exec-time improvement of ``faster`` vs ``slower``."""
        slow = self.results[workload][slower].makespan
        fast = self.results[workload][faster].makespan
        return (slow - fast) / slow

    def mean_improvement(self, slower: str, faster: str) -> float:
        gains = [self.improvement(w, slower, faster)
                 for w in self.workloads]
        return sum(gains) / len(gains)

    def render(self) -> str:
        rows = []
        for workload in self.workloads:
            rows.append([workload] + [
                self.normalized(workload, mech)
                for mech in self.mechanisms
            ])
        return render_table(self.title,
                            ["workload"] + self.mechanisms, rows)

    def all_summaries(self) -> List[RunSummary]:
        """Every run of the figure, in (workload, mechanism) order."""
        return [self.results[workload][mech]
                for workload in self.workloads
                for mech in ["nop"] + self.mechanisms]

    def render_attribution(self) -> str:
        """Critical-path split per run (requires obs-collected runs)."""
        from repro.obs.report import render_summaries

        return render_summaries(
            self.all_summaries(),
            title=f"Critical-path attribution — {self.title}")


def run_normalized_execution(config: MachineConfig, title: str, *,
                             scale: str = "quick", num_threads: int = 32,
                             seed: int = 1,
                             workloads: Optional[Sequence[str]] = None,
                             runner: Optional[ExperimentRunner] = None,
                             collect_obs: bool = False,
                             collect_trace: bool = False,
                             collect_provenance: bool = False
                             ) -> NormalizedExecutionResult:
    """Shared engine for Figures 5 and 7."""
    workloads = list(workloads or WORKLOAD_NAMES)
    mechanisms = ["nop"] + FIGURE_MECHANISMS
    config = bench_config(config)
    jobs = [
        Job(spec=figure_spec(workload, num_threads=num_threads,
                             scale=scale, seed=seed),
            mechanism=mech, config=config,
            collect_obs=(collect_obs or collect_trace
                         or collect_provenance),
            collect_trace=collect_trace,
            collect_provenance=collect_provenance)
        for workload in workloads
        for mech in mechanisms
    ]
    summaries = (runner or get_default_runner()).run(jobs, label=title[:8])
    results: Dict[str, Dict[str, RunSummary]] = {}
    for job, summary in zip(jobs, summaries):
        results.setdefault(job.spec.structure, {})[job.mechanism] = summary
    return NormalizedExecutionResult(
        title=title, workloads=workloads,
        mechanisms=FIGURE_MECHANISMS, results=results)


def run_figure5(*, scale: str = "quick", num_threads: int = 32,
                seed: int = 1,
                workloads: Optional[Sequence[str]] = None,
                runner: Optional[ExperimentRunner] = None,
                collect_obs: bool = False,
                collect_trace: bool = False,
                collect_provenance: bool = False
                ) -> NormalizedExecutionResult:
    """Figure 5: exec time normalized to NOP, cached NVM mode."""
    return run_normalized_execution(
        SCALED_CONFIG,
        "Figure 5: execution time normalized to No-Persistency "
        "(cached mode, lower is better)",
        scale=scale, num_threads=num_threads, seed=seed,
        workloads=workloads, runner=runner,
        collect_obs=collect_obs, collect_trace=collect_trace,
        collect_provenance=collect_provenance)


def run_figure7(*, scale: str = "quick", num_threads: int = 32,
                seed: int = 1,
                workloads: Optional[Sequence[str]] = None,
                runner: Optional[ExperimentRunner] = None,
                collect_obs: bool = False,
                collect_trace: bool = False,
                collect_provenance: bool = False
                ) -> NormalizedExecutionResult:
    """Figure 7: same as Figure 5 with the NVM DRAM cache disabled."""
    return run_normalized_execution(
        uncached(SCALED_CONFIG),
        "Figure 7: execution time normalized to No-Persistency "
        "(uncached mode, lower is better)",
        scale=scale, num_threads=num_threads, seed=seed,
        workloads=workloads, runner=runner,
        collect_obs=collect_obs, collect_trace=collect_trace,
        collect_provenance=collect_provenance)


# ----------------------------------------------------------------------
# Figure 6: critical-path writebacks
# ----------------------------------------------------------------------

@dataclasses.dataclass
class Figure6Result:
    """% of writebacks on the execution critical path, BB vs LRP."""

    workloads: List[str]
    fractions: Dict[str, Dict[str, float]]   # workload -> mech -> frac

    def render(self) -> str:
        rows = [
            [w, f"{self.fractions[w]['bb'] * 100:.0f}%",
             f"{self.fractions[w]['lrp'] * 100:.0f}%"]
            for w in self.workloads
        ]
        return render_table(
            "Figure 6: percentage of write-backs in the critical path "
            "(lower is better)",
            ["workload", "BB", "LRP"], rows)


def run_figure6(fig5: Optional[NormalizedExecutionResult] = None, *,
                scale: str = "quick", num_threads: int = 32,
                seed: int = 1,
                runner: Optional[ExperimentRunner] = None) -> Figure6Result:
    """Figure 6 is derived from the Figure 5 runs."""
    fig5 = fig5 or run_figure5(scale=scale, num_threads=num_threads,
                               seed=seed, runner=runner)
    fractions = {
        workload: {
            mech: fig5.results[workload][mech]
            .stats.critical_writeback_fraction
            for mech in ("bb", "lrp")
        }
        for workload in fig5.workloads
    }
    return Figure6Result(workloads=fig5.workloads, fractions=fractions)


# ----------------------------------------------------------------------
# Figure 8: persistency overhead vs thread count
# ----------------------------------------------------------------------

@dataclasses.dataclass
class Figure8Result:
    """% overhead over NOP, per workload, as threads scale."""

    thread_counts: List[int]
    overheads: Dict[str, Dict[str, List[float]]]  # wl -> mech -> [%]
    #: Raw runs (submission order), kept only when obs was collected so
    #: the attribution report can be rendered after the sweep.
    summaries: Optional[List[RunSummary]] = None

    def render(self) -> str:
        blocks = []
        for workload, series in self.overheads.items():
            blocks.append(render_series(
                f"Figure 8 ({workload}): % persistency overhead over "
                "No-Persistency vs threads (lower is better)",
                "threads", self.thread_counts,
                {m.upper(): v for m, v in series.items()}))
        return "\n\n".join(blocks)


def run_figure8(*, scale: str = "quick",
                thread_counts: Optional[Sequence[int]] = None,
                workloads: Optional[Sequence[str]] = None,
                mechanisms: Sequence[str] = ("bb", "lrp"),
                seed: int = 1,
                runner: Optional[ExperimentRunner] = None,
                collect_obs: bool = False,
                collect_trace: bool = False,
                collect_provenance: bool = False) -> Figure8Result:
    """Figure 8(a-e): overhead sweep over 1-32 worker threads."""
    thread_counts = list(thread_counts or FIGURE8_THREADS)
    workloads = list(workloads or WORKLOAD_NAMES)
    config = bench_config(SCALED_CONFIG)
    all_mechs = ["nop"] + list(mechanisms)
    jobs = [
        Job(spec=figure_spec(workload, num_threads=threads,
                             scale=scale, seed=seed),
            mechanism=mech, config=config,
            collect_obs=(collect_obs or collect_trace
                         or collect_provenance),
            collect_trace=collect_trace,
            collect_provenance=collect_provenance)
        for workload in workloads
        for threads in thread_counts
        for mech in all_mechs
    ]
    summaries = (runner or get_default_runner()).run(jobs, label="Figure 8")
    overheads: Dict[str, Dict[str, List[float]]] = {
        workload: {mech: [] for mech in mechanisms}
        for workload in workloads
    }
    index = 0
    for workload in workloads:
        for _threads in thread_counts:
            nop = summaries[index]
            index += 1
            for mech in mechanisms:
                run = summaries[index]
                index += 1
                overheads[workload][mech].append(
                    run.stats.overhead_vs(nop.stats) * 100.0)
    return Figure8Result(
        thread_counts=thread_counts, overheads=overheads,
        summaries=list(summaries)
        if (collect_obs or collect_trace or collect_provenance)
        else None)


# ----------------------------------------------------------------------
# Section 6.4: data-structure size sensitivity
# ----------------------------------------------------------------------

@dataclasses.dataclass
class SizeSensitivityResult:
    """% overhead over NOP as the structure size is swept."""

    workload: str
    sizes: List[int]
    overheads: Dict[str, List[float]]

    def render(self) -> str:
        return render_series(
            f"Size sensitivity ({self.workload}): % overhead over "
            "No-Persistency vs initial size",
            "size", self.sizes,
            {m.upper(): v for m, v in self.overheads.items()})


def run_size_sensitivity(workload: str = "hashmap", *,
                         sizes: Sequence[int] = (8192, 16384, 32768,
                                                 65536),
                         num_threads: int = 16,
                         ops_per_thread: int = 32,
                         mechanisms: Sequence[str] = ("bb", "lrp"),
                         seed: int = 1,
                         runner: Optional[ExperimentRunner] = None
                         ) -> SizeSensitivityResult:
    """The paper varied sizes 8K-1M and saw no significant change."""
    config = bench_config(SCALED_CONFIG)
    all_mechs = ["nop"] + list(mechanisms)
    jobs = [
        Job(spec=WorkloadSpec(structure=workload, num_threads=num_threads,
                              initial_size=size,
                              ops_per_thread=ops_per_thread, seed=seed),
            mechanism=mech, config=config)
        for size in sizes
        for mech in all_mechs
    ]
    summaries = (runner or get_default_runner()).run(jobs, label="size")
    overheads: Dict[str, List[float]] = {m: [] for m in mechanisms}
    index = 0
    for _size in sizes:
        nop = summaries[index]
        index += 1
        for mech in mechanisms:
            run = summaries[index]
            index += 1
            overheads[mech].append(
                run.stats.overhead_vs(nop.stats) * 100.0)
    return SizeSensitivityResult(workload=workload, sizes=list(sizes),
                                 overheads=overheads)


# ----------------------------------------------------------------------
# RET-size ablation (Section 5.2.1 design choice)
# ----------------------------------------------------------------------

@dataclasses.dataclass
class RetAblationResult:
    """LRP execution time and engine activity across RET sizes."""

    workload: str
    ret_sizes: List[int]
    normalized: List[float]
    watermark_drains: List[int]

    def render(self) -> str:
        rows = [
            [self.ret_sizes[i], self.normalized[i],
             self.watermark_drains[i]]
            for i in range(len(self.ret_sizes))
        ]
        return render_table(
            f"RET ablation ({self.workload}): LRP exec time normalized "
            "to NOP and watermark-triggered drains vs RET entries",
            ["RET entries", "LRP/NOP", "watermark drains"], rows)


def run_ret_ablation(workload: str = "hashmap", *,
                     ret_sizes: Sequence[int] = (4, 8, 16, 32, 64),
                     num_threads: int = 16, scale: str = "quick",
                     seed: int = 1,
                     runner: Optional[ExperimentRunner] = None
                     ) -> RetAblationResult:
    """Sweep the Release Epoch Table size (paper default: 32)."""
    spec = figure_spec(workload, num_threads=num_threads, scale=scale,
                       seed=seed)
    base = bench_config(SCALED_CONFIG)
    jobs = [Job(spec=spec, mechanism="nop", config=base)]
    for entries in ret_sizes:
        config = dataclasses.replace(
            base, ret_entries=entries,
            ret_watermark=max(1, (entries * 3) // 4))
        jobs.append(Job(spec=spec, mechanism="lrp", config=config))
    summaries = (runner or get_default_runner()).run(jobs, label="RET")
    nop, lrp_runs = summaries[0], summaries[1:]
    normalized = [run.makespan / nop.makespan for run in lrp_runs]
    drains = [run.mechanism_counters["ret_watermark_drains"]
              for run in lrp_runs]
    return RetAblationResult(workload=workload,
                             ret_sizes=list(ret_sizes),
                             normalized=normalized,
                             watermark_drains=drains)


# ----------------------------------------------------------------------
# KV service: request-level SLO comparison (ROADMAP service scenario)
# ----------------------------------------------------------------------

@dataclasses.dataclass
class KVServiceResult:
    """Per-mechanism request SLOs for the KV-service scenario.

    Not a figure from the paper: this is the service-level restatement
    of its argument. LRP should match or beat BB on *response* latency
    (persists stay off the critical path) while paying for it in
    durability lag — requests whose effects reach NVM long after the
    client saw the reply, which the RTO columns price as lost work on
    an un-synced crash.
    """

    mechanisms: List[str]
    #: mechanism -> repro.obs.slo.service_report payload.
    payloads: Dict[str, Dict[str, object]]
    summaries: Dict[str, RunSummary]

    def latency(self, mechanism: str, quantile: str = "p99") -> int:
        return self.payloads[mechanism]["latency"][quantile]

    def durable_latency(self, mechanism: str,
                        quantile: str = "p99") -> int:
        return self.payloads[mechanism]["durable_latency"][quantile]

    def lost_requests_mean(self, mechanism: str) -> float:
        recovery = self.payloads[mechanism].get("recovery", {})
        return recovery.get("lost_requests", {}).get("mean", 0.0)

    def render(self) -> str:
        rows = []
        for mech in self.mechanisms:
            payload = self.payloads[mech]
            recovery = payload.get("recovery", {})
            rows.append([
                mech.upper(),
                payload["makespan"],
                payload["throughput_rpkc"],
                payload["latency"]["p50"],
                payload["latency"]["p99"],
                payload["latency"]["p999"],
                payload["durable_latency"]["p99"],
                payload["durable_latency"]["max_lag"],
                recovery.get("rto", {}).get("mean_cycles", "-"),
                recovery.get("lost_requests", {}).get("mean", "-"),
            ])
        return render_table(
            "KV service: open-loop request SLOs per mechanism "
            "(cycles; lost = completed-but-not-durable at a crash)",
            ["mechanism", "makespan", "req/kcyc", "p50", "p99", "p999",
             "durable p99", "max lag", "RTO mean", "lost mean"], rows)


def run_figure_kv(*, scale: str = "quick", structure: str = "hashmap",
                  mechanisms: Optional[Sequence[str]] = None,
                  crash_points: int = 8, seed: int = 42,
                  runner: Optional[ExperimentRunner] = None
                  ) -> KVServiceResult:
    """The KV-service SLO comparison (one job per mechanism).

    Workers run with ``collect_spans`` so the SLO payload (latency and
    durable-latency percentiles, crash RTO, lost requests) comes back
    precomputed in ``RunSummary.obs["slo"]``; the crash campaign reuses
    the recovery machinery at ``crash_points`` sampled log prefixes.
    """
    mechanisms = list(mechanisms or KV_FIGURE_MECHANISMS)
    spec = kv_figure_spec(structure=structure, scale=scale, seed=seed)
    config = bench_config(SCALED_CONFIG)
    jobs = [
        Job(spec=spec, mechanism=mech, config=config,
            collect_spans=True, crash_points=crash_points,
            crash_seed=seed)
        for mech in mechanisms
    ]
    summaries = (runner or get_default_runner()).run(jobs, label="kv")
    payloads: Dict[str, Dict[str, object]] = {}
    results: Dict[str, RunSummary] = {}
    for job, summary in zip(jobs, summaries):
        results[job.mechanism] = summary
        payloads[job.mechanism] = (summary.obs or {}).get("slo", {})
    return KVServiceResult(mechanisms=mechanisms, payloads=payloads,
                           summaries=results)


# ----------------------------------------------------------------------
# Recovery matrix (Figure 1 / Section 3 argument, as an experiment)
# ----------------------------------------------------------------------

@dataclasses.dataclass
class RecoveryMatrixResult:
    """Crash-recovery outcomes per (workload, mechanism)."""

    rows: List[Dict[str, object]]

    def outcome(self, workload: str, mechanism: str) -> Dict[str, object]:
        for row in self.rows:
            if (row["workload"] == workload
                    and row["mechanism"] == mechanism):
                return row
        raise KeyError((workload, mechanism))

    def render(self) -> str:
        table = [
            [row["workload"], row["mechanism"], row["crash_points"],
             row["unrecoverable"],
             "OK" if row["unrecoverable"] == 0 else "VIOLATIONS"]
            for row in self.rows
        ]
        return render_table(
            "Recovery matrix: null recovery across crash points "
            "(RP mechanisms must always recover; ARP/NOP must not)",
            ["workload", "mechanism", "crash points", "unrecoverable",
             "verdict"], table)


def run_recovery_matrix(*, workloads: Optional[Sequence[str]] = None,
                        mechanisms: Sequence[str] = (
                            "nop", "arp", "sb", "bb", "dpo", "hops",
                            "lrp"),
                        num_threads: int = 8, initial_size: int = 256,
                        ops_per_thread: int = 24, seeds: Sequence[int] = (0, 1),
                        crash_points: int = 40,
                        runner: Optional[ExperimentRunner] = None
                        ) -> RecoveryMatrixResult:
    """Crash every mechanism on every LFD at many persist-log points.

    Each (workload, mechanism, seed) cell is one runner job; the crash
    campaign itself runs inside the worker (only its counts travel
    back), so the matrix parallelizes like every other figure.
    """
    workloads = list(workloads or WORKLOAD_NAMES)
    config = bench_config(SCALED_CONFIG)
    jobs = [
        Job(spec=WorkloadSpec(structure=workload,
                              num_threads=num_threads,
                              initial_size=initial_size,
                              ops_per_thread=ops_per_thread,
                              seed=seed),
            mechanism=mech, config=config,
            crash_points=crash_points, crash_seed=seed)
        for workload in workloads
        for mech in mechanisms
        for seed in seeds
    ]
    summaries = (runner or get_default_runner()).run(jobs, label="recovery")
    rows: List[Dict[str, object]] = []
    index = 0
    for workload in workloads:
        for mech in mechanisms:
            attempts = 0
            failures = 0
            for _seed in seeds:
                summary = summaries[index]
                index += 1
                attempts += summary.crash_attempts or 0
                failures += summary.crash_failures or 0
            rows.append({
                "workload": workload,
                "mechanism": mech,
                "crash_points": attempts,
                "unrecoverable": failures,
            })
    return RecoveryMatrixResult(rows=rows)


# ----------------------------------------------------------------------
# Command-line entry point
# ----------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> None:
    import argparse
    import json
    import os
    import time

    from repro.exp.runner import make_runner, set_default_runner

    parser = argparse.ArgumentParser(
        description="Regenerate the paper's evaluation figures.")
    parser.add_argument("--scale", choices=("quick", "full", "paper"),
                        default="quick",
                        help="workload sizing tier; 'paper' runs the "
                             "paper's element counts outright (hours — "
                             "size a sweep with repro.bench.profile "
                             "first)")
    parser.add_argument("--figures", nargs="*", default=None,
                        choices=("fig5", "fig6", "fig7", "fig8", "size",
                                 "ret", "recovery", "kv"),
                        help="subset, e.g. fig5 fig6 fig7 fig8 size "
                             "ret recovery kv")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the simulations "
                             "(default: all CPU cores; 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the on-disk "
                             "result cache")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the progress meter on stderr")
    parser.add_argument("--obs", action="store_true",
                        help="collect repro.obs metrics during the "
                             "figure runs and print the critical-path "
                             "attribution report after each figure")
    parser.add_argument("--trace-out", default=None, metavar="DIR",
                        help="write one Chrome trace-event JSON per "
                             "figure run into DIR (implies --obs)")
    parser.add_argument("--provenance-out", default=None, metavar="DIR",
                        help="write one persist-provenance capture per "
                             "figure run into DIR, for 'repro.obs "
                             "flame' / 'repro.obs diff' (implies --obs)")
    parser.add_argument("--timings-out", default=None, metavar="FILE",
                        help="write per-figure wall times (and the "
                             "deterministic Figure 5 makespans) as a "
                             "BENCH snapshot for repro.bench.history")
    parser.add_argument("--service", default=None, metavar="DIR",
                        help="execute the figure grid through the "
                             "experiment job service as a resumable "
                             "campaign rooted at DIR: jobs survive "
                             "crashes, re-running the same command "
                             "resumes, and results stream to "
                             "DIR/results.jsonl (watch live with "
                             "'repro.bench.history --live DIR'); "
                             "--jobs sets the worker count")
    args = parser.parse_args(argv)
    wanted = set(args.figures or
                 ["fig5", "fig6", "fig7", "fig8", "size", "ret",
                  "recovery", "kv"])
    obs = args.obs or bool(args.trace_out) or bool(args.provenance_out)
    trace = bool(args.trace_out)
    provenance = bool(args.provenance_out)

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if args.service:
        from repro.exp.progress import ProgressReporter
        from repro.exp.service.worker import ServiceRunner

        # Campaigns always cache (the cache is the resume mechanism);
        # --no-cache would silently lie, so refuse the combination.
        if args.no_cache:
            parser.error("--service campaigns are cache-backed by "
                         "design; drop --no-cache or pick a fresh "
                         "campaign directory")
        runner = ServiceRunner(
            args.service, workers=jobs,
            progress=ProgressReporter() if not args.quiet else None)
    else:
        runner = make_runner(jobs=jobs, use_cache=not args.no_cache,
                             verbose=not args.quiet)
    set_default_runner(runner)

    traced: List[RunSummary] = []
    figure_timings: Dict[str, Dict[str, float]] = {}

    def timed(name: str, run):
        # A figure served from the result cache measures JSON decode
        # speed, not simulation speed. Record the wall time under a
        # name that says which one it was — ``cold_seconds`` (every
        # job simulated), ``warm_seconds`` (every job a cache hit) or
        # ``mixed_seconds`` — so repro.bench.history only ever
        # compares like against like.
        hits_before = runner.cache_hits
        misses_before = runner.cache_misses
        start = time.perf_counter()
        result = run()
        elapsed = round(time.perf_counter() - start, 3)
        hits = runner.cache_hits - hits_before
        misses = runner.cache_misses - misses_before
        if runner.cache is None or (misses and not hits):
            # --no-cache never touches the counters but every job
            # simulated: that is a cold run by definition.
            kind = "cold_seconds"
        elif hits and not misses:
            kind = "warm_seconds"
        else:
            kind = "mixed_seconds"
        figure_timings[name] = {
            kind: elapsed,
            "cache_hits": hits,
            "cache_misses": misses,
        }
        return result

    fig5 = None
    if wanted & {"fig5", "fig6"}:
        fig5 = timed("fig5", lambda: run_figure5(
            scale=args.scale, collect_obs=obs, collect_trace=trace,
            collect_provenance=provenance))
        if "fig5" in wanted:
            print(fig5.render())
            print(f"\nmean improvement BB over SB: "
                  f"{fig5.mean_improvement('sb', 'bb') * 100:.0f}%")
            print(f"mean improvement LRP over BB: "
                  f"{fig5.mean_improvement('bb', 'lrp') * 100:.0f}%\n")
            if obs:
                print(fig5.render_attribution(), "\n")
        if obs:
            traced.extend(fig5.all_summaries())
    if "fig6" in wanted:
        # Figure 6 reuses the Figure 5 runs — no simulation of its
        # own, so a wall time would always read ~0. Say so explicitly
        # instead of recording a meaningless cold time.
        start = time.perf_counter()
        fig6 = run_figure6(fig5)
        figure_timings["fig6"] = {
            "derived_from": "fig5",
            "derive_seconds": round(time.perf_counter() - start, 3),
        }
        print(fig6.render(), "\n")
    if "fig7" in wanted:
        fig7 = timed("fig7", lambda: run_figure7(
            scale=args.scale, collect_obs=obs, collect_trace=trace,
            collect_provenance=provenance))
        print(fig7.render(), "\n")
        if obs:
            print(fig7.render_attribution(), "\n")
            traced.extend(fig7.all_summaries())
    if "fig8" in wanted:
        fig8 = timed("fig8", lambda: run_figure8(
            scale=args.scale, collect_obs=obs, collect_trace=trace,
            collect_provenance=provenance))
        print(fig8.render(), "\n")
        if obs and fig8.summaries:
            from repro.obs.report import render_summaries

            print(render_summaries(
                fig8.summaries,
                title="Critical-path attribution — Figure 8 sweep"),
                "\n")
            traced.extend(fig8.summaries)
    if "size" in wanted:
        print(timed("size", run_size_sensitivity).render(), "\n")
    if "ret" in wanted:
        print(timed("ret", run_ret_ablation).render(), "\n")
    if "recovery" in wanted:
        print(timed("recovery", run_recovery_matrix).render())
    fig_kv = None
    if "kv" in wanted:
        fig_kv = timed("kv", lambda: run_figure_kv(scale=args.scale))
        print(fig_kv.render())

    if trace and traced:
        from repro.obs.trace import dump_summary_traces

        written = dump_summary_traces(traced, args.trace_out)
        print(f"\nwrote {len(written)} Chrome trace files to "
              f"{args.trace_out}/")

    if provenance and traced:
        from repro.obs.diff import dump_summary_provenance

        captures = dump_summary_provenance(traced, args.provenance_out)
        print(f"\nwrote {len(captures)} provenance captures to "
              f"{args.provenance_out}/")

    if args.timings_out:
        snapshot: Dict[str, object] = {
            "scale": args.scale,
            "jobs": jobs,
            "cached": not args.no_cache,
            "figures": figure_timings,
        }
        if fig5 is not None:
            # Deterministic anchors: the history gate flags *any*
            # makespan change, not just wall-clock noise.
            snapshot["fig5_makespan"] = {
                workload: {
                    mech: fig5.results[workload][mech].makespan
                    for mech in ["nop"] + fig5.mechanisms
                }
                for workload in fig5.workloads
            }
        if fig_kv is not None:
            # Same idea for the service scenario: percentiles gate as
            # latency metrics, makespans as exact anchors.
            snapshot["kv_slo"] = {
                mech: {
                    "makespan": fig_kv.payloads[mech]["makespan"],
                    "p99": fig_kv.latency(mech),
                    "durable_p99": fig_kv.durable_latency(mech),
                }
                for mech in fig_kv.mechanisms
            }
        with open(args.timings_out, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote figure timings to {args.timings_out}")


if __name__ == "__main__":
    main()
